"""Deterministic pseudo-random number generation for workload setup.

Workload *data* is generated host-side with this RNG (seeded per
workload), while any randomness the workload needs at run time is
implemented inside the mini-language itself (an LCG over the simulated
registers), keeping traces fully reproducible.
"""

_MASK = (1 << 64) - 1


class Xorshift64:
    """xorshift64* generator; deterministic and dependency-free."""

    def __init__(self, seed=0x9E3779B97F4A7C15):
        if seed == 0:
            seed = 0x9E3779B97F4A7C15
        self.state = seed & _MASK

    def next_u64(self):
        x = self.state
        x ^= (x >> 12)
        x ^= (x << 25) & _MASK
        x ^= (x >> 27)
        self.state = x
        return (x * 0x2545F4914F6CDD1D) & _MASK

    def randint(self, low, high):
        """Uniform integer in [low, high] inclusive."""
        if high < low:
            raise ValueError("empty range [%d, %d]" % (low, high))
        span = high - low + 1
        return low + self.next_u64() % span

    def sample_values(self, count, low, high):
        return [self.randint(low, high) for _ in range(count)]
