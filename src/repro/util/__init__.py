"""Small shared utilities (formatting, RNG)."""

from repro.util.fmt import format_table, format_percent
from repro.util.rng import Xorshift64

__all__ = ["format_table", "format_percent", "Xorshift64"]
