"""Plain-text table rendering for experiment reports."""


def format_percent(value, digits=2):
    """Render a [0, 1] fraction as a percentage string."""
    return "%.*f%%" % (digits, 100.0 * value)


def _render_cell(value):
    if isinstance(value, float):
        return "%.2f" % value
    return str(value)


def format_table(headers, rows, title=None, align=None):
    """Render an ASCII table.

    *align* is an optional string of ``'l'``/``'r'`` per column; numeric
    columns default to right alignment.
    """
    headers = [str(h) for h in headers]
    text_rows = [[_render_cell(cell) for cell in row] for row in rows]
    ncols = len(headers)
    for row in text_rows:
        if len(row) != ncols:
            raise ValueError("row %r does not match %d columns"
                             % (row, ncols))
    if align is None:
        align = ""
        for col in range(ncols):
            numeric = all(
                _is_numeric(row[col]) for row in text_rows) if text_rows \
                else False
            align += "r" if numeric else "l"
    widths = [len(headers[c]) for c in range(ncols)]
    for row in text_rows:
        for c, cell in enumerate(row):
            widths[c] = max(widths[c], len(cell))

    def render_row(cells):
        parts = []
        for c, cell in enumerate(cells):
            if align[c] == "r":
                parts.append(cell.rjust(widths[c]))
            else:
                parts.append(cell.ljust(widths[c]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(render_row(row))
    return "\n".join(lines)


def _is_numeric(text):
    text = text.strip().rstrip("%")
    if not text:
        return False
    try:
        float(text)
        return True
    except ValueError:
        return False
