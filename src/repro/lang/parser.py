"""Recursive-descent parser: mini-language text -> AST module.

See :mod:`repro.lang.lexer` for the surface syntax.  The parser builds
the same :class:`~repro.lang.ast.Module` objects the Python DSL does, so
workloads can be authored either way; ``parse_module`` plus
:func:`~repro.lang.compiler.compile_module` is a complete text-to-ISA
pipeline (used by the quickstart-style tooling and tests).

Grammar notes:

* ``for (i = start; i < stop; i += step)`` maps to the range-based
  :class:`~repro.lang.ast.For`; the condition must test the loop
  variable against the bound in the step's direction.
* ``and`` / ``or`` / ``not`` are *bitwise over booleans*: operands are
  normalized with ``!= 0`` first (the language has no short-circuit
  evaluation -- nor does compiled straight-line RISC code).
* ``name[expr]`` indexes a global array; ``mem[expr]`` dereferences an
  absolute address; ``addr(name)`` is an array's base address.
"""

from repro.lang import ast
from repro.lang.ast import LangError
from repro.lang.lexer import tokenize


class ParseError(LangError):
    def __init__(self, message, token):
        super().__init__("line %d:%d: %s" % (token.line, token.column,
                                             message))
        self.token = token


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def current(self):
        return self.tokens[self.pos]

    def advance(self):
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, kind, value=None):
        token = self.current
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def accept(self, kind, value=None):
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind, value=None):
        token = self.accept(kind, value)
        if token is None:
            want = value if value is not None else kind
            raise ParseError("expected %r, found %r"
                             % (want, self.current.value), self.current)
        return token

    # -- module level ---------------------------------------------------------

    def parse_module(self, name):
        module = ast.Module(name)
        while not self.check("eof"):
            if self.accept("keyword", "array"):
                self._array_decl(module)
            elif self.accept("keyword", "global"):
                self._global_decl(module)
            elif self.accept("keyword", "func"):
                self._func_decl(module)
            else:
                raise ParseError(
                    "expected 'array', 'global' or 'func'", self.current)
        return module

    def _array_decl(self, module):
        name = self.expect("ident").value
        self.expect("op", "[")
        size = self.expect("number").value
        self.expect("op", "]")
        init = None
        if self.accept("op", "="):
            self.expect("op", "{")
            init = []
            if not self.check("op", "}"):
                init.append(self._signed_number())
                while self.accept("op", ","):
                    init.append(self._signed_number())
            self.expect("op", "}")
        self.expect("op", ";")
        module.array(name, size, init)

    def _signed_number(self):
        negative = self.accept("op", "-") is not None
        value = self.expect("number").value
        return -value if negative else value

    def _global_decl(self, module):
        name = self.expect("ident").value
        init = 0
        if self.accept("op", "="):
            init = self._signed_number()
        self.expect("op", ";")
        module.scalar(name, init)

    def _func_decl(self, module):
        name = self.expect("ident").value
        self.expect("op", "(")
        params = []
        if self.check("ident"):
            params.append(self.advance().value)
            while self.accept("op", ","):
                params.append(self.expect("ident").value)
        self.expect("op", ")")
        body = self._block()
        module.function(name, params, body)

    # -- statements -------------------------------------------------------------

    def _block(self):
        self.expect("op", "{")
        stmts = []
        while not self.check("op", "}"):
            stmts.append(self._statement())
        self.expect("op", "}")
        return stmts

    def _statement(self):
        if self.accept("keyword", "var"):
            name = self.expect("ident").value
            self.expect("op", "=")
            expr = self._expression()
            self.expect("op", ";")
            return ast.Assign(name, expr)
        if self.accept("keyword", "return"):
            expr = None
            if not self.check("op", ";"):
                expr = self._expression()
            self.expect("op", ";")
            return ast.Return(expr)
        if self.accept("keyword", "break"):
            self.expect("op", ";")
            return ast.Break()
        if self.accept("keyword", "continue"):
            self.expect("op", ";")
            return ast.Continue()
        if self.accept("keyword", "if"):
            return self._if_statement()
        if self.accept("keyword", "while"):
            self.expect("op", "(")
            cond = self._expression()
            self.expect("op", ")")
            return ast.While(cond, self._block())
        if self.accept("keyword", "do"):
            body = self._block()
            self.expect("keyword", "while")
            self.expect("op", "(")
            cond = self._expression()
            self.expect("op", ")")
            self.expect("op", ";")
            return ast.DoWhile(body, cond)
        if self.accept("keyword", "for"):
            return self._for_statement()
        if self.accept("keyword", "mem"):
            self.expect("op", "[")
            addr = self._expression()
            self.expect("op", "]")
            self.expect("op", "=")
            value = self._expression()
            self.expect("op", ";")
            return ast.Poke(addr, value)
        return self._assignment_or_call()

    def _if_statement(self):
        self.expect("op", "(")
        cond = self._expression()
        self.expect("op", ")")
        then = self._block()
        orelse = []
        if self.accept("keyword", "else"):
            if self.accept("keyword", "if"):
                orelse = [self._if_statement()]
            else:
                orelse = self._block()
        return ast.If(cond, then, orelse)

    def _for_statement(self):
        self.expect("op", "(")
        var = self.expect("ident").value
        self.expect("op", "=")
        start = self._expression()
        self.expect("op", ";")
        cond_var = self.expect("ident").value
        if cond_var != var:
            raise ParseError("for-condition must test %r" % var,
                             self.current)
        direction = self.expect("op").value
        if direction not in ("<", ">"):
            raise ParseError("for-condition must use '<' or '>'",
                             self.current)
        stop = self._expression()
        self.expect("op", ";")
        step_var = self.expect("ident").value
        if step_var != var:
            raise ParseError("for-update must modify %r" % var,
                             self.current)
        op = self.expect("op").value
        if op not in ("+=", "-="):
            raise ParseError("for-update must be '+=' or '-='",
                             self.current)
        step_tok = self.current
        negative = self.accept("op", "-") is not None
        step = self.expect("number").value
        if negative:
            step = -step
        if op == "-=":
            step = -step
        if (step > 0) != (direction == "<"):
            raise ParseError("for-condition direction does not match "
                             "the step sign", step_tok)
        self.expect("op", ")")
        return ast.For(var, start, stop, self._block(), step=step)

    def _assignment_or_call(self):
        name = self.expect("ident").value
        if self.accept("op", "["):
            index = self._expression()
            self.expect("op", "]")
            op = self.expect("op").value
            target = ast.Index(name, index)
            value = self._augmented(target, op)
            self.expect("op", ";")
            return ast.Store(name, index, value)
        if self.check("op", "("):
            call = self._call(name)
            self.expect("op", ";")
            return ast.ExprStmt(call)
        op = self.expect("op").value
        value = self._augmented(ast.Var(name), op)
        self.expect("op", ";")
        return ast.Assign(name, value)

    _AUG_OPS = {"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
                "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>"}

    def _augmented(self, target, op):
        expr = self._expression()
        if op == "=":
            return expr
        if op in self._AUG_OPS:
            return ast.BinOp(self._AUG_OPS[op], target, expr)
        raise ParseError("bad assignment operator %r" % op, self.current)

    # -- expressions ----------------------------------------------------------------

    def _expression(self):
        return self._or_expr()

    @staticmethod
    def _as_bool(expr):
        return expr.ne(0)

    def _or_expr(self):
        left = self._and_expr()
        while self.accept("keyword", "or"):
            right = self._and_expr()
            left = ast.BinOp("|", self._as_bool(left),
                             self._as_bool(right))
        return left

    def _and_expr(self):
        left = self._comparison()
        while self.accept("keyword", "and"):
            right = self._comparison()
            left = ast.BinOp("&", self._as_bool(left),
                             self._as_bool(right))
        return left

    _COMPARISONS = ("==", "!=", "<=", ">=", "<", ">")

    def _comparison(self):
        left = self._bitor()
        while self.check("op") and self.current.value in self._COMPARISONS:
            op = self.advance().value
            right = self._bitor()
            left = ast.BinOp(op, left, right)
        return left

    def _binary_level(self, ops, next_level):
        left = next_level()
        while self.check("op") and self.current.value in ops:
            op = self.advance().value
            left = ast.BinOp(op, left, next_level())
        return left

    def _bitor(self):
        return self._binary_level(("|",), self._bitxor)

    def _bitxor(self):
        return self._binary_level(("^",), self._bitand)

    def _bitand(self):
        return self._binary_level(("&",), self._shift)

    def _shift(self):
        return self._binary_level(("<<", ">>"), self._additive)

    def _additive(self):
        return self._binary_level(("+", "-"), self._multiplicative)

    def _multiplicative(self):
        return self._binary_level(("*", "/", "%"), self._unary)

    def _unary(self):
        if self.accept("op", "-"):
            return ast.UnaryOp("-", self._unary())
        if self.accept("op", "!") or self.accept("keyword", "not"):
            return ast.UnaryOp("!", self._unary())
        return self._primary()

    def _primary(self):
        if self.check("number"):
            return ast.Const(self.advance().value)
        if self.accept("op", "("):
            expr = self._expression()
            self.expect("op", ")")
            return expr
        if self.accept("keyword", "mem"):
            self.expect("op", "[")
            addr = self._expression()
            self.expect("op", "]")
            return ast.Deref(addr)
        if self.accept("keyword", "addr"):
            self.expect("op", "(")
            name = self.expect("ident").value
            self.expect("op", ")")
            return ast.AddrOf(name)
        for fn in ("min", "max"):
            if self.accept("keyword", fn):
                self.expect("op", "(")
                left = self._expression()
                self.expect("op", ",")
                right = self._expression()
                self.expect("op", ")")
                return ast.BinOp(fn, left, right)
        if self.check("ident"):
            name = self.advance().value
            if self.check("op", "("):
                return self._call(name)
            if self.accept("op", "["):
                index = self._expression()
                self.expect("op", "]")
                return ast.Index(name, index)
            return ast.Var(name)
        raise ParseError("expected an expression, found %r"
                         % (self.current.value,), self.current)

    def _call(self, name):
        self.expect("op", "(")
        args = []
        if not self.check("op", ")"):
            args.append(self._expression())
            while self.accept("op", ","):
                args.append(self._expression())
        self.expect("op", ")")
        return ast.CallExpr(name, *args)


def parse_module(source, name="module"):
    """Parse mini-language *source* text into a Module."""
    return _Parser(tokenize(source)).parse_module(name)


def compile_source(source, name="module"):
    """Text straight to a finalized ISA program."""
    from repro.lang.compiler import compile_module
    return compile_module(parse_module(source, name))
