"""Static inspection of mini-language modules.

:func:`module_stats` walks a :class:`~repro.lang.ast.Module` and counts
the structural features that determine its dynamic loop behaviour:
static loops, branches, calls, and the maximum *syntactic* loop nesting
depth (per function; cross-function nesting through calls is a dynamic
property the detector measures, not a static one).

The synthetic generator (:mod:`repro.workloads.synthetic`) uses these
counts to assert that an emitted module actually realises its profile
(e.g. at least one nest of the sampled depth exists); tests and
``docs/WORKLOADS.md`` use them to characterize the hand-written analogs.
"""

from repro.lang import ast


class ModuleStats:
    """Static structure counts for one module."""

    __slots__ = ("functions", "loops", "branches", "calls",
                 "max_syntactic_nesting", "call_targets")

    def __init__(self):
        self.functions = 0
        self.loops = 0                   #: For/While/DoWhile statements
        self.branches = 0                #: If statements
        self.calls = 0                   #: CallExpr occurrences
        self.max_syntactic_nesting = 0   #: deepest loop-in-loop chain
        self.call_targets = set()        #: distinct callee names

    def __repr__(self):
        return ("ModuleStats(loops=%d, branches=%d, calls=%d, "
                "max_nest=%d)" % (self.loops, self.branches, self.calls,
                                  self.max_syntactic_nesting))


_LOOP_TYPES = (ast.For, ast.While, ast.DoWhile)


def _walk_expr(expr, stats):
    if isinstance(expr, ast.CallExpr):
        stats.calls += 1
        stats.call_targets.add(expr.func)
        for arg in expr.args:
            _walk_expr(arg, stats)
    elif isinstance(expr, ast.BinOp):
        _walk_expr(expr.left, stats)
        _walk_expr(expr.right, stats)
    elif isinstance(expr, ast.UnaryOp):
        _walk_expr(expr.operand, stats)
    elif isinstance(expr, ast.Index):
        _walk_expr(expr.index, stats)
    elif isinstance(expr, ast.Deref):
        _walk_expr(expr.addr, stats)
    # Const / Var / AddrOf are leaves.


def _stmt_exprs(stmt):
    """Every expression directly attached to *stmt*."""
    if isinstance(stmt, ast.Assign):
        return (stmt.expr,)
    if isinstance(stmt, ast.Store):
        return (stmt.index, stmt.expr)
    if isinstance(stmt, ast.Poke):
        return (stmt.addr, stmt.expr)
    if isinstance(stmt, ast.If):
        return (stmt.cond,)
    if isinstance(stmt, ast.While) or isinstance(stmt, ast.DoWhile):
        return (stmt.cond,)
    if isinstance(stmt, ast.For):
        return (stmt.start, stmt.stop)
    if isinstance(stmt, ast.Return):
        return () if stmt.expr is None else (stmt.expr,)
    if isinstance(stmt, ast.ExprStmt):
        return (stmt.expr,)
    return ()


def _stmt_bodies(stmt):
    if isinstance(stmt, ast.If):
        return (stmt.then, stmt.orelse)
    if isinstance(stmt, _LOOP_TYPES):
        return (stmt.body,)
    return ()


def _walk_body(body, stats, depth):
    deepest = depth
    for stmt in body:
        for expr in _stmt_exprs(stmt):
            _walk_expr(expr, stats)
        if isinstance(stmt, _LOOP_TYPES):
            stats.loops += 1
            inner = _walk_body(stmt.body, stats, depth + 1)
            if inner > deepest:
                deepest = inner
        else:
            if isinstance(stmt, ast.If):
                stats.branches += 1
            for sub in _stmt_bodies(stmt):
                inner = _walk_body(sub, stats, depth)
                if inner > deepest:
                    deepest = inner
    return deepest


def module_stats(module):
    """Count the static structure of *module*; returns
    :class:`ModuleStats`."""
    stats = ModuleStats()
    for function in module.functions.values():
        stats.functions += 1
        deepest = _walk_body(function.body, stats, 0)
        if deepest > stats.max_syntactic_nesting:
            stats.max_syntactic_nesting = deepest
    return stats


def max_loop_nesting(module):
    """Deepest syntactic loop nest across all functions."""
    return module_stats(module).max_syntactic_nesting
