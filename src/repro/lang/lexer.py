"""Tokenizer for the mini-language's text front end.

The surface syntax (see :mod:`repro.lang.parser`) is a small C-like
language::

    array table[64] = {1, 2, 3};
    global counter = 0;

    func add(a, b) {
        return a + b;
    }

    func main() {
        var acc = 0;
        for (i = 0; i < 64; i += 1) {
            acc = acc + table[i];
        }
        while (acc > 100) { acc = acc - 100; }
        return add(acc, counter);
    }
"""

from repro.lang.ast import LangError


class Token:
    __slots__ = ("kind", "value", "line", "column")

    KINDS = ("ident", "number", "keyword", "op", "eof")

    def __init__(self, kind, value, line, column):
        self.kind = kind
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self):
        return "Token(%s, %r, %d:%d)" % (self.kind, self.value, self.line,
                                         self.column)


KEYWORDS = frozenset({
    "func", "var", "global", "array", "return", "if", "else", "while",
    "do", "for", "break", "continue", "and", "or", "not", "min", "max",
    "mem", "addr",
})

#: Multi-character operators, longest first so maximal munch works.
_MULTI_OPS = ("<<=", ">>=", "==", "!=", "<=", ">=", "<<", ">>", "+=",
              "-=", "*=", "/=", "%=", "&=", "|=", "^=")
_SINGLE_OPS = "+-*/%&|^<>=(){}[];,!"


class LexerError(LangError):
    def __init__(self, message, line, column):
        super().__init__("line %d:%d: %s" % (line, column, message))
        self.line = line
        self.column = column


def tokenize(source):
    """Tokenize *source*, returning a list ending with an EOF token."""
    tokens = []
    line = 1
    column = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "#" or source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexerError("unterminated comment", line, column)
            skipped = source[i:end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            i = end + 2
            continue
        if ch.isdigit():
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i].replace("_", "")
            try:
                value = int(text, 0)
            except ValueError:
                raise LexerError("bad number %r" % source[start:i],
                                 line, column) from None
            tokens.append(Token("number", value, line, column))
            column += i - start
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            word = source[start:i]
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line, column))
            column += i - start
            continue
        matched = None
        for op in _MULTI_OPS:
            if source.startswith(op, i):
                matched = op
                break
        if matched is None and ch in _SINGLE_OPS:
            matched = ch
        if matched is None:
            raise LexerError("unexpected character %r" % ch, line, column)
        tokens.append(Token("op", matched, line, column))
        i += len(matched)
        column += len(matched)
    tokens.append(Token("eof", None, line, column))
    return tokens
