"""Abstract syntax of the structured mini-language.

The 18 synthetic workloads are written as Python-built ASTs and compiled
to the ISA by :mod:`repro.lang.compiler`.  Expression nodes overload the
arithmetic and comparison operators so workload sources read naturally::

    i = Var("i")
    body = [Assign("acc", Var("acc") + Index("table", i % 64))]
    loop = For("i", 0, 100, body)

Equality comparisons are spelled ``expr.eq(other)`` / ``expr.ne(other)``
so ``==`` keeps its ordinary Python meaning on AST nodes.
"""

from repro.isa.errors import IsaError


class LangError(IsaError):
    """Raised for malformed mini-language constructs."""


def as_expr(value):
    """Coerce ints to :class:`Const`; pass expressions through."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return Const(int(value))
    if isinstance(value, int):
        return Const(value)
    raise LangError("cannot use %r as an expression" % (value,))


class Expr:
    """Base class for expressions."""

    __slots__ = ()

    def __add__(self, other):
        return BinOp("+", self, as_expr(other))

    def __radd__(self, other):
        return BinOp("+", as_expr(other), self)

    def __sub__(self, other):
        return BinOp("-", self, as_expr(other))

    def __rsub__(self, other):
        return BinOp("-", as_expr(other), self)

    def __mul__(self, other):
        return BinOp("*", self, as_expr(other))

    def __rmul__(self, other):
        return BinOp("*", as_expr(other), self)

    def __floordiv__(self, other):
        return BinOp("/", self, as_expr(other))

    def __rfloordiv__(self, other):
        return BinOp("/", as_expr(other), self)

    def __mod__(self, other):
        return BinOp("%", self, as_expr(other))

    def __rmod__(self, other):
        return BinOp("%", as_expr(other), self)

    def __and__(self, other):
        return BinOp("&", self, as_expr(other))

    def __or__(self, other):
        return BinOp("|", self, as_expr(other))

    def __xor__(self, other):
        return BinOp("^", self, as_expr(other))

    def __lshift__(self, other):
        return BinOp("<<", self, as_expr(other))

    def __rshift__(self, other):
        return BinOp(">>", self, as_expr(other))

    def __lt__(self, other):
        return BinOp("<", self, as_expr(other))

    def __le__(self, other):
        return BinOp("<=", self, as_expr(other))

    def __gt__(self, other):
        return BinOp(">", self, as_expr(other))

    def __ge__(self, other):
        return BinOp(">=", self, as_expr(other))

    def __neg__(self):
        return UnaryOp("-", self)

    def eq(self, other):
        return BinOp("==", self, as_expr(other))

    def ne(self, other):
        return BinOp("!=", self, as_expr(other))

    def logical_not(self):
        return UnaryOp("!", self)

    def min_(self, other):
        return BinOp("min", self, as_expr(other))

    def max_(self, other):
        return BinOp("max", self, as_expr(other))


class Const(Expr):
    """Integer literal."""

    __slots__ = ("value",)

    def __init__(self, value):
        if not isinstance(value, int):
            raise LangError("Const expects an int, got %r" % (value,))
        self.value = value

    def __repr__(self):
        return "Const(%d)" % self.value


class Var(Expr):
    """Reference to a local variable, parameter, or global scalar."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return "Var(%r)" % self.name


class Index(Expr):
    """Load from a global array: ``array[index]``."""

    __slots__ = ("array", "index")

    def __init__(self, array, index):
        self.array = array
        self.index = as_expr(index)

    def __repr__(self):
        return "Index(%r, %r)" % (self.array, self.index)


class Deref(Expr):
    """Load from a computed absolute address: ``mem[addr]``."""

    __slots__ = ("addr",)

    def __init__(self, addr):
        self.addr = as_expr(addr)

    def __repr__(self):
        return "Deref(%r)" % (self.addr,)


class AddrOf(Expr):
    """The base address of a global array (a compile-time constant)."""

    __slots__ = ("array",)

    def __init__(self, array):
        self.array = array

    def __repr__(self):
        return "AddrOf(%r)" % self.array


BINARY_OPS = frozenset({
    "+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
    "<", "<=", ">", ">=", "==", "!=", "min", "max",
})


class BinOp(Expr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right):
        if op not in BINARY_OPS:
            raise LangError("unknown binary operator %r" % op)
        self.op = op
        self.left = as_expr(left)
        self.right = as_expr(right)

    def __repr__(self):
        return "BinOp(%r, %r, %r)" % (self.op, self.left, self.right)


class UnaryOp(Expr):
    __slots__ = ("op", "operand")

    def __init__(self, op, operand):
        if op not in ("-", "!"):
            raise LangError("unknown unary operator %r" % op)
        self.op = op
        self.operand = as_expr(operand)

    def __repr__(self):
        return "UnaryOp(%r, %r)" % (self.op, self.operand)


class CallExpr(Expr):
    """Call a function by name; its return value is the expression."""

    __slots__ = ("func", "args")

    def __init__(self, func, *args):
        self.func = func
        self.args = tuple(as_expr(a) for a in args)

    def __repr__(self):
        return "CallExpr(%r, %s)" % (self.func,
                                     ", ".join(map(repr, self.args)))


class Stmt:
    """Base class for statements."""

    __slots__ = ()


class Assign(Stmt):
    """``name = expr`` for a local or global scalar."""

    __slots__ = ("name", "expr")

    def __init__(self, name, expr):
        self.name = name
        self.expr = as_expr(expr)

    def __repr__(self):
        return "Assign(%r, %r)" % (self.name, self.expr)


class Store(Stmt):
    """``array[index] = expr`` for a global array."""

    __slots__ = ("array", "index", "expr")

    def __init__(self, array, index, expr):
        self.array = array
        self.index = as_expr(index)
        self.expr = as_expr(expr)

    def __repr__(self):
        return "Store(%r, %r, %r)" % (self.array, self.index, self.expr)


class Poke(Stmt):
    """``mem[addr] = expr`` through a computed absolute address."""

    __slots__ = ("addr", "expr")

    def __init__(self, addr, expr):
        self.addr = as_expr(addr)
        self.expr = as_expr(expr)

    def __repr__(self):
        return "Poke(%r, %r)" % (self.addr, self.expr)


def _as_body(stmts):
    if isinstance(stmts, Stmt):
        return [stmts]
    body = list(stmts)
    for stmt in body:
        if not isinstance(stmt, Stmt):
            raise LangError("statement expected, got %r" % (stmt,))
    return body


class If(Stmt):
    __slots__ = ("cond", "then", "orelse")

    def __init__(self, cond, then, orelse=()):
        self.cond = as_expr(cond)
        self.then = _as_body(then)
        self.orelse = _as_body(orelse)

    def __repr__(self):
        return "If(%r, %r, %r)" % (self.cond, self.then, self.orelse)


class While(Stmt):
    """Bottom-tested while loop (the compiler rotates it, so the closing
    backward branch is the loop's conditional test, as optimizing
    compilers emit)."""

    __slots__ = ("cond", "body")

    def __init__(self, cond, body):
        self.cond = as_expr(cond)
        self.body = _as_body(body)

    def __repr__(self):
        return "While(%r, %r)" % (self.cond, self.body)


class DoWhile(Stmt):
    """Execute body, repeat while cond holds (no guard test)."""

    __slots__ = ("body", "cond")

    def __init__(self, body, cond):
        self.body = _as_body(body)
        self.cond = as_expr(cond)

    def __repr__(self):
        return "DoWhile(%r, %r)" % (self.body, self.cond)


class For(Stmt):
    """``for var in range(start, stop, step)`` with a constant step."""

    __slots__ = ("var", "start", "stop", "step", "body")

    def __init__(self, var, start, stop, body, step=1):
        if not isinstance(step, int) or step == 0:
            raise LangError("For step must be a non-zero int constant")
        self.var = var
        self.start = as_expr(start)
        self.stop = as_expr(stop)
        self.step = step
        self.body = _as_body(body)

    def __repr__(self):
        return "For(%r, %r, %r, step=%d)" % (self.var, self.start,
                                             self.stop, self.step)


class Break(Stmt):
    __slots__ = ()

    def __repr__(self):
        return "Break()"


class Continue(Stmt):
    __slots__ = ()

    def __repr__(self):
        return "Continue()"


class Return(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr=None):
        self.expr = None if expr is None else as_expr(expr)

    def __repr__(self):
        return "Return(%r)" % (self.expr,)


class ExprStmt(Stmt):
    """Evaluate an expression for its side effects (typically a call)."""

    __slots__ = ("expr",)

    def __init__(self, expr):
        self.expr = as_expr(expr)

    def __repr__(self):
        return "ExprStmt(%r)" % (self.expr,)


class Function:
    """A function definition: ``name(params) { body }``."""

    def __init__(self, name, params, body):
        self.name = name
        self.params = tuple(params)
        self.body = _as_body(body)
        seen = set()
        for param in self.params:
            if param in seen:
                raise LangError("duplicate parameter %r in %r"
                                % (param, name))
            seen.add(param)

    def __repr__(self):
        return "Function(%r, params=%r)" % (self.name, self.params)


class Module:
    """A compilation unit: functions plus global arrays and scalars."""

    def __init__(self, name="module"):
        self.name = name
        self.functions = {}
        self.arrays = {}
        self.globals = {}

    def add_function(self, function):
        if function.name in self.functions:
            raise LangError("duplicate function %r" % function.name)
        self.functions[function.name] = function
        return function

    def function(self, name, params, body):
        """Convenience: build and register a :class:`Function`."""
        return self.add_function(Function(name, params, body))

    def array(self, name, size, init=None):
        """Declare a global array of *size* words."""
        if name in self.arrays or name in self.globals:
            raise LangError("duplicate global %r" % name)
        self.arrays[name] = (size, None if init is None else list(init))
        return name

    def scalar(self, name, init=0):
        """Declare a global scalar variable."""
        if name in self.arrays or name in self.globals:
            raise LangError("duplicate global %r" % name)
        self.globals[name] = int(init)
        return name
