"""Compiler from the mini-language AST to the ISA.

Lowering follows what an optimizing compiler (the paper used ``-O5``)
would produce for loop structure, because the loop detector keys off the
shape of the emitted control flow:

* ``While``/``For`` are *rotated*: a forward guard jump into the test,
  the test at the bottom, and a single backward conditional branch as the
  loop-closing branch.  The loop identifier ``T`` is the body label and
  the closing branch sits at the highest body address ``B``.
* ``DoWhile`` emits the body followed by the backward test directly.
* ``Break`` leaves through a forward jump (paper termination rule ii),
  ``Return`` through the function epilogue's ``ret`` (rule iii), and a
  falling-out test through the not-taken closing branch (rule i).

Locals live in an ``fp``-relative frame (slot 0 saved ra, slot 1 saved
fp); expression temporaries use ``t0..t9`` as an evaluation stack with a
memory spill once the stack is exhausted, so arbitrarily deep expressions
compile correctly.
"""

from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program
from repro.isa.registers import (
    ARG_REGISTERS,
    REG_FP,
    REG_RA,
    REG_RV,
    REG_SCRATCH0,
    REG_SP,
    REG_ZERO,
    TEMP_REGISTERS,
)
from repro.lang import ast
from repro.lang.ast import LangError

_I = Instruction
_OP = Opcode

#: Three-register opcode per language operator.
_REG_OPS = {
    "+": _OP.ADD, "-": _OP.SUB, "*": _OP.MUL, "/": _OP.DIV, "%": _OP.REM,
    "&": _OP.AND, "|": _OP.OR, "^": _OP.XOR, "<<": _OP.SLL, ">>": _OP.SRA,
    "<": _OP.SLT, "<=": _OP.SLE, "==": _OP.SEQ, "!=": _OP.SNE,
    "min": _OP.MIN, "max": _OP.MAX,
}

#: Operators lowered by swapping the operands.
_SWAPPED_OPS = {">": _OP.SLT, ">=": _OP.SLE}

#: Immediate opcode when the right operand is a constant.
_IMM_OPS = {
    "+": _OP.ADDI, "-": _OP.SUBI, "*": _OP.MULI, "/": _OP.DIVI,
    "%": _OP.REMI, "&": _OP.ANDI, "|": _OP.ORI, "^": _OP.XORI,
    "<<": _OP.SLLI, ">>": _OP.SRAI, "<": _OP.SLTI,
}

_COMMUTATIVE = frozenset({"+", "*", "&", "|", "^", "min", "max"})

#: branch-if-true / branch-if-false opcodes per comparison operator.
_BRANCH_TRUE = {
    "<": _OP.BLT, "<=": _OP.BLE, ">": _OP.BGT, ">=": _OP.BGE,
    "==": _OP.BEQ, "!=": _OP.BNE,
}
_BRANCH_FALSE = {
    "<": _OP.BGE, "<=": _OP.BGT, ">": _OP.BLE, ">=": _OP.BLT,
    "==": _OP.BNE, "!=": _OP.BEQ,
}

_COMPARISONS = frozenset(_BRANCH_TRUE)

#: Calling-convention limit on parameters per function (one argument
#: register each); program generators size signatures against this.
MAX_PARAMS = len(ARG_REGISTERS)


def compile_module(module):
    """Compile *module* to a finalized :class:`repro.isa.Program`.

    The program's entry stub calls ``main`` and halts, so every compiled
    workload terminates with an explicit ``halt``.
    """
    if "main" not in module.functions:
        raise LangError("module %r has no main()" % module.name)
    if module.functions["main"].params:
        raise LangError("main() must take no parameters")

    program = Program(name=module.name)
    for name, (size, init) in module.arrays.items():
        program.data.allocate(name, size, init)
    for name, init in module.globals.items():
        program.data.allocate("g$" + name, 1, [init])

    program.label("_start")
    program.emit(_I(_OP.CALL, label=_fn_label("main")))
    program.emit(_I(_OP.HALT))
    program.set_entry("_start")

    for function in module.functions.values():
        _FunctionCompiler(program, module, function).compile()
    return program.finalize()


def _fn_label(name):
    return "fn$" + name


class _FunctionCompiler:
    """Compiles one function into the shared program."""

    def __init__(self, program, module, function):
        self.program = program
        self.module = module
        self.function = function
        self.slots = {}
        self.loop_stack = []  # (continue_label, break_label)
        self._label_counter = 0
        self._collect_locals()
        self.frame_size = 2 + len(self.slots)
        self.exit_label = self._fresh("exit")

    # -- naming ----------------------------------------------------------

    def _fresh(self, hint):
        self._label_counter += 1
        return "%s$%s$%d" % (self.function.name, hint, self._label_counter)

    # -- locals ----------------------------------------------------------

    def _collect_locals(self):
        names = list(self.function.params)
        seen = set(names)

        def visit(stmts):
            for stmt in stmts:
                if isinstance(stmt, ast.Assign):
                    if stmt.name not in self.module.globals \
                            and stmt.name not in seen:
                        seen.add(stmt.name)
                        names.append(stmt.name)
                elif isinstance(stmt, ast.For):
                    if stmt.var in self.module.globals:
                        raise LangError(
                            "loop variable %r shadows a global" % stmt.var)
                    if stmt.var not in seen:
                        seen.add(stmt.var)
                        names.append(stmt.var)
                    visit(stmt.body)
                elif isinstance(stmt, ast.If):
                    visit(stmt.then)
                    visit(stmt.orelse)
                elif isinstance(stmt, (ast.While,)):
                    visit(stmt.body)
                elif isinstance(stmt, ast.DoWhile):
                    visit(stmt.body)

        visit(self.function.body)
        for offset, name in enumerate(names):
            self.slots[name] = 2 + offset

    # -- emission helpers --------------------------------------------------

    def emit(self, *args, **kwargs):
        return self.program.emit(_I(*args, **kwargs))

    def _push(self, reg):
        self.emit(_OP.ADDI, rd=REG_SP, rs1=REG_SP, imm=-1)
        self.emit(_OP.ST, rs1=REG_SP, rs2=reg, imm=0)

    def _pop(self, reg):
        self.emit(_OP.LD, rd=reg, rs1=REG_SP, imm=0)
        self.emit(_OP.ADDI, rd=REG_SP, rs1=REG_SP, imm=1)

    # -- function structure ------------------------------------------------

    def compile(self):
        program = self.program
        program.label(_fn_label(self.function.name))
        self.emit(_OP.ADDI, rd=REG_SP, rs1=REG_SP, imm=-self.frame_size)
        self.emit(_OP.ST, rs1=REG_SP, rs2=REG_RA, imm=0)
        self.emit(_OP.ST, rs1=REG_SP, rs2=REG_FP, imm=1)
        self.emit(_OP.MV, rd=REG_FP, rs1=REG_SP)
        if len(self.function.params) > MAX_PARAMS:
            raise LangError("%r: too many parameters (max %d)"
                            % (self.function.name, MAX_PARAMS))
        for pos, param in enumerate(self.function.params):
            self.emit(_OP.ST, rs1=REG_FP, rs2=ARG_REGISTERS[pos],
                      imm=self.slots[param])
        self.stmts(self.function.body)
        program.label(self.exit_label)
        self.emit(_OP.LD, rd=REG_RA, rs1=REG_FP, imm=0)
        self.emit(_OP.LD, rd=REG_SCRATCH0, rs1=REG_FP, imm=1)
        self.emit(_OP.ADDI, rd=REG_SP, rs1=REG_FP, imm=self.frame_size)
        self.emit(_OP.MV, rd=REG_FP, rs1=REG_SCRATCH0)
        self.emit(_OP.RET)

    # -- statements --------------------------------------------------------

    def stmts(self, body):
        for stmt in body:
            self.stmt(stmt)

    def stmt(self, stmt):
        if isinstance(stmt, ast.Assign):
            self.expr(stmt.expr, 0)
            self._store_name(stmt.name, TEMP_REGISTERS[0])
        elif isinstance(stmt, ast.Store):
            base = self._array_base(stmt.array)
            self.expr(stmt.index, 0)
            self.expr(stmt.expr, 1)
            self.emit(_OP.ST, rs1=TEMP_REGISTERS[0], rs2=TEMP_REGISTERS[1],
                      imm=base)
        elif isinstance(stmt, ast.Poke):
            self.expr(stmt.addr, 0)
            self.expr(stmt.expr, 1)
            self.emit(_OP.ST, rs1=TEMP_REGISTERS[0], rs2=TEMP_REGISTERS[1],
                      imm=0)
        elif isinstance(stmt, ast.ExprStmt):
            self.expr(stmt.expr, 0)
        elif isinstance(stmt, ast.Return):
            if stmt.expr is not None:
                self.expr(stmt.expr, 0)
                self.emit(_OP.MV, rd=REG_RV, rs1=TEMP_REGISTERS[0])
            self.emit(_OP.JMP, label=self.exit_label)
        elif isinstance(stmt, ast.If):
            self._compile_if(stmt)
        elif isinstance(stmt, ast.While):
            self._compile_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._compile_dowhile(stmt)
        elif isinstance(stmt, ast.For):
            self._compile_for(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.loop_stack:
                raise LangError("break outside loop in %r"
                                % self.function.name)
            self.emit(_OP.JMP, label=self.loop_stack[-1][1])
        elif isinstance(stmt, ast.Continue):
            if not self.loop_stack:
                raise LangError("continue outside loop in %r"
                                % self.function.name)
            self.emit(_OP.JMP, label=self.loop_stack[-1][0])
        else:
            raise LangError("unknown statement %r" % (stmt,))

    def _compile_if(self, stmt):
        else_label = self._fresh("else")
        end_label = self._fresh("endif")
        target = else_label if stmt.orelse else end_label
        self._branch_if_false(stmt.cond, target)
        self.stmts(stmt.then)
        if stmt.orelse:
            self.emit(_OP.JMP, label=end_label)
            self.program.label(else_label)
            self.stmts(stmt.orelse)
        self.program.label(end_label)

    def _compile_while(self, stmt):
        # Loop rotation with a duplicated guard test (what -O5 emits):
        # entry falls into the body only when the condition holds, and
        # the only backward branch is the bottom test, so the detector
        # sees exactly one closing branch per completed iteration.
        body_label = self._fresh("wbody")
        test_label = self._fresh("wtest")
        exit_label = self._fresh("wexit")
        self._branch_if_false(stmt.cond, exit_label)
        self.program.label(body_label)
        self.loop_stack.append((test_label, exit_label))
        self.stmts(stmt.body)
        self.loop_stack.pop()
        self.program.label(test_label)
        self._branch_if_true(stmt.cond, body_label)
        self.program.label(exit_label)

    def _compile_dowhile(self, stmt):
        body_label = self._fresh("dbody")
        test_label = self._fresh("dtest")
        exit_label = self._fresh("dexit")
        self.program.label(body_label)
        self.loop_stack.append((test_label, exit_label))
        self.stmts(stmt.body)
        self.loop_stack.pop()
        self.program.label(test_label)
        self._branch_if_true(stmt.cond, body_label)
        self.program.label(exit_label)

    def _compile_for(self, stmt):
        body_label = self._fresh("fbody")
        step_label = self._fresh("fstep")
        test_label = self._fresh("ftest")
        exit_label = self._fresh("fexit")
        var = ast.Var(stmt.var)
        cond = var < stmt.stop if stmt.step > 0 else var > stmt.stop
        self.expr(stmt.start, 0)
        self._store_name(stmt.var, TEMP_REGISTERS[0])
        self._branch_if_false(cond, exit_label)      # rotated guard
        self.program.label(body_label)
        self.loop_stack.append((step_label, exit_label))
        self.stmts(stmt.body)
        self.loop_stack.pop()
        self.program.label(step_label)
        self.expr(var + stmt.step, 0)
        self._store_name(stmt.var, TEMP_REGISTERS[0])
        self.program.label(test_label)
        self._branch_if_true(cond, body_label)
        self.program.label(exit_label)

    # -- conditions ----------------------------------------------------------

    def _branch_if_true(self, cond, label):
        self._conditional_branch(cond, label, when_true=True)

    def _branch_if_false(self, cond, label):
        self._conditional_branch(cond, label, when_true=False)

    def _conditional_branch(self, cond, label, when_true):
        t0, t1 = TEMP_REGISTERS[0], TEMP_REGISTERS[1]
        if isinstance(cond, ast.Const):
            truthy = cond.value != 0
            if truthy == when_true:
                self.emit(_OP.JMP, label=label)
            return
        if isinstance(cond, ast.BinOp) and cond.op in _COMPARISONS:
            table = _BRANCH_TRUE if when_true else _BRANCH_FALSE
            self.expr(cond.left, 0)
            self.expr(cond.right, 1)
            self.emit(table[cond.op], rs1=t0, rs2=t1, label=label)
            return
        self.expr(cond, 0)
        op = _OP.BNE if when_true else _OP.BEQ
        self.emit(op, rs1=t0, rs2=REG_ZERO, label=label)

    # -- names ----------------------------------------------------------------

    def _store_name(self, name, reg):
        if name in self.slots:
            self.emit(_OP.ST, rs1=REG_FP, rs2=reg, imm=self.slots[name])
        elif name in self.module.globals:
            addr = self.program.data.address_of("g$" + name)
            self.emit(_OP.ST, rs1=REG_ZERO, rs2=reg, imm=addr)
        else:
            raise LangError("assignment to unknown name %r in %r"
                            % (name, self.function.name))

    def _load_name(self, name, reg):
        if name in self.slots:
            self.emit(_OP.LD, rd=reg, rs1=REG_FP, imm=self.slots[name])
        elif name in self.module.globals:
            addr = self.program.data.address_of("g$" + name)
            self.emit(_OP.LD, rd=reg, rs1=REG_ZERO, imm=addr)
        else:
            raise LangError("read of unknown name %r in %r"
                            % (name, self.function.name))

    def _array_base(self, name):
        if name not in self.module.arrays:
            raise LangError("unknown array %r in %r"
                            % (name, self.function.name))
        return self.program.data.address_of(name)

    # -- expressions ------------------------------------------------------------

    def expr(self, node, depth):
        """Emit code leaving the value of *node* in ``TEMP_REGISTERS[depth]``."""
        dest = TEMP_REGISTERS[depth]
        if isinstance(node, ast.Const):
            self.emit(_OP.LI, rd=dest, imm=node.value)
        elif isinstance(node, ast.Var):
            self._load_name(node.name, dest)
        elif isinstance(node, ast.AddrOf):
            self.emit(_OP.LI, rd=dest, imm=self._array_base(node.array))
        elif isinstance(node, ast.Index):
            base = self._array_base(node.array)
            self.expr(node.index, depth)
            self.emit(_OP.LD, rd=dest, rs1=dest, imm=base)
        elif isinstance(node, ast.Deref):
            self.expr(node.addr, depth)
            self.emit(_OP.LD, rd=dest, rs1=dest, imm=0)
        elif isinstance(node, ast.UnaryOp):
            self.expr(node.operand, depth)
            if node.op == "-":
                self.emit(_OP.SUB, rd=dest, rs1=REG_ZERO, rs2=dest)
            else:  # logical not
                self.emit(_OP.SEQ, rd=dest, rs1=dest, rs2=REG_ZERO)
        elif isinstance(node, ast.BinOp):
            self._binop(node, depth)
        elif isinstance(node, ast.CallExpr):
            self._call(node, depth)
        else:
            raise LangError("unknown expression %r" % (node,))

    def _binop(self, node, depth):
        dest = TEMP_REGISTERS[depth]
        op, left, right = node.op, node.left, node.right
        if isinstance(left, ast.Const) and not isinstance(right, ast.Const) \
                and op in _COMMUTATIVE:
            left, right = right, left
        if isinstance(right, ast.Const) and op in _IMM_OPS:
            self.expr(left, depth)
            self.emit(_IMM_OPS[op], rd=dest, rs1=dest, imm=right.value)
            return
        if op in _SWAPPED_OPS:
            opcode = _SWAPPED_OPS[op]
            left, right = right, left
        else:
            opcode = _REG_OPS[op]
        if depth + 1 < len(TEMP_REGISTERS):
            other = TEMP_REGISTERS[depth + 1]
            self.expr(left, depth)
            self.expr(right, depth + 1)
            self.emit(opcode, rd=dest, rs1=dest, rs2=other)
        else:
            # Temp stack exhausted: spill the left value to memory.
            self.expr(left, depth)
            self._push(dest)
            self.expr(right, depth)
            self._pop(REG_SCRATCH0)
            self.emit(opcode, rd=dest, rs1=REG_SCRATCH0, rs2=dest)

    def _call(self, node, depth):
        if node.func not in self.module.functions:
            raise LangError("call to unknown function %r" % node.func)
        callee = self.module.functions[node.func]
        if len(node.args) != len(callee.params):
            raise LangError(
                "%r called with %d args, expects %d"
                % (node.func, len(node.args), len(callee.params)))
        if len(node.args) > MAX_PARAMS:
            raise LangError("too many arguments in call to %r" % node.func)
        live = [TEMP_REGISTERS[i] for i in range(depth)]
        for reg in live:
            self._push(reg)
        for arg in node.args:
            self.expr(arg, 0)
            self._push(TEMP_REGISTERS[0])
        for pos in reversed(range(len(node.args))):
            self._pop(ARG_REGISTERS[pos])
        self.emit(_OP.CALL, label=_fn_label(node.func))
        for reg in reversed(live):
            self._pop(reg)
        self.emit(_OP.MV, rd=TEMP_REGISTERS[depth], rs1=REG_RV)
