"""AST-level optimizer for the mini-language.

Performs the machine-independent simplifications an ``-O`` compiler
would before lowering:

* **constant folding** with the target's arithmetic (64-bit wrap,
  truncating division, defined division by zero);
* **algebraic identities**: ``x+0``, ``x*1``, ``x*0``, ``x-0``,
  ``x/1``, ``x|0``, ``x&0``, ``x^0``, shifts by 0;
* **dead branch elimination**: ``if (const)`` keeps one arm, loops with
  constant-false conditions disappear;
* **unreachable-code trimming** after ``return``/``break``/``continue``.

The transformations never change observable behaviour (results, memory
effects, call order); the differential tests in
``tests/test_optimizer.py`` pin that by executing both versions.  Loop
*structure* of surviving loops is preserved, so the detector sees the
same loop identity -- only dead or trivially-constant work disappears.
"""

from repro.cpu.machine import _div, _rem, wrap64
from repro.lang import ast

_FOLDERS = {
    "+": lambda a, b: wrap64(a + b),
    "-": lambda a, b: wrap64(a - b),
    "*": lambda a, b: wrap64(a * b),
    "/": _div,
    "%": _rem,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: wrap64(a << (b & 63)),
    ">>": lambda a, b: a >> (b & 63),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "min": min,
    "max": max,
}


def _is_const(expr, value=None):
    if not isinstance(expr, ast.Const):
        return False
    return value is None or expr.value == value


def _has_calls(expr):
    """Calls may have side effects; such expressions cannot vanish."""
    if isinstance(expr, ast.CallExpr):
        return True
    if isinstance(expr, ast.BinOp):
        return _has_calls(expr.left) or _has_calls(expr.right)
    if isinstance(expr, ast.UnaryOp):
        return _has_calls(expr.operand)
    if isinstance(expr, ast.Index):
        return _has_calls(expr.index)
    if isinstance(expr, ast.Deref):
        return _has_calls(expr.addr)
    return False


class Optimizer:
    """Rewrites a module; collects simple statistics about its work."""

    def __init__(self):
        self.folded = 0
        self.identities = 0
        self.dead_branches = 0
        self.dead_statements = 0

    # -- expressions -----------------------------------------------------

    def expr(self, node):
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        if isinstance(node, ast.UnaryOp):
            operand = self.expr(node.operand)
            if isinstance(operand, ast.Const):
                self.folded += 1
                if node.op == "-":
                    return ast.Const(wrap64(-operand.value))
                return ast.Const(int(operand.value == 0))
            return ast.UnaryOp(node.op, operand)
        if isinstance(node, ast.Index):
            return ast.Index(node.array, self.expr(node.index))
        if isinstance(node, ast.Deref):
            return ast.Deref(self.expr(node.addr))
        if isinstance(node, ast.CallExpr):
            return ast.CallExpr(node.func,
                                *[self.expr(a) for a in node.args])
        return node

    def _binop(self, node):
        left = self.expr(node.left)
        right = self.expr(node.right)
        op = node.op
        if isinstance(left, ast.Const) and isinstance(right, ast.Const):
            self.folded += 1
            return ast.Const(_FOLDERS[op](left.value, right.value))
        # Identities; the discarded side must be side-effect free.
        if op in ("+", "|", "^") and _is_const(left, 0):
            self.identities += 1
            return right
        if op in ("+", "-", "|", "^", ">>", "<<") and _is_const(right, 0):
            self.identities += 1
            return left
        if op == "*" and _is_const(right, 1):
            self.identities += 1
            return left
        if op == "*" and _is_const(left, 1):
            self.identities += 1
            return right
        if op in ("*", "&") and (
                (_is_const(left, 0) and not _has_calls(right))
                or (_is_const(right, 0) and not _has_calls(left))):
            self.identities += 1
            return ast.Const(0)
        if op == "/" and _is_const(right, 1):
            self.identities += 1
            return left
        return ast.BinOp(op, left, right)

    # -- statements --------------------------------------------------------

    def body(self, stmts):
        out = []
        for stmt in stmts:
            rewritten = self.stmt(stmt)
            if rewritten is None:
                continue
            if isinstance(rewritten, list):
                out.extend(rewritten)
            else:
                out.append(rewritten)
            last = out[-1] if out else None
            if isinstance(last, (ast.Return, ast.Break, ast.Continue)):
                break
        return out

    def stmt(self, stmt):
        if isinstance(stmt, ast.Assign):
            return ast.Assign(stmt.name, self.expr(stmt.expr))
        if isinstance(stmt, ast.Store):
            return ast.Store(stmt.array, self.expr(stmt.index),
                             self.expr(stmt.expr))
        if isinstance(stmt, ast.Poke):
            return ast.Poke(self.expr(stmt.addr), self.expr(stmt.expr))
        if isinstance(stmt, ast.ExprStmt):
            expr = self.expr(stmt.expr)
            if not _has_calls(expr):
                self.dead_statements += 1
                return None
            return ast.ExprStmt(expr)
        if isinstance(stmt, ast.Return):
            return ast.Return(None if stmt.expr is None
                              else self.expr(stmt.expr))
        if isinstance(stmt, ast.If):
            return self._if(stmt)
        if isinstance(stmt, ast.While):
            cond = self.expr(stmt.cond)
            if _is_const(cond, 0):
                self.dead_branches += 1
                return None
            return ast.While(cond, self.body(stmt.body))
        if isinstance(stmt, ast.DoWhile):
            return ast.DoWhile(self.body(stmt.body),
                               self.expr(stmt.cond))
        if isinstance(stmt, ast.For):
            start = self.expr(stmt.start)
            stop = self.expr(stmt.stop)
            if isinstance(start, ast.Const) and isinstance(stop, ast.Const):
                empty = start.value >= stop.value if stmt.step > 0 \
                    else start.value <= stop.value
                if empty:
                    self.dead_branches += 1
                    # The loop variable is still assigned its start.
                    return ast.Assign(stmt.var, start)
            return ast.For(stmt.var, start, stop, self.body(stmt.body),
                           step=stmt.step)
        return stmt

    def _if(self, stmt):
        cond = self.expr(stmt.cond)
        if isinstance(cond, ast.Const):
            self.dead_branches += 1
            chosen = stmt.then if cond.value else stmt.orelse
            return self.body(list(chosen))
        return ast.If(cond, self.body(stmt.then), self.body(stmt.orelse))

    # -- module ---------------------------------------------------------------

    def module(self, module):
        out = ast.Module(module.name)
        for name, (size, init) in module.arrays.items():
            out.array(name, size, init)
        for name, init in module.globals.items():
            out.scalar(name, init)
        for function in module.functions.values():
            out.function(function.name, list(function.params),
                         self.body(function.body) or [ast.Return(None)])
        return out


def optimize_module(module):
    """Return an optimized copy of *module* (the input is not mutated)."""
    return Optimizer().module(module)


def optimization_report(module):
    """Optimize and return ``(optimized_module, optimizer)`` for
    inspection of what was rewritten."""
    optimizer = Optimizer()
    return optimizer.module(module), optimizer
