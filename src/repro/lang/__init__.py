"""Structured mini-language used to author the synthetic workloads.

Typical usage::

    from repro.lang import (Module, Function, For, Assign, Var, Index,
                            Store, compile_module)

    m = Module("demo")
    m.array("data", 64)
    i = Var("i")
    m.function("main", [], [
        For("i", 0, 64, [Store("data", i, i * i)]),
        Return(0),
    ])
    program = compile_module(m)
"""

from repro.lang.ast import (
    AddrOf,
    Assign,
    BinOp,
    Break,
    CallExpr,
    Const,
    Continue,
    Deref,
    DoWhile,
    Expr,
    ExprStmt,
    For,
    Function,
    If,
    Index,
    LangError,
    Module,
    Poke,
    Return,
    Stmt,
    Store,
    UnaryOp,
    Var,
    While,
    as_expr,
)
from repro.lang.compiler import MAX_PARAMS, compile_module
from repro.lang.inspect import ModuleStats, max_loop_nesting, module_stats
from repro.lang.optimizer import optimize_module
from repro.lang.parser import compile_source, parse_module

__all__ = [
    "AddrOf",
    "Assign",
    "BinOp",
    "Break",
    "CallExpr",
    "Const",
    "Continue",
    "Deref",
    "DoWhile",
    "Expr",
    "ExprStmt",
    "For",
    "Function",
    "If",
    "Index",
    "LangError",
    "MAX_PARAMS",
    "Module",
    "ModuleStats",
    "Poke",
    "Return",
    "Stmt",
    "Store",
    "UnaryOp",
    "Var",
    "While",
    "as_expr",
    "compile_module",
    "compile_source",
    "max_loop_nesting",
    "module_stats",
    "optimize_module",
    "parse_module",
]
