"""Run manifests: the on-disk form of one instrumented run.

``runner ... --metrics run.json`` writes two artifacts:

* ``run.json`` -- the **manifest**: schema version, run metadata
  (argv, kernel backend, python version), wall seconds, the full
  counter/gauge maps, every finished span, every point, and a
  precomputed per-stage rollup (:func:`repro.obs.timeline.
  stage_rollup`) so downstream tools never re-derive it;
* ``run.jsonl`` -- the **event stream**: one JSON object per line
  (``{"type": "span", ...}`` in completion order, then points, then
  final counter/gauge lines), for tailing and line-oriented tooling.

:func:`load_manifest` validates on read and raises
:class:`ManifestError` on anything structurally unusable -- schema
mismatches must fail loudly (``tools/bench_check.py`` exits 2 on
them even in advisory mode), while *performance* judgments are left
to the caller.

A copy of the manifest is also dropped into the trace-cache (and
sweep-store) directory as :data:`LAST_RUN_MANIFEST`, which is where
``tools/trace_cache.py ls`` / ``sweeps ls`` source their "last run"
summary line.
"""

import json
import os
import sys
import time

#: Bump when the manifest structure changes incompatibly.
MANIFEST_SCHEMA_VERSION = 1

#: The manifest kind tag (sanity check against unrelated JSON files).
MANIFEST_KIND = "repro-run-manifest"

#: Basename of the manifest copy dropped next to the artifacts a run
#: touched (trace cache, sweep store) for the maintenance CLIs.
LAST_RUN_MANIFEST = "last-run-manifest.json"


class ManifestError(ValueError):
    """A manifest file is missing, malformed, or schema-incompatible."""


def events_path(path):
    """The JSONL event-stream path of manifest *path* (sibling file,
    ``.jsonl`` suffix)."""
    stem, _ = os.path.splitext(path)
    return stem + ".jsonl"


def build_manifest(collector, argv=None, command=None, extra=None):
    """The manifest dict of *collector*'s events.

    *argv* is recorded verbatim; *command* names the front end
    (``run``/``sweep``/``search``); *extra* is merged into the
    manifest's ``meta`` map.
    """
    from repro.obs.timeline import span_coverage, stage_rollup
    from repro.trace.kernels import backend

    meta = {
        "command": command or "run",
        "argv": list(argv) if argv is not None else None,
        "python": "%d.%d.%d" % sys.version_info[:3],
        "kernel_backend": backend(),
    }
    if extra:
        meta.update(extra)
    wall = collector.wall_seconds()
    manifest = {
        "schema": MANIFEST_SCHEMA_VERSION,
        "kind": MANIFEST_KIND,
        "created": time.time(),
        "meta": meta,
        "wall_seconds": round(wall, 6),
        "counters": dict(collector.counters),
        "gauges": dict(collector.gauges),
        "spans": list(collector.spans),
        "points": list(collector.points),
    }
    manifest["stages"] = stage_rollup(manifest)
    manifest["span_coverage"] = span_coverage(manifest)
    return manifest


def write_manifest(manifest, path, events=True):
    """Write *manifest* to *path* (and its JSONL stream when *events*);
    returns the list of paths written."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    written = [path]
    if events:
        stream = events_path(path)
        with open(stream, "w", encoding="utf-8") as fh:
            for span in manifest["spans"]:
                fh.write(json.dumps(dict(span, type="span"),
                                    sort_keys=True) + "\n")
            for sample in manifest["points"]:
                fh.write(json.dumps(dict(sample, type="point"),
                                    sort_keys=True) + "\n")
            for name in sorted(manifest["counters"]):
                fh.write(json.dumps(
                    {"type": "counter", "name": name,
                     "value": manifest["counters"][name]},
                    sort_keys=True) + "\n")
            for name in sorted(manifest["gauges"]):
                fh.write(json.dumps(
                    {"type": "gauge", "name": name,
                     "value": manifest["gauges"][name]},
                    sort_keys=True) + "\n")
        written.append(stream)
    return written


def validate_manifest(data, source="manifest"):
    """Raise :class:`ManifestError` unless *data* is a structurally
    valid manifest dict; returns it."""
    if not isinstance(data, dict):
        raise ManifestError("%s: not a JSON object" % source)
    if data.get("kind") != MANIFEST_KIND:
        raise ManifestError("%s: not a %s (kind=%r)"
                            % (source, MANIFEST_KIND, data.get("kind")))
    if data.get("schema") != MANIFEST_SCHEMA_VERSION:
        raise ManifestError(
            "%s: schema %r, this tool understands %d"
            % (source, data.get("schema"), MANIFEST_SCHEMA_VERSION))
    if not isinstance(data.get("wall_seconds"), (int, float)):
        raise ManifestError("%s: missing numeric wall_seconds" % source)
    for key, kind in (("counters", dict), ("gauges", dict),
                      ("spans", list), ("points", list),
                      ("meta", dict)):
        if not isinstance(data.get(key), kind):
            raise ManifestError("%s: missing %s %r"
                                % (source, kind.__name__, key))
    for span in data["spans"]:
        if not isinstance(span, dict) or "name" not in span \
                or not isinstance(span.get("seconds"), (int, float)):
            raise ManifestError("%s: malformed span entry %r"
                                % (source, span))
    return data


def load_manifest(path):
    """Read and validate the manifest at *path*."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError as exc:
        raise ManifestError("cannot read %s: %s" % (path, exc)) from exc
    except ValueError as exc:
        raise ManifestError("%s: invalid JSON (%s)" % (path, exc)) from exc
    return validate_manifest(data, source=path)
