"""The run collector: hierarchical spans, counters, gauges, points.

One :class:`Collector` instance records everything one run does.  A
module-level *active* collector (:func:`activate` / :func:`deactivate`
/ :func:`active`) is how instrumented code reaches it: the module
functions :func:`span`, :func:`add`, :func:`gauge`, and :func:`point`
look the active collector up and become near-free no-ops when none is
installed -- the default.  That cheapness is a hard requirement: the
whole pipeline is instrumented through these calls, and an
uninstrumented run (no ``--metrics``/``--timeline``/``--profile-run``)
must stay byte-identical in output and within noise in wall time.

Event kinds:

* **spans** -- hierarchical timed regions (``with obs.span("replay",
  workload="swim"):``).  Timing uses :func:`time.perf_counter`
  (monotonic); nesting comes from a per-collector stack, so spans form
  a forest whose roots are the run's top-level stages.  Finished spans
  are recorded in *completion* order (inner before outer).
* **counters** -- monotonically accumulated numbers
  (``obs.add("replay.records", 4096)``); floats are fine (the analysis
  suite accumulates per-pass feed seconds here).
* **gauges** -- last-write-wins scalars (``obs.gauge(
  "kernels.backend", "numpy")``).
* **points** -- timestamped samples for trajectories
  (``obs.point("search.score", 0.41, candidate=name)``).

Process-pool workers cannot share the parent's collector; they run
their own (:func:`Collector.export` is picklable) and the parent
merges the export with :meth:`Collector.absorb` -- worker spans become
children of the parent's current span and worker counters accumulate
into the parent's.  Merging in a deterministic order (the session
absorbs results in configured workload order) keeps manifests
deterministic modulo timing values.

Collectors are single-threaded by design: every producer in this
codebase is either the main thread or a worker *process* with a
collector of its own.
"""

import time

__all__ = [
    "Collector", "Span", "activate", "active", "add", "deactivate",
    "gauge", "point", "span",
]

_ACTIVE = None


def active():
    """The active :class:`Collector`, or ``None`` (the default)."""
    return _ACTIVE


def activate(collector):
    """Install *collector* as the process-wide active collector.

    Returns it.  Raises :class:`RuntimeError` if another collector is
    already active -- nested runs must not silently steal each other's
    events.
    """
    global _ACTIVE
    if _ACTIVE is not None and _ACTIVE is not collector:
        raise RuntimeError("another collector is already active")
    _ACTIVE = collector
    return collector


def deactivate():
    """Remove the active collector (idempotent); returns it or ``None``."""
    global _ACTIVE
    collector, _ACTIVE = _ACTIVE, None
    return collector


class _NullSpan:
    """The reusable no-op context manager :func:`span` returns when no
    collector is active."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


def span(name, **attrs):
    """A timed span context manager, or a shared no-op when disabled."""
    collector = _ACTIVE
    if collector is None:
        return _NULL_SPAN
    return collector.span(name, **attrs)


def add(name, value=1):
    """Accumulate *value* into counter *name* (no-op when disabled)."""
    collector = _ACTIVE
    if collector is not None:
        collector.add(name, value)


def gauge(name, value):
    """Set gauge *name* to *value* (no-op when disabled)."""
    collector = _ACTIVE
    if collector is not None:
        collector.gauge(name, value)


def point(name, value, **attrs):
    """Record a timestamped sample (no-op when disabled)."""
    collector = _ACTIVE
    if collector is not None:
        collector.point(name, value, **attrs)


class Span:
    """One live span; finished spans live on as plain dicts."""

    __slots__ = ("_collector", "id", "parent", "depth", "name", "attrs",
                 "start", "_t0")

    def __init__(self, collector, span_id, parent, depth, name, attrs):
        self._collector = collector
        self.id = span_id
        self.parent = parent
        self.depth = depth
        self.name = name
        self.attrs = attrs

    def __enter__(self):
        self._collector._stack.append(self)
        self._t0 = self._collector.clock()
        self.start = self._t0 - self._collector.epoch
        return self

    def __exit__(self, exc_type, exc, tb):
        collector = self._collector
        seconds = collector.clock() - self._t0
        stack = collector._stack
        if stack and stack[-1] is self:
            stack.pop()
        collector.spans.append({
            "id": self.id, "parent": self.parent, "depth": self.depth,
            "name": self.name, "start": round(self.start, 6),
            "seconds": round(seconds, 6), "attrs": self.attrs,
        })
        return False


class Collector:
    """Accumulates one run's spans, counters, gauges, and points.

    *clock* is injectable for deterministic tests; it must be
    monotonic.  ``epoch`` (the clock at construction) anchors every
    span start and point timestamp, so all times are relative seconds
    into the run.
    """

    def __init__(self, clock=time.perf_counter):
        self.clock = clock
        self.epoch = clock()
        self.spans = []      #: finished span dicts, completion order
        self.counters = {}
        self.gauges = {}
        self.points = []
        self._stack = []
        self._next_id = 1

    # -- recording -----------------------------------------------------------

    def span(self, name, **attrs):
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1].id if self._stack else None
        return Span(self, span_id, parent, len(self._stack), name, attrs)

    def add(self, name, value=1):
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name, value):
        self.gauges[name] = value

    def point(self, name, value, **attrs):
        self.points.append({
            "name": name, "value": value,
            "t": round(self.clock() - self.epoch, 6), "attrs": attrs,
        })

    def wall_seconds(self):
        """Seconds since this collector was constructed."""
        return self.clock() - self.epoch

    # -- cross-process merge -------------------------------------------------

    def export(self):
        """This collector's events as one picklable/JSON-able dict --
        what a pool worker ships back over the result pipe."""
        return {"spans": list(self.spans),
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
                "points": list(self.points)}

    def absorb(self, export, **attrs):
        """Merge a worker's :meth:`export` into this collector.

        Imported spans are re-identified (ids are collector-local),
        attached under the current span (top-level imported spans get
        the current stack top as parent), and tagged with *attrs*
        (existing span attrs win on conflict).  Counters accumulate;
        gauges fill in only where this collector has no value; points
        append with *attrs* merged.  Imported timestamps stay relative
        to the *worker's* epoch -- durations are meaningful, offsets
        are per-process.
        """
        if not export:
            return
        base_parent = self._stack[-1].id if self._stack else None
        base_depth = len(self._stack)
        imported = list(export.get("spans", ()))
        # Assign every new id up front: spans arrive in completion
        # order (children before parents), so parents resolve only
        # against a complete map.
        id_map = {}
        for span_dict in imported:
            id_map[span_dict["id"]] = self._next_id
            self._next_id += 1
        for span_dict in imported:
            merged = dict(span_dict)
            merged["id"] = id_map[span_dict["id"]]
            parent = span_dict.get("parent")
            merged["parent"] = (id_map.get(parent, base_parent)
                                if parent is not None else base_parent)
            merged["depth"] = span_dict.get("depth", 0) + base_depth
            if attrs:
                merged["attrs"] = dict(attrs, **span_dict.get("attrs", {}))
            self.spans.append(merged)
        for name, value in export.get("counters", {}).items():
            self.add(name, value)
        for name, value in export.get("gauges", {}).items():
            self.gauges.setdefault(name, value)
        for point_dict in export.get("points", ()):
            merged = dict(point_dict)
            if attrs:
                merged["attrs"] = dict(attrs, **point_dict.get("attrs", {}))
            self.points.append(merged)
