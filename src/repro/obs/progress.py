"""The tty-gated live progress line.

The sweep orchestrator can run for minutes; on an interactive terminal
the CLI shows a single self-overwriting stderr line::

    cells 12/24 (8.3/s, ETA 1.4s)

and stays **completely silent when stderr is not a tty** -- piped and
redirected runs (CI, logs) see nothing, so no golden output changes.
The line is carriage-return overwritten in place and cleared with a
newline by :meth:`ProgressLine.close` once the run finishes.
"""

import sys
import time

__all__ = ["ProgressLine"]


class ProgressLine:
    """A ``done/total (rate, ETA)`` line on *stream* when it is a tty.

    *clock* is injectable for tests; *label* names the unit.  All
    methods are no-ops when the stream is not a tty (or *total* is not
    positive), so callers never need to gate on interactivity
    themselves.
    """

    def __init__(self, total, label="cells", stream=None,
                 clock=time.monotonic):
        self.total = total
        self.label = label
        self.stream = sys.stderr if stream is None else stream
        self.clock = clock
        isatty = getattr(self.stream, "isatty", None)
        self.enabled = bool(total > 0 and isatty and isatty())
        self._start = clock()
        self._width = 0

    def update(self, done):
        """Redraw the line for *done* finished units."""
        if not self.enabled:
            return
        elapsed = self.clock() - self._start
        if elapsed > 0 and done > 0:
            rate = done / elapsed
            eta = (self.total - done) / rate
            detail = "%.1f/s, ETA %.1fs" % (rate, eta)
        else:
            detail = "starting"
        text = "%s %d/%d (%s)" % (self.label, done, self.total, detail)
        pad = max(0, self._width - len(text))
        self._width = len(text)
        self.stream.write("\r" + text + " " * pad)
        self.stream.flush()

    def close(self):
        """Terminate the line (newline) if anything was drawn."""
        if self.enabled and self._width:
            self.stream.write("\n")
            self.stream.flush()
            self._width = 0
