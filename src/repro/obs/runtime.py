"""Runner-side instrumentation lifecycle: one object, one code path.

:class:`RunObserver` is how every front end (``runner``, ``runner
sweep``, ``runner search``) drives the obs layer: it owns the
:class:`~repro.obs.collector.Collector` (activated only when the user
asked for instrumentation via ``--metrics``, ``--timeline``, or
``--profile-run``), the optional :mod:`cProfile` profiler, manifest
writing (including the :data:`~repro.obs.manifest.LAST_RUN_MANIFEST`
copies the maintenance CLIs read), and the post-run rendering -- the
span timeline and the cProfile table come from this one place, which
is what makes ``--profile-run`` an alias into the obs layer rather
than a parallel mechanism.

When nothing was requested the observer is inert: no collector is
activated, :meth:`profiled` is a no-op context, :meth:`finalize`
returns immediately -- the default run's output and hot path are
untouched.
"""

import sys
from contextlib import contextmanager

from repro.obs.collector import Collector, activate, deactivate

__all__ = ["RunObserver"]


class RunObserver:
    """Instrumentation for one CLI invocation.

    *metrics_path* enables manifest writing; *timeline* prints the
    per-stage breakdown after the run; *profile_lines* (an int) runs
    the observed region under cProfile and prints the top-N table.
    Any of the three activates the collector.  *copy_dirs* lists
    directories (trace cache, sweep store) that get a
    ``last-run-manifest.json`` copy when ``--metrics`` was used.
    """

    def __init__(self, metrics_path=None, timeline=False,
                 profile_lines=None, argv=None, command="run",
                 copy_dirs=()):
        self.metrics_path = metrics_path
        self.timeline = timeline
        self.profile_lines = profile_lines
        self.argv = argv
        self.command = command
        self.copy_dirs = [d for d in copy_dirs if d is not None]
        self.enabled = (metrics_path is not None or timeline
                        or profile_lines is not None)
        self.collector = Collector() if self.enabled else None
        self.manifest = None
        self._profiler = None
        self._activated = False
        if profile_lines is not None:
            import cProfile
            self._profiler = cProfile.Profile()

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self):
        if self.collector is not None:
            activate(self.collector)
            self._activated = True
        return self

    def __exit__(self, exc_type, exc, tb):
        if self._activated:
            deactivate()
            self._activated = False
        return False

    @contextmanager
    def profiled(self):
        """Run the enclosed block under cProfile when ``--profile-run``
        asked for it; otherwise a plain pass-through."""
        if self._profiler is None:
            yield
            return
        self._profiler.enable()
        try:
            yield
        finally:
            self._profiler.disable()

    # -- emission ------------------------------------------------------------

    def record_session(self, session):
        """Mirror a finished session's :class:`~repro.pipeline.session.
        SessionStats` into counters (the manifest's source of truth for
        cache hit/miss and replay totals) and tag the kernel backend."""
        if self.collector is None:
            return
        from repro.trace.kernels import backend

        stats = session.stats
        self.collector.add("pipeline.replays", stats.replays)
        self.collector.add("pipeline.cache_hits", stats.cache_hits)
        self.collector.add("pipeline.traced", stats.traced)
        self.collector.gauge("kernels.backend", backend())

    def finalize(self, extra_meta=None, stream=None):
        """Build the manifest, write artifacts, print opt-in reports.

        Called once, after the run's results were emitted (so the
        timeline/cProfile sections land after them, exactly where
        ``--profile-run`` always printed).  Returns the manifest dict
        (or ``None`` when the observer is inert).
        """
        if self.collector is None:
            return None
        if self._activated:
            deactivate()
            self._activated = False
        from repro.obs.manifest import LAST_RUN_MANIFEST, \
            build_manifest, write_manifest
        from repro.obs.timeline import render_timeline

        out = sys.stdout if stream is None else stream
        self.manifest = build_manifest(self.collector, argv=self.argv,
                                       command=self.command,
                                       extra=extra_meta)
        if self.metrics_path is not None:
            write_manifest(self.manifest, self.metrics_path)
            print("[metrics: %s]" % self.metrics_path, file=sys.stderr)
            import os
            for directory in self.copy_dirs:
                try:
                    write_manifest(
                        self.manifest,
                        os.path.join(directory, LAST_RUN_MANIFEST),
                        events=False)
                except OSError:
                    pass    # best effort: a read-only cache dir is fine
        if self.timeline:
            print(file=out)
            print(render_timeline(self.manifest), file=out)
        if self._profiler is not None:
            import pstats
            # Caveat: cProfile's tracing overhead inflates tight Python
            # loops severalfold; read this as "where the time goes",
            # not as absolute wall time.
            print(file=out)
            print("[cProfile: top %d by cumulative time]"
                  % self.profile_lines, file=out)
            stats = pstats.Stats(self._profiler, stream=out)
            stats.sort_stats("cumulative")
            stats.print_stats(self.profile_lines)
        return self.manifest
