"""Zero-dependency runtime observability for the whole stack.

Instrumented code talks to this package through four module functions
-- :func:`span`, :func:`add`, :func:`gauge`, :func:`point` -- which
are near-free no-ops unless a :class:`Collector` has been activated
(``runner --metrics/--timeline/--profile-run`` does that through
:class:`~repro.obs.runtime.RunObserver`).  See
``docs/OBSERVABILITY.md`` for the span/counter naming conventions,
the manifest schema, and how to instrument a new pass.

Typical instrumentation::

    from repro import obs

    with obs.span("replay", workload=name, source="cache"):
        ...
    obs.add("replay.records", n)

Typical consumption::

    runner all --metrics run.json --timeline
    python tools/obs_report.py run.json
    python tools/bench_check.py --manifest run.json
"""

from repro.obs.collector import (
    Collector,
    activate,
    active,
    add,
    deactivate,
    gauge,
    point,
    span,
)
from repro.obs.manifest import (
    LAST_RUN_MANIFEST,
    MANIFEST_SCHEMA_VERSION,
    ManifestError,
    build_manifest,
    events_path,
    load_manifest,
    validate_manifest,
    write_manifest,
)
from repro.obs.progress import ProgressLine
from repro.obs.runtime import RunObserver
from repro.obs.timeline import render_timeline, span_coverage, \
    stage_rollup

__all__ = [
    "Collector",
    "LAST_RUN_MANIFEST",
    "MANIFEST_SCHEMA_VERSION",
    "ManifestError",
    "ProgressLine",
    "RunObserver",
    "activate",
    "active",
    "add",
    "build_manifest",
    "deactivate",
    "events_path",
    "gauge",
    "load_manifest",
    "point",
    "render_timeline",
    "span",
    "span_coverage",
    "stage_rollup",
    "validate_manifest",
    "write_manifest",
]
