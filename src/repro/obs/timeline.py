"""Per-stage timeline rollups and the post-run text breakdown.

Spans form a forest (each carries its parent id); the rollup
aggregates them by *name path* -- ``analyze/replay`` is every span
named ``replay`` whose parent chain renders as ``analyze`` -- so a
manifest with one ``replay`` span per workload shows a single
``replay`` stage with its count and summed seconds.  ``runner
--timeline`` renders the rollup as an indented table with percent of
wall-clock; ``tools/obs_report.py`` renders and diffs the same
structure from saved manifests.
"""

__all__ = ["render_timeline", "span_coverage", "stage_rollup"]


def stage_rollup(manifest):
    """Aggregate *manifest*'s spans by name path.

    Returns a list of ``{"path", "depth", "count", "seconds"}`` dicts
    ordered by first start time within the tree (parents before
    children, siblings by first appearance).
    """
    spans = manifest["spans"]
    by_id = {span["id"]: span for span in spans}

    def path_of(span):
        parts = [span["name"]]
        parent = span.get("parent")
        seen = {span["id"]}
        while parent is not None and parent in by_id \
                and parent not in seen:
            seen.add(parent)
            parent_span = by_id[parent]
            parts.append(parent_span["name"])
            parent = parent_span.get("parent")
        return "/".join(reversed(parts))

    stages = {}
    for span in spans:
        path = path_of(span)
        stage = stages.get(path)
        if stage is None:
            stages[path] = stage = {
                "path": path, "depth": path.count("/"), "count": 0,
                "seconds": 0.0, "first_start": span.get("start", 0.0),
            }
        stage["count"] += 1
        stage["seconds"] = round(stage["seconds"] + span["seconds"], 6)
        start = span.get("start", 0.0)
        if start < stage["first_start"]:
            stage["first_start"] = start

    def sort_key(stage):
        # Parents sort before children; siblings by first start, then
        # path (a tiebreak that keeps equal-start stages stable).
        parts = stage["path"].split("/")
        prefixes = ["/".join(parts[:i + 1]) for i in range(len(parts))]
        return tuple((stages[p]["first_start"], p) for p in prefixes
                     if p in stages)

    ordered = sorted(stages.values(), key=sort_key)
    for stage in ordered:
        del stage["first_start"]
    return ordered


def span_coverage(manifest):
    """Fraction of wall-clock covered by top-level spans (0.0-1.0).

    The manifest acceptance bar: summed root-span seconds must account
    for >= 90% of wall-clock, or the instrumentation is missing a
    stage.
    """
    wall = manifest.get("wall_seconds") or 0.0
    if wall <= 0:
        return 0.0
    covered = sum(span["seconds"] for span in manifest["spans"]
                  if span.get("parent") is None)
    return round(min(1.0, covered / wall), 4)


def render_timeline(manifest):
    """The post-run per-stage text breakdown of *manifest*."""
    stages = manifest.get("stages") or stage_rollup(manifest)
    wall = manifest.get("wall_seconds") or 0.0
    coverage = manifest.get("span_coverage")
    if coverage is None:
        coverage = span_coverage(manifest)
    lines = ["timeline: %.3fs wall, top-level spans cover %.1f%%"
             % (wall, 100.0 * coverage)]
    if not stages:
        lines.append("  (no spans recorded)")
        return "\n".join(lines)
    width = max(len("  " * s["depth"] + s["path"].rsplit("/", 1)[-1])
                for s in stages)
    for stage in stages:
        label = "  " * stage["depth"] + stage["path"].rsplit("/", 1)[-1]
        share = 100.0 * stage["seconds"] / wall if wall > 0 else 0.0
        lines.append("  %-*s  %9.3fs  %5.1f%%  x%d"
                     % (width, label, stage["seconds"], share,
                        stage["count"]))
    return "\n".join(lines)
