"""Text assembler.

Accepts a conventional line-oriented syntax::

    ; comment
    .data table 8 = 1 2 3 4 5 6 7 8
    .entry main
    main:
        li   t0, 0
        li   t1, 10
    loop:
        addi t0, t0, 1
        blt  t0, t1, loop
        halt

Directives:

``.data NAME SIZE [= v0 v1 ...]``
    allocate SIZE words of data memory, optionally initialized.
``.entry LABEL``
    set the program entry point (defaults to address 0).

Memory operands use ``imm(reg)`` syntax; branch/jump targets are labels or
absolute integers.
"""

import re

from repro.isa.errors import AssemblerError
from repro.isa.instructions import (
    ALU_IMM_OPS,
    ALU_OPS,
    BRANCH_OPS,
    Instruction,
    Opcode,
)
from repro.isa.program import Program
from repro.isa.registers import parse_register

_MEM_RE = re.compile(r"^(-?\w+)\((\w+)\)$")
_LABEL_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")


def _split_operands(rest):
    rest = rest.strip()
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


def _parse_int(text, line):
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError("expected integer, got %r" % text, line) from None


def _parse_target(text, line):
    """A target is either an absolute integer or a label reference."""
    try:
        return int(text, 0), None
    except ValueError:
        pass
    if not _LABEL_RE.match(text):
        raise AssemblerError("bad target %r" % text, line)
    return None, text


def _parse_reg(text, line):
    try:
        return parse_register(text)
    except Exception:
        raise AssemblerError("bad register %r" % text, line) from None


def _expect(operands, count, mnemonic, line):
    if len(operands) != count:
        raise AssemblerError(
            "%s expects %d operands, got %d" % (mnemonic, count,
                                                len(operands)), line)


def assemble(source, name="program"):
    """Assemble *source* text into a finalized :class:`Program`."""
    program = Program(name=name)
    entry_label = None
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";", 1)[0].split("#", 1)[0].strip()
        if not line:
            continue
        while ":" in line:
            label, _, line = line.partition(":")
            label = label.strip()
            if not _LABEL_RE.match(label):
                raise AssemblerError("bad label %r" % label, lineno)
            try:
                program.label(label)
            except Exception as exc:
                raise AssemblerError(str(exc), lineno) from None
            line = line.strip()
        if not line:
            continue
        if line.startswith(".data"):
            _parse_data_directive(program, line, lineno)
            continue
        if line.startswith(".entry"):
            parts = line.split()
            if len(parts) != 2:
                raise AssemblerError(".entry expects one label", lineno)
            entry_label = parts[1]
            continue
        program.emit(_parse_instruction(line, lineno))
    if entry_label is not None:
        try:
            program.set_entry(entry_label)
        except Exception as exc:
            raise AssemblerError(str(exc)) from None
    try:
        program.finalize()
    except Exception as exc:
        raise AssemblerError(str(exc)) from None
    return program


def _parse_data_directive(program, line, lineno):
    body = line[len(".data"):].strip()
    init = None
    if "=" in body:
        body, _, init_text = body.partition("=")
        init = [_parse_int(tok, lineno) for tok in init_text.split()]
    parts = body.split()
    if len(parts) != 2:
        raise AssemblerError(".data expects NAME SIZE", lineno)
    name, size_text = parts
    size = _parse_int(size_text, lineno)
    try:
        program.data.allocate(name, size, init)
    except Exception as exc:
        raise AssemblerError(str(exc), lineno) from None


def _parse_instruction(line, lineno):
    mnemonic, _, rest = line.partition(" ")
    mnemonic = mnemonic.strip().lower()
    try:
        op = Opcode(mnemonic)
    except ValueError:
        raise AssemblerError("unknown mnemonic %r" % mnemonic,
                             lineno) from None
    ops = _split_operands(rest)

    if op in ALU_OPS:
        _expect(ops, 3, mnemonic, lineno)
        return Instruction(op, rd=_parse_reg(ops[0], lineno),
                           rs1=_parse_reg(ops[1], lineno),
                           rs2=_parse_reg(ops[2], lineno))
    if op in ALU_IMM_OPS:
        _expect(ops, 3, mnemonic, lineno)
        return Instruction(op, rd=_parse_reg(ops[0], lineno),
                           rs1=_parse_reg(ops[1], lineno),
                           imm=_parse_int(ops[2], lineno))
    if op in BRANCH_OPS:
        _expect(ops, 3, mnemonic, lineno)
        target, label = _parse_target(ops[2], lineno)
        return Instruction(op, rs1=_parse_reg(ops[0], lineno),
                           rs2=_parse_reg(ops[1], lineno),
                           target=target, label=label)
    if op is Opcode.LI:
        _expect(ops, 2, mnemonic, lineno)
        return Instruction(op, rd=_parse_reg(ops[0], lineno),
                           imm=_parse_int(ops[1], lineno))
    if op is Opcode.MV:
        _expect(ops, 2, mnemonic, lineno)
        return Instruction(op, rd=_parse_reg(ops[0], lineno),
                           rs1=_parse_reg(ops[1], lineno))
    if op is Opcode.LD:
        _expect(ops, 2, mnemonic, lineno)
        base, offset = _parse_mem_operand(ops[1], lineno)
        return Instruction(op, rd=_parse_reg(ops[0], lineno),
                           rs1=base, imm=offset)
    if op is Opcode.ST:
        _expect(ops, 2, mnemonic, lineno)
        base, offset = _parse_mem_operand(ops[1], lineno)
        return Instruction(op, rs2=_parse_reg(ops[0], lineno),
                           rs1=base, imm=offset)
    if op in (Opcode.JMP, Opcode.CALL):
        _expect(ops, 1, mnemonic, lineno)
        target, label = _parse_target(ops[0], lineno)
        return Instruction(op, target=target, label=label)
    if op is Opcode.JR:
        _expect(ops, 1, mnemonic, lineno)
        return Instruction(op, rs1=_parse_reg(ops[0], lineno))
    if op in (Opcode.RET, Opcode.NOP, Opcode.HALT):
        _expect(ops, 0, mnemonic, lineno)
        return Instruction(op)
    raise AssemblerError("unhandled opcode %r" % mnemonic, lineno)


def _parse_mem_operand(text, lineno):
    match = _MEM_RE.match(text.replace(" ", ""))
    if not match:
        raise AssemblerError("bad memory operand %r" % text, lineno)
    offset_text, reg_text = match.groups()
    return _parse_reg(reg_text, lineno), _parse_int(offset_text, lineno)
