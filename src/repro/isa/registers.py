"""Register file definition and software conventions.

The machine has 32 general-purpose 64-bit registers.  Register 0 is
hard-wired to zero, as in most RISC ISAs.  The remaining conventions are
purely a software contract between :mod:`repro.lang.compiler` and hand
written assembly:

====== ========= ==========================================
index  name      role
====== ========= ==========================================
0      zero      always reads as 0, writes are discarded
1      ra        return address (written by ``call``)
2      sp        stack pointer
3      fp        frame pointer
4      rv        first argument / return value
5-9    a1..a5    further arguments
10-19  t0..t9    expression temporaries (caller saved)
20-29  s0..s9    saved registers (callee saved)
30-31  x0..x1    assembler/compiler scratch
====== ========= ==========================================
"""

from repro.isa.errors import IsaError

NUM_REGISTERS = 32

REG_ZERO = 0
REG_RA = 1
REG_SP = 2
REG_FP = 3
REG_RV = 4

#: Argument registers, in order; the first doubles as the return value.
ARG_REGISTERS = (4, 5, 6, 7, 8, 9)

#: Temporaries used by the expression compiler as an evaluation stack.
TEMP_REGISTERS = tuple(range(10, 20))

#: Callee-saved registers.
SAVED_REGISTERS = tuple(range(20, 30))

REG_SCRATCH0 = 30
REG_SCRATCH1 = 31

_SPECIAL_NAMES = {
    REG_ZERO: "zero",
    REG_RA: "ra",
    REG_SP: "sp",
    REG_FP: "fp",
}

_NAME_TO_INDEX = {}


def _build_name_table():
    for idx, name in _SPECIAL_NAMES.items():
        _NAME_TO_INDEX[name] = idx
    for pos, idx in enumerate(ARG_REGISTERS):
        _NAME_TO_INDEX["a%d" % pos] = idx
    _NAME_TO_INDEX["rv"] = REG_RV
    for pos, idx in enumerate(TEMP_REGISTERS):
        _NAME_TO_INDEX["t%d" % pos] = idx
    for pos, idx in enumerate(SAVED_REGISTERS):
        _NAME_TO_INDEX["s%d" % pos] = idx
    _NAME_TO_INDEX["x0"] = REG_SCRATCH0
    _NAME_TO_INDEX["x1"] = REG_SCRATCH1
    for idx in range(NUM_REGISTERS):
        _NAME_TO_INDEX["r%d" % idx] = idx


_build_name_table()


def register_name(index):
    """Return the canonical symbolic name of register *index*."""
    if not 0 <= index < NUM_REGISTERS:
        raise IsaError("register index out of range: %r" % (index,))
    if index in _SPECIAL_NAMES:
        return _SPECIAL_NAMES[index]
    if index == REG_RV:
        return "rv"
    if index in ARG_REGISTERS:
        return "a%d" % ARG_REGISTERS.index(index)
    if index in TEMP_REGISTERS:
        return "t%d" % TEMP_REGISTERS.index(index)
    if index in SAVED_REGISTERS:
        return "s%d" % SAVED_REGISTERS.index(index)
    if index == REG_SCRATCH0:
        return "x0"
    return "x1"


def parse_register(text):
    """Parse a register name (``r7``, ``sp``, ``t3``, ...) to its index."""
    try:
        return _NAME_TO_INDEX[text.strip().lower()]
    except KeyError:
        raise IsaError("unknown register name: %r" % (text,)) from None
