"""Binary encoding of programs.

A fixed 16-byte word per instruction::

    byte 0      opcode ordinal
    byte 1      rd
    byte 2      rs1
    byte 3      rs2
    bytes 4-11  imm  (signed 64-bit, little endian)
    bytes 12-15 target (unsigned 32-bit; 0xFFFFFFFF = none)

plus a small container format for whole programs (magic, entry point,
instruction count, label table, data segment).  This gives the suite a
stable on-disk form -- traces can be regenerated anywhere from a few KB
-- and pins the instruction set: adding/reordering opcodes breaks the
round-trip tests loudly.
"""

import struct

from repro.isa.errors import ProgramError
from repro.isa.instructions import Instruction, Opcode
from repro.isa.program import Program

_MAGIC = b"RPRO\x01"
_NO_TARGET = 0xFFFFFFFF
_INSTR = struct.Struct("<BBBBqI")

#: Stable opcode numbering for the wire format (append-only).
WIRE_OPCODES = (
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SLL, Opcode.SRL,
    Opcode.SRA, Opcode.SLT, Opcode.SLE, Opcode.SEQ, Opcode.SNE,
    Opcode.MIN, Opcode.MAX,
    Opcode.ADDI, Opcode.SUBI, Opcode.MULI, Opcode.DIVI, Opcode.REMI,
    Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SLLI, Opcode.SRLI,
    Opcode.SRAI, Opcode.SLTI,
    Opcode.LI, Opcode.MV, Opcode.LD, Opcode.ST,
    Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLE,
    Opcode.BGT, Opcode.JMP, Opcode.JR, Opcode.CALL, Opcode.RET,
    Opcode.NOP, Opcode.HALT,
)
_TO_WIRE = {op: i for i, op in enumerate(WIRE_OPCODES)}

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


def encode_instruction(instr):
    """Encode one (finalized) instruction to 16 bytes."""
    if instr.op not in _TO_WIRE:
        raise ProgramError("opcode %r has no wire encoding" % instr.op)
    if not _I64_MIN <= instr.imm <= _I64_MAX:
        raise ProgramError("immediate %d out of encodable range"
                           % instr.imm)
    target = _NO_TARGET if instr.target is None else instr.target
    return _INSTR.pack(_TO_WIRE[instr.op], instr.rd, instr.rs1,
                       instr.rs2, instr.imm, target)


def decode_instruction(blob):
    """Decode 16 bytes back to an :class:`Instruction`."""
    code, rd, rs1, rs2, imm, target = _INSTR.unpack(blob)
    if code >= len(WIRE_OPCODES):
        raise ProgramError("unknown wire opcode %d" % code)
    return Instruction(WIRE_OPCODES[code], rd=rd, rs1=rs1, rs2=rs2,
                       imm=imm,
                       target=None if target == _NO_TARGET else target)


def _pack_str(text):
    raw = text.encode("utf-8")
    return struct.pack("<H", len(raw)) + raw


def _unpack_str(blob, offset):
    (length,) = struct.unpack_from("<H", blob, offset)
    offset += 2
    return blob[offset:offset + length].decode("utf-8"), offset + length


def encode_program(program):
    """Serialize a finalized program to bytes."""
    program.finalize()
    parts = [_MAGIC, _pack_str(program.name),
             struct.pack("<II", program.entry, len(program.instructions))]
    for instr in program.instructions:
        parts.append(encode_instruction(instr))
    parts.append(struct.pack("<I", len(program.labels)))
    for name, addr in sorted(program.labels.items()):
        parts.append(_pack_str(name))
        parts.append(struct.pack("<I", addr))
    data = program.data
    parts.append(struct.pack("<qI", data.base, len(data.symbols)))
    for name, addr in sorted(data.symbols.items()):
        parts.append(_pack_str(name))
        parts.append(struct.pack("<q", addr))
    parts.append(struct.pack("<I", len(data.initial)))
    for addr, value in sorted(data.initial.items()):
        parts.append(struct.pack("<qq", addr, value))
    return b"".join(parts)


def decode_program(blob):
    """Deserialize bytes produced by :func:`encode_program`."""
    if not blob.startswith(_MAGIC):
        raise ProgramError("not an encoded program (bad magic)")
    offset = len(_MAGIC)
    name, offset = _unpack_str(blob, offset)
    entry, count = struct.unpack_from("<II", blob, offset)
    offset += 8
    program = Program(name=name)
    for _ in range(count):
        program.emit(decode_instruction(blob[offset:offset + _INSTR.size]))
        offset += _INSTR.size
    (nlabels,) = struct.unpack_from("<I", blob, offset)
    offset += 4
    for _ in range(nlabels):
        label, offset = _unpack_str(blob, offset)
        (addr,) = struct.unpack_from("<I", blob, offset)
        offset += 4
        program.labels[label] = addr
    base, nsymbols = struct.unpack_from("<qI", blob, offset)
    offset += 12
    program.data.base = base
    next_free = base
    for _ in range(nsymbols):
        symbol, offset = _unpack_str(blob, offset)
        (addr,) = struct.unpack_from("<q", blob, offset)
        offset += 8
        program.data.symbols[symbol] = addr
        next_free = max(next_free, addr + 1)
    program.data._next = next_free
    (ninit,) = struct.unpack_from("<I", blob, offset)
    offset += 4
    for _ in range(ninit):
        addr, value = struct.unpack_from("<qq", blob, offset)
        offset += 16
        program.data.initial[addr] = value
        program.data._next = max(program.data._next, addr + 1)
    program.entry = entry
    return program.finalize()
