"""Exception hierarchy for the ISA layer."""


class IsaError(Exception):
    """Base class for all ISA-level errors."""


class AssemblerError(IsaError):
    """Raised when text assembly cannot be parsed or resolved."""

    def __init__(self, message, line=None):
        if line is not None:
            message = "line %d: %s" % (line, message)
        super().__init__(message)
        self.line = line


class ProgramError(IsaError):
    """Raised when a :class:`~repro.isa.program.Program` is malformed."""
