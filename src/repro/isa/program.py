"""Program container: instructions, labels and initial data memory."""

from repro.isa.errors import ProgramError
from repro.isa.instructions import Instruction, Opcode


class DataSegment:
    """Initial contents of data memory.

    Data addresses live in a flat 64-bit space separate from instruction
    addresses (a Harvard layout keeps loop detection, which operates on
    instruction addresses only, independent from data placement).
    Symbols name the base addresses of allocated regions.
    """

    def __init__(self, base=0x10000):
        self.base = base
        self._next = base
        self.symbols = {}
        self.initial = {}

    def allocate(self, name, size, init=None):
        """Allocate *size* words under *name*; optionally initialize them.

        Returns the base address of the region.
        """
        if size <= 0:
            raise ProgramError("allocation %r must have positive size" % name)
        if name in self.symbols:
            raise ProgramError("duplicate data symbol %r" % name)
        addr = self._next
        self.symbols[name] = addr
        self._next += size
        if init is not None:
            values = list(init)
            if len(values) > size:
                raise ProgramError(
                    "initializer for %r longer than its %d words"
                    % (name, size))
            for offset, value in enumerate(values):
                self.initial[addr + offset] = int(value)
        return addr

    def address_of(self, name):
        try:
            return self.symbols[name]
        except KeyError:
            raise ProgramError("unknown data symbol %r" % name) from None

    @property
    def size(self):
        return self._next - self.base


class Program:
    """An assembled program ready to run on :class:`repro.cpu.Machine`."""

    def __init__(self, name="program"):
        self.name = name
        self.instructions = []
        self.labels = {}
        self.data = DataSegment()
        self.entry = 0
        self._finalized = False

    def __len__(self):
        return len(self.instructions)

    def label(self, name):
        """Define *name* at the current end of the instruction stream."""
        if name in self.labels:
            raise ProgramError("duplicate label %r" % name)
        self.labels[name] = len(self.instructions)
        self._finalized = False
        return self

    def emit(self, instruction):
        """Append one instruction; returns its address."""
        if not isinstance(instruction, Instruction):
            raise ProgramError("emit() expects an Instruction, got %r"
                               % (instruction,))
        addr = len(self.instructions)
        self.instructions.append(instruction)
        self._finalized = False
        return addr

    def address_of(self, label):
        try:
            return self.labels[label]
        except KeyError:
            raise ProgramError("unknown label %r" % label) from None

    def set_entry(self, label_or_addr):
        if isinstance(label_or_addr, str):
            self.entry = self.address_of(label_or_addr)
        else:
            self.entry = int(label_or_addr)
        return self

    def finalize(self):
        """Resolve labels to absolute targets and validate the program."""
        if self._finalized:
            return self
        if not self.instructions:
            raise ProgramError("program %r has no instructions" % self.name)
        for pc, instr in enumerate(self.instructions):
            if instr.label is not None:
                if instr.label not in self.labels:
                    raise ProgramError(
                        "unresolved label %r at pc %d" % (instr.label, pc))
                instr.target = self.labels[instr.label]
            instr.validate()
            if instr.target is not None and not (
                    0 <= instr.target < len(self.instructions)):
                raise ProgramError(
                    "target %d of pc %d out of range" % (instr.target, pc))
        if not 0 <= self.entry < len(self.instructions):
            raise ProgramError("entry point %d out of range" % self.entry)
        if not any(i.op is Opcode.HALT for i in self.instructions):
            raise ProgramError("program %r never halts" % self.name)
        self._finalized = True
        return self

    def listing(self):
        """Return a human-readable disassembly with labels."""
        by_addr = {}
        for name, addr in self.labels.items():
            by_addr.setdefault(addr, []).append(name)
        lines = []
        for pc, instr in enumerate(self.instructions):
            for name in sorted(by_addr.get(pc, ())):
                lines.append("%s:" % name)
            lines.append("  %4d  %s" % (pc, instr.render()))
        return "\n".join(lines)

    def static_backward_targets(self):
        """Set of targets of static backward control transfers.

        This is the static counterpart of the paper's loop identifier set:
        every loop identifier the detector may discover is the target of
        some backward branch or jump.
        """
        self.finalize()
        targets = set()
        for pc, instr in enumerate(self.instructions):
            if instr.target is not None and instr.target <= pc:
                targets.add(instr.target)
        return targets
