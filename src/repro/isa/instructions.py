"""Instruction representation.

Programs are sequences of :class:`Instruction` objects; the program
counter is the index into that sequence (word addressing).  The dynamic
loop detector only distinguishes instruction *kinds* (conditional branch,
direct jump, indirect jump, call, return, other), which is exactly the
classification the paper's hardware would get from the decoder.
"""

import enum

from repro.isa.errors import IsaError
from repro.isa.registers import register_name


class InstrKind(enum.IntEnum):
    """Dynamic classification of an instruction, as seen by the detector."""

    OTHER = 0
    BRANCH = 1   # conditional, direct target
    JUMP = 2     # unconditional, direct target
    IJUMP = 3    # unconditional, register target (e.g. switch tables)
    CALL = 4     # direct call; pushes the return address
    RET = 5      # subroutine return
    HALT = 6     # stops the machine

    @property
    def is_control(self):
        return self is not InstrKind.OTHER


class Opcode(str, enum.Enum):
    """All opcodes understood by the interpreter and the assembler."""

    # Three-register ALU operations.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"      # truncating signed division; x/0 defined as 0
    REM = "rem"      # remainder matching DIV; x%0 defined as x
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    SLT = "slt"
    SLE = "sle"
    SEQ = "seq"
    SNE = "sne"
    MIN = "min"
    MAX = "max"

    # Register-immediate ALU operations.
    ADDI = "addi"
    SUBI = "subi"
    MULI = "muli"
    DIVI = "divi"
    REMI = "remi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLLI = "slli"
    SRLI = "srli"
    SRAI = "srai"
    SLTI = "slti"

    # Data movement.
    LI = "li"        # rd <- imm
    MV = "mv"        # rd <- rs1
    LD = "ld"        # rd <- mem[rs1 + imm]
    ST = "st"        # mem[rs1 + imm] <- rs2

    # Control transfers.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLE = "ble"
    BGT = "bgt"
    JMP = "jmp"
    JR = "jr"        # indirect jump through rs1
    CALL = "call"
    RET = "ret"

    # Miscellaneous.
    NOP = "nop"
    HALT = "halt"


#: Opcodes taking ``rd, rs1, rs2``.
ALU_OPS = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SLL, Opcode.SRL,
    Opcode.SRA, Opcode.SLT, Opcode.SLE, Opcode.SEQ, Opcode.SNE,
    Opcode.MIN, Opcode.MAX,
})

#: Opcodes taking ``rd, rs1, imm``.
ALU_IMM_OPS = frozenset({
    Opcode.ADDI, Opcode.SUBI, Opcode.MULI, Opcode.DIVI, Opcode.REMI,
    Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SLLI, Opcode.SRLI,
    Opcode.SRAI, Opcode.SLTI,
})

#: Conditional branches taking ``rs1, rs2, target``.
BRANCH_OPS = frozenset({
    Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLE, Opcode.BGT,
})

_KIND_BY_OPCODE = {
    Opcode.JMP: InstrKind.JUMP,
    Opcode.JR: InstrKind.IJUMP,
    Opcode.CALL: InstrKind.CALL,
    Opcode.RET: InstrKind.RET,
    Opcode.HALT: InstrKind.HALT,
}
for _op in BRANCH_OPS:
    _KIND_BY_OPCODE[_op] = InstrKind.BRANCH


class Instruction:
    """A single decoded instruction.

    ``target`` holds the resolved absolute instruction index for direct
    control transfers and ``label`` the unresolved symbolic name before
    :meth:`repro.isa.program.Program.finalize` runs.
    """

    __slots__ = ("op", "rd", "rs1", "rs2", "imm", "target", "label", "kind")

    def __init__(self, op, rd=0, rs1=0, rs2=0, imm=0, target=None, label=None):
        if not isinstance(op, Opcode):
            op = Opcode(op)
        self.op = op
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.target = target
        self.label = label
        self.kind = _KIND_BY_OPCODE.get(op, InstrKind.OTHER)

    @property
    def is_control(self):
        return self.kind is not InstrKind.OTHER

    def validate(self):
        """Raise :class:`IsaError` when operands are inconsistent."""
        needs_target = self.op in BRANCH_OPS or self.op in (
            Opcode.JMP, Opcode.CALL)
        if needs_target and self.target is None and self.label is None:
            raise IsaError("%s requires a target or label" % self.op.value)
        for reg in (self.rd, self.rs1, self.rs2):
            if not 0 <= reg < 32:
                raise IsaError("register out of range in %r" % (self,))

    def __repr__(self):
        return "Instruction(%s)" % self.render()

    def render(self):
        """Render the instruction in assembler syntax."""
        op = self.op
        tgt = self.label if self.label is not None else str(self.target)
        if op in ALU_OPS:
            return "%s %s, %s, %s" % (op.value, register_name(self.rd),
                                      register_name(self.rs1),
                                      register_name(self.rs2))
        if op in ALU_IMM_OPS:
            return "%s %s, %s, %d" % (op.value, register_name(self.rd),
                                      register_name(self.rs1), self.imm)
        if op in BRANCH_OPS:
            return "%s %s, %s, %s" % (op.value, register_name(self.rs1),
                                      register_name(self.rs2), tgt)
        if op is Opcode.LI:
            return "li %s, %d" % (register_name(self.rd), self.imm)
        if op is Opcode.MV:
            return "mv %s, %s" % (register_name(self.rd),
                                  register_name(self.rs1))
        if op is Opcode.LD:
            return "ld %s, %d(%s)" % (register_name(self.rd), self.imm,
                                      register_name(self.rs1))
        if op is Opcode.ST:
            return "st %s, %d(%s)" % (register_name(self.rs2), self.imm,
                                      register_name(self.rs1))
        if op in (Opcode.JMP, Opcode.CALL):
            return "%s %s" % (op.value, tgt)
        if op is Opcode.JR:
            return "jr %s" % register_name(self.rs1)
        return op.value

    def __eq__(self, other):
        if not isinstance(other, Instruction):
            return NotImplemented
        return (self.op, self.rd, self.rs1, self.rs2, self.imm,
                self.target, self.label) == (
                    other.op, other.rd, other.rs1, other.rs2, other.imm,
                    other.target, other.label)

    def __hash__(self):
        return hash((self.op, self.rd, self.rs1, self.rs2, self.imm,
                     self.target, self.label))
