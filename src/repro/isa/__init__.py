"""A small RISC instruction set used as the tracing substrate.

The paper instruments DEC Alpha binaries with ATOM; everything its
mechanisms consume is the *dynamic instruction stream* (program counters
and the outcome of control transfers, plus register/memory accesses for
the data-speculation study).  Any ISA with backward branches, direct and
indirect jumps, calls and returns exercises exactly the same code paths,
so we define a compact register machine here and interpret it with
:mod:`repro.cpu`.

Public surface:

* :class:`Instruction`, :class:`Opcode`, :class:`InstrKind` -- instruction
  representation and classification.
* :class:`Program` -- an assembled program (instructions + labels + data).
* :func:`assemble` -- text assembly front end.
* :data:`registers` helpers -- symbolic register names and conventions.
"""

from repro.isa.instructions import (
    InstrKind,
    Instruction,
    Opcode,
    ALU_OPS,
    ALU_IMM_OPS,
    BRANCH_OPS,
)
from repro.isa.registers import (
    NUM_REGISTERS,
    REG_ZERO,
    REG_RA,
    REG_SP,
    REG_FP,
    REG_RV,
    ARG_REGISTERS,
    TEMP_REGISTERS,
    SAVED_REGISTERS,
    REG_SCRATCH0,
    REG_SCRATCH1,
    register_name,
    parse_register,
)
from repro.isa.program import Program, DataSegment
from repro.isa.assembler import assemble
from repro.isa.errors import IsaError, AssemblerError, ProgramError

__all__ = [
    "InstrKind",
    "Instruction",
    "Opcode",
    "ALU_OPS",
    "ALU_IMM_OPS",
    "BRANCH_OPS",
    "NUM_REGISTERS",
    "REG_ZERO",
    "REG_RA",
    "REG_SP",
    "REG_FP",
    "REG_RV",
    "ARG_REGISTERS",
    "TEMP_REGISTERS",
    "SAVED_REGISTERS",
    "REG_SCRATCH0",
    "REG_SCRATCH1",
    "register_name",
    "parse_register",
    "Program",
    "DataSegment",
    "assemble",
    "IsaError",
    "AssemblerError",
    "ProgramError",
]
