"""Frozen configuration for a simulation session.

A :class:`PipelineConfig` pins everything that determines a session's
results — workload subset, scale, CLS capacity, instruction budget —
plus the execution knobs (process count, cache location) that must not
change them.  It is hashable and picklable so it can cross process
boundaries and key memoization tables.
"""

import os
from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Environment variable overriding the default cache location.
CACHE_ENV_VAR = "REPRO_TRACE_CACHE"


def default_cache_dir():
    """The on-disk trace cache used when no ``--cache-dir`` is given."""
    override = os.environ.get(CACHE_ENV_VAR)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-traces")


def _workload_names(workloads):
    """Normalize a mixed list of names / Workload objects to names."""
    if workloads is None:
        return None
    names = []
    for w in workloads:
        names.append(w if isinstance(w, str) else w.name)
    return tuple(names)


@dataclass(frozen=True)
class PipelineConfig:
    """Immutable description of one simulation session.

    ``workloads`` is a tuple of workload *names* (``None`` means the
    full 18-workload suite in table order); ``max_instructions=None``
    uses each workload's own default budget.  ``cache_dir=None``
    disables the on-disk trace cache.  ``jobs`` is the number of tracer
    processes; 1 traces inline in the calling process.  ``timing`` is a
    :mod:`repro.timing` spec string (``"overhead:spawn=8"``) selecting
    the default timing model speculation passes simulate under;
    ``None`` is the paper's ideal machine.  Timing never affects
    traces, so it does not key the trace cache.
    """

    scale: int = 1
    cls_capacity: int = 16
    max_instructions: Optional[int] = None
    workloads: Optional[Tuple[str, ...]] = None
    jobs: int = 1
    cache_dir: Optional[str] = field(default=None)
    timing: Optional[str] = None

    def __post_init__(self):
        if self.timing is not None:
            if not isinstance(self.timing, str):
                raise ValueError("timing must be a spec string (use "
                                 "--timing syntax, e.g. "
                                 "'overhead:spawn=8') or None")
            from repro.timing import make_timing
            make_timing(self.timing)    # validate eagerly
        if self.scale < 1:
            raise ValueError("scale must be >= 1")
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.cls_capacity < 1:
            raise ValueError("cls_capacity must be >= 1")
        if self.max_instructions is not None and self.max_instructions < 1:
            raise ValueError("max_instructions must be >= 1")
        if self.workloads is not None:
            object.__setattr__(self, "workloads",
                               _workload_names(self.workloads))

    def limit_for(self, workload):
        """Effective instruction budget for *workload* (a Workload
        object); this value keys the cache entry."""
        return self.max_instructions or workload.default_max_instructions
