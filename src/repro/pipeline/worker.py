"""Process-pool worker for parallel workload tracing.

:func:`trace_workload` is the single tracing entry point for both the
inline (``jobs=1``) and pooled paths of
:class:`~repro.pipeline.session.SimulationSession`, so tests can count
or stub interpretation in one place.  It must stay importable at module
top level (the pool pickles it by reference) and must not depend on any
parent-process state beyond its arguments: under the ``spawn`` start
method a fresh interpreter imports this module and nothing else.

Pooled callers pass the workload *name* (resolved through the registry
in the child) and get the trace via the cache — batches streamed to
disk as columnar v3 chunks, nothing shipped over the result pipe — or,
without a cache, as serialized v3 bytes.  With ``shared=True`` those
bytes travel through a :mod:`multiprocessing.shared_memory` segment
instead of being pickled over the pipe: the child ships only a tiny
:class:`SharedTracePayload` descriptor, and the parent attaches, parses
the segment zero-copy, and unlinks it (see
:func:`load_trace_payload`).  Inline callers pass the Workload object
itself (which also supports unregistered workloads) with
``materialize=True`` and get the in-memory :class:`CFTrace` directly,
with no disk round-trip.
"""

from typing import NamedTuple

from repro.cpu.tracer import ChunkedCFTracer
from repro.obs import collector as obs
from repro.pipeline.cache import TraceCache, program_fingerprint
from repro.trace.io import TRACE_FORMAT_VERSION, dumps_cf_trace, \
    loads_cf_trace


class SharedTracePayload(NamedTuple):
    """Descriptor for a trace shipped via a shared-memory segment.

    The child serializes the trace (v3 bytes) into the segment and
    detaches; only this descriptor crosses the result pipe.  The
    **parent owns the segment's lifetime** from that point: it must
    attach, read, close, and unlink (all of which
    :func:`load_trace_payload` does).
    """

    segment: str    #: ``SharedMemory`` name to attach to
    size: int       #: serialized trace length (segments round up)


def trace_workload(workload, scale=1, max_instructions=None,
                   cache_dir=None, materialize=False, shared=False,
                   observe=False):
    """Trace one workload (a registered name or a Workload object).

    Returns ``(name, payload)`` where *payload* is:

    * the :class:`CFTrace` itself when ``materialize=True``;
    * ``None`` when the trace was written to (or already present in)
      the cache;
    * with ``shared=True``, a :class:`SharedTracePayload` descriptor
      for a shared-memory segment holding the serialized v3 trace
      (falling back to plain bytes when no segment can be created);
    * otherwise the serialized v3 trace bytes.

    With ``observe=True`` (pooled callers whose parent session has an
    active obs collector) the work runs under a worker-local
    :class:`~repro.obs.collector.Collector` and the return value grows
    a third element -- its :meth:`~repro.obs.collector.Collector.
    export` -- which rides the existing result pipe alongside the
    payload for the parent to :meth:`~repro.obs.collector.Collector.
    absorb`.

    ``max_instructions=None`` uses the workload's default budget,
    mirroring the cache key computation in the session.
    """
    if observe:
        label = workload if isinstance(workload, str) else workload.name
        # Under the fork start method the child inherits the parent's
        # active collector; it is a dead copy here -- drop it so the
        # worker-local one can activate.
        obs.deactivate()
        collector = obs.activate(obs.Collector())
        try:
            with obs.span("trace", workload=label, mode="pool"):
                name, payload = trace_workload(
                    workload, scale, max_instructions, cache_dir,
                    materialize=materialize, shared=shared)
        finally:
            obs.deactivate()
        return name, payload, collector.export()
    if isinstance(workload, str):
        import repro.workloads.suite  # noqa: F401  (registers the suite)
        from repro.workloads.base import get
        workload = get(workload)
    name = workload.name
    limit = max_instructions or workload.default_max_instructions

    if cache_dir is not None:
        cache = TraceCache(cache_dir)
        fingerprint = program_fingerprint(workload.program(scale))
        if materialize:
            trace = workload.cf_trace(scale, limit)
            cache.store(trace, name, scale, limit, fingerprint)
            return name, trace
        if not cache.has(name, scale, limit, fingerprint):
            tracer = ChunkedCFTracer(workload.program(scale), limit)
            cache.store_stream(tracer, name, scale, limit, fingerprint)
        return name, None

    trace = workload.cf_trace(scale, limit)
    if materialize:
        return name, trace
    data = dumps_cf_trace(trace, version=TRACE_FORMAT_VERSION)
    if shared:
        descriptor = _ship_shared(data)
        if descriptor is not None:
            return name, descriptor
    return name, data


def _ship_shared(data):
    """Move *data* into a fresh shared-memory segment and return its
    :class:`SharedTracePayload`, or ``None`` when shared memory is
    unavailable (no ``/dev/shm``, permissions) -- the caller then ships
    plain bytes."""
    try:
        from multiprocessing import resource_tracker, shared_memory
        segment = shared_memory.SharedMemory(create=True,
                                             size=max(1, len(data)))
    except (ImportError, OSError):
        return None
    try:
        segment.buf[:len(data)] = data
        descriptor = SharedTracePayload(segment.name, len(data))
    except BaseException:
        segment.close()
        try:
            segment.unlink()
        except OSError:
            pass
        raise
    # Ownership transfers to the parent with the descriptor: stop this
    # process's resource tracker from "cleaning up" (unlinking, with a
    # leak warning at exit) a segment that is deliberately left for
    # the parent to unlink.
    try:
        resource_tracker.unregister(
            getattr(segment, "_name", segment.name), "shared_memory")
    except Exception:
        pass
    segment.close()
    return descriptor


def load_trace_payload(payload):
    """Decode a non-``materialize`` worker *payload* into a
    :class:`CFTrace`.

    Serialized bytes parse directly; a :class:`SharedTracePayload` is
    attached, parsed zero-copy out of the segment, and the segment is
    closed and unlinked here -- exactly once, in the parent.
    """
    if isinstance(payload, SharedTracePayload):
        from multiprocessing import shared_memory
        obs.add("shm.bytes", payload.size)
        segment = shared_memory.SharedMemory(name=payload.segment)
        try:
            return loads_cf_trace(segment.buf[:payload.size])
        finally:
            try:
                segment.close()
            except BufferError:
                pass    # a live view pins the mapping; GC closes it
            try:
                segment.unlink()
            except OSError:
                pass
    return loads_cf_trace(payload)
