"""Process-pool worker for parallel workload tracing.

:func:`trace_workload` is the single tracing entry point for both the
inline (``jobs=1``) and pooled paths of
:class:`~repro.pipeline.session.SimulationSession`, so tests can count
or stub interpretation in one place.  It must stay importable at module
top level (the pool pickles it by reference) and must not depend on any
parent-process state beyond its arguments: under the ``spawn`` start
method a fresh interpreter imports this module and nothing else.

Pooled callers pass the workload *name* (resolved through the registry
in the child) and get the trace via the cache — batches streamed to
disk as columnar v3 chunks, nothing shipped over the result pipe — or,
without a cache, as serialized v3 bytes.  Inline callers pass the
Workload object itself (which also supports unregistered workloads)
with ``materialize=True`` and get the in-memory :class:`CFTrace`
directly, with no disk round-trip.
"""

from repro.cpu.tracer import ChunkedCFTracer
from repro.pipeline.cache import TraceCache, program_fingerprint
from repro.trace.io import TRACE_FORMAT_VERSION, dumps_cf_trace


def trace_workload(workload, scale=1, max_instructions=None,
                   cache_dir=None, materialize=False):
    """Trace one workload (a registered name or a Workload object).

    Returns ``(name, payload)`` where *payload* is:

    * the :class:`CFTrace` itself when ``materialize=True``;
    * ``None`` when the trace was written to (or already present in)
      the cache;
    * otherwise the serialized v3 trace bytes.

    ``max_instructions=None`` uses the workload's default budget,
    mirroring the cache key computation in the session.
    """
    if isinstance(workload, str):
        import repro.workloads.suite  # noqa: F401  (registers the suite)
        from repro.workloads.base import get
        workload = get(workload)
    name = workload.name
    limit = max_instructions or workload.default_max_instructions

    if cache_dir is not None:
        cache = TraceCache(cache_dir)
        fingerprint = program_fingerprint(workload.program(scale))
        if materialize:
            trace = workload.cf_trace(scale, limit)
            cache.store(trace, name, scale, limit, fingerprint)
            return name, trace
        if not cache.has(name, scale, limit, fingerprint):
            tracer = ChunkedCFTracer(workload.program(scale), limit)
            cache.store_stream(tracer, name, scale, limit, fingerprint)
        return name, None

    trace = workload.cf_trace(scale, limit)
    if materialize:
        return name, trace
    return name, dumps_cf_trace(trace, version=TRACE_FORMAT_VERSION)
