"""Persistent per-workload cache of *derived* analysis results.

The trace cache (:mod:`repro.pipeline.cache`) makes warm sessions skip
interpretation; this module makes them skip recomputing the expensive
deterministic *functions of a cached trace*: the full-effects
data-speculation statistics (which otherwise re-interpret the program
every run), default-configuration speculation simulations, and the
ablation CLS-capacity sweep.  Everything stored here is a pure
function of (compiled program, scale, instruction budget, analysis
parameters) -- exactly the coordinates of a trace-cache entry plus the
parameters baked into each entry key -- so the same content-keyed
invalidation story applies: edit a workload and the fingerprint
changes; change an algorithm and :data:`DERIVED_SCHEMA_VERSION` must
be bumped, orphaning stale files.

One JSON file per trace-cache entry, under ``<cache>/derived/``::

    <cache>/derived/swim-s1-m2000000-v3-1f8a0c93d2e47b56.json

holding a flat ``key -> value`` map of JSON-serializable results.
Values are written back atomically (temp file + ``os.replace``) after
each workload's analysis completes, and any unreadable or
wrong-version file is treated as empty -- corruption means
recomputation, never failure.  Sessions constructed with
``cache_dir=None`` (and ``runner --no-cache``) have no derived store
at all; every consumer treats the missing store as a permanent miss.
"""

import json
import os

from repro.obs import collector as obs

#: Bump when any cached computation changes meaning (engine rules,
#: CLS semantics, dataspec accounting, result field sets).
DERIVED_SCHEMA_VERSION = 1


def derived_key(*parts):
    """A stable string key from heterogeneous parts (ints, strings,
    tuples); ``None`` is rendered distinctly from any number."""
    return "/".join(repr(part) if not isinstance(part, str) else part
                    for part in parts)


class DerivedStore:
    """The ``key -> JSON value`` store of one trace-cache entry.

    Lazy: the backing file is read on first access and only written
    when :meth:`flush` is called with new or changed entries.
    """

    def __init__(self, path):
        self.path = path
        self._entries = None
        self._dirty = False

    def _load(self):
        entries = self._entries
        if entries is None:
            try:
                with open(self.path, "r", encoding="utf-8") as fh:
                    payload = json.load(fh)
                if (not isinstance(payload, dict)
                        or payload.get("version") != DERIVED_SCHEMA_VERSION
                        or not isinstance(payload.get("entries"), dict)):
                    raise ValueError("unusable derived-results file")
                entries = payload["entries"]
            except (OSError, ValueError):
                entries = {}
            self._entries = entries
        return entries

    def get(self, key):
        """The cached value under *key*, or ``None``."""
        value = self._load().get(key)
        obs.add("derived.hits" if value is not None else
                "derived.misses")
        return value

    def put(self, key, value):
        """Record *value* under *key* (persisted at :meth:`flush`)."""
        entries = self._load()
        if entries.get(key) != value:
            entries[key] = value
            self._dirty = True

    def put_cells(self, cells):
        """Record a batch of ``(key, value)`` pairs in one pass.

        The grid-aware write path: a fused ``simulate_grid`` call lands
        all its per-config results at once, but each lands under its
        own individual cell key -- the same key :meth:`put` would use
        -- so sweeps, direct runs, and grid runs keep sharing rows in
        both directions.
        """
        entries = self._load()
        for key, value in cells:
            if entries.get(key) != value:
                entries[key] = value
                self._dirty = True

    def flush(self):
        """Atomically persist any new entries; best-effort (a read-only
        cache directory silently disables persistence)."""
        if not self._dirty:
            return
        self._dirty = False
        tmp = self.path + ".tmp.%d" % os.getpid()
        try:
            os.makedirs(os.path.dirname(self.path), exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump({"version": DERIVED_SCHEMA_VERSION,
                           "entries": self._entries}, fh)
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass


class DerivedCache:
    """The ``derived/`` sub-tree of a trace-cache directory: one
    :class:`DerivedStore` per trace-cache key."""

    def __init__(self, cache_root):
        self.root = os.path.join(cache_root, "derived")

    def store(self, trace_key):
        """The store backing *trace_key* (a
        :meth:`repro.pipeline.cache.TraceCache.key` string)."""
        return DerivedStore(os.path.join(self.root, trace_key + ".json"))
