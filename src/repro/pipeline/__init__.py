"""Parallel, cache-backed simulation pipeline.

The pipeline layer is how experiments obtain control-flow traces and
loop indexes (see ``docs/PIPELINE.md``):

* :class:`~repro.pipeline.config.PipelineConfig` — frozen session
  parameters (workloads, scale, budget, jobs, cache directory);
* :class:`~repro.pipeline.session.SimulationSession` — process-pool
  tracing, on-disk trace cache, streaming loop detection;
* :class:`~repro.pipeline.cache.TraceCache` — the content-keyed cache.
"""

from repro.pipeline.cache import TraceCache
from repro.pipeline.config import PipelineConfig, default_cache_dir
from repro.pipeline.session import SessionStats, SimulationSession

__all__ = [
    "PipelineConfig",
    "SessionStats",
    "SimulationSession",
    "TraceCache",
    "default_cache_dir",
]
