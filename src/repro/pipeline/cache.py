"""Content-keyed on-disk cache for control-flow traces.

Each entry is one binary v3 trace file whose name embeds every
parameter that determines its content — workload name, scale,
effective instruction budget, the trace format version, and a digest
of the compiled program itself (:func:`program_fingerprint`)::

    <root>/swim-s1-m2000000-v3-1f8a0c93d2e47b56.cft

Changing any parameter, bumping
:data:`repro.trace.io.TRACE_FORMAT_VERSION`, or *editing a workload's
generator* therefore changes the key, so stale entries are never read,
only orphaned (v2-era entries linger until ``tools/trace_cache.py
prune``/``clear`` removes them).  Writes go through a temp file and
``os.replace`` so concurrent tracer processes can race on the same
entry safely: last writer wins with identical content.

Corrupt entries (truncated, tampered) fail header/count validation in
:mod:`repro.trace.io`; :meth:`TraceCache.load` treats that as a miss,
evicts the entry, and callers simply re-trace.
"""

import hashlib
import os

from repro.cpu.machine import pack_program
from repro.obs import collector as obs
from repro.trace.io import (
    BatchTraceWriter,
    TRACE_FORMAT_VERSION,
    atomic_writer,
    dump_cf_trace,
    load_cf_trace,
    open_cf_batches,
    open_cf_records,
    read_cf_header,
)


def program_fingerprint(program):
    """Digest of everything that determines a program's trace: entry
    point, packed instruction stream, and initial data memory.

    This is what makes the cache *content*-keyed: editing a workload
    generator (or the compiler emitting different code) invalidates the
    entry even though name/scale/budget are unchanged.
    """
    h = hashlib.sha256()
    h.update(b"entry=%d;" % program.entry)
    for packed in pack_program(program):
        h.update(repr(packed).encode("ascii"))
    initial = program.data.initial
    for addr in sorted(initial):
        h.update(b"%d:%d;" % (addr, initial[addr]))
    return h.hexdigest()[:16]


class TraceCache:
    """On-disk control-flow trace cache rooted at *root*."""

    def __init__(self, root):
        self.root = root

    # -- keys ----------------------------------------------------------------

    @staticmethod
    def key(name, scale, max_instructions, fingerprint):
        """Content key; *fingerprint* is :func:`program_fingerprint` of
        the workload's compiled program."""
        return "%s-s%d-m%d-v%d-%s" % (name, scale, max_instructions,
                                      TRACE_FORMAT_VERSION, fingerprint)

    def path(self, name, scale, max_instructions, fingerprint):
        return os.path.join(
            self.root,
            self.key(name, scale, max_instructions, fingerprint) + ".cft")

    # -- queries -------------------------------------------------------------

    def has(self, name, scale, max_instructions, fingerprint):
        """True when a loadable entry exists (header is validated)."""
        path = self.path(name, scale, max_instructions, fingerprint)
        try:
            read_cf_header(path)
        except (OSError, ValueError):
            return False
        return True

    def load(self, name, scale, max_instructions, fingerprint):
        """The cached :class:`CFTrace`, or ``None`` on miss/corruption.

        Corrupt entries are evicted so the next writer regenerates them
        (a writer's ``has`` pre-check can pass on a corrupt file whose
        header survived truncation)."""
        path = self.path(name, scale, max_instructions, fingerprint)
        try:
            return load_cf_trace(path)
        except OSError:
            return None
        except ValueError:
            self._evict(path)
            return None

    def _evict(self, path):
        try:
            os.unlink(path)
        except OSError:
            pass

    def open_records(self, name, scale, max_instructions, fingerprint):
        """Streaming access: ``(header, record_iterator)`` or ``None``.

        The iterator raises :class:`ValueError` if the file turns out to
        be truncated mid-stream.
        """
        path = self.path(name, scale, max_instructions, fingerprint)
        try:
            return open_cf_records(path)
        except (OSError, ValueError):
            return None

    def open_batches(self, name, scale, max_instructions, fingerprint):
        """Columnar streaming access: ``(header, batch_iterator)`` or
        ``None`` -- the session's replay path.

        The iterator yields :class:`~repro.trace.batch.RecordBatch`
        straight off the v3 chunks and raises :class:`ValueError` if
        the file turns out to be truncated mid-stream.
        """
        path = self.path(name, scale, max_instructions, fingerprint)
        try:
            return open_cf_batches(path)
        except (OSError, ValueError):
            return None

    # -- writes --------------------------------------------------------------

    def store(self, trace, name, scale, max_instructions, fingerprint):
        """Atomically write a fully materialized trace."""
        os.makedirs(self.root, exist_ok=True)
        path = self.path(name, scale, max_instructions, fingerprint)
        dump_cf_trace(trace, path, version=TRACE_FORMAT_VERSION)
        self._note_written(path)
        return path

    def store_stream(self, tracer, name, scale, max_instructions,
                     fingerprint):
        """Atomically write a trace while it is being generated.

        *tracer* follows the :class:`~repro.cpu.tracer.ChunkedCFTracer`
        protocol: a ``batches()`` generator of
        :class:`~repro.trace.batch.RecordBatch` plus
        ``total_instructions``/``halted``/``program_name`` valid after
        exhaustion.  Columns go from the interpretation loop to disk
        without a record object or text line in between.
        """
        os.makedirs(self.root, exist_ok=True)
        path = self.path(name, scale, max_instructions, fingerprint)
        with atomic_writer(path, binary=True) as fh:
            writer = BatchTraceWriter(fh, tracer.program_name)
            for batch in tracer.batches():
                writer.write_batch(batch)
            writer.close(tracer.total_instructions, tracer.halted)
        self._note_written(path)
        return path

    @staticmethod
    def _note_written(path):
        if obs.active() is not None:
            try:
                obs.add("cache.bytes_written", os.path.getsize(path))
            except OSError:
                pass
