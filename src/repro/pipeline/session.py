"""The simulation session: parallel, cache-backed streaming analysis.

:class:`SimulationSession` is the one way experiments obtain results,
traces, and loop indexes.  Its primary entrypoint is :meth:`~
SimulationSession.analyze`: one :class:`~repro.analysis.suite.
AnalysisSuite` of streaming passes, fed from exactly one record-stream
replay per workload (see ``docs/ANALYSIS.md``).  Underneath, the
pipeline

1. fans workload tracing out across a ``ProcessPoolExecutor`` when
   ``config.jobs > 1``, absorbing results in the configured workload
   order so output is deterministic regardless of completion order;
2. persists traces through the content-keyed on-disk
   :class:`~repro.pipeline.cache.TraceCache`, so a warm session skips
   interpretation entirely; and
3. streams cached :class:`~repro.trace.batch.RecordBatch` columns
   straight into :meth:`LoopDetector.feed_batch` — neither detection
   nor analysis requires the full record list in memory, and no
   record object is constructed between disk and the column loops.

The legacy per-experiment surface (:meth:`trace`, :meth:`index`,
:meth:`indexes`) remains for interactive use; the old sequential
``SuiteRunner`` shim is gone (construct a session with
``cache_dir=None`` for its behaviour).
"""

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor

from repro.core.detector import LoopDetector
from repro.obs import collector as obs
from repro.pipeline import worker
from repro.pipeline.cache import TraceCache, program_fingerprint
from repro.pipeline.derived import DerivedCache
from repro.pipeline.config import PipelineConfig
from repro.trace.batch import iter_batches
from repro.workloads import get, suite


class SessionStats:
    """Counters for what a session actually did (test/bench hooks)."""

    __slots__ = ("traced", "cache_hits", "replays")

    def __init__(self):
        self.traced = 0        #: workloads interpreted by this session
        self.cache_hits = 0    #: workloads served from the on-disk cache
        self.replays = 0       #: full record-stream replays performed

    def __repr__(self):
        return ("SessionStats(traced=%d, cache_hits=%d, replays=%d)"
                % (self.traced, self.cache_hits, self.replays))


class _CorruptStream(Exception):
    """A cached batch stream raised ValueError mid-iteration."""


def _guard_stream(batches):
    """Re-raise the *iterator's* ValueError as :class:`_CorruptStream`
    so truncation is distinguishable from an analysis pass raising
    ValueError of its own."""
    iterator = iter(batches)
    while True:
        try:
            batch = next(iterator)
        except StopIteration:
            return
        except ValueError as exc:
            raise _CorruptStream() from exc
        yield batch


class SimulationSession:
    """Cache-backed, optionally parallel analysis session.

    Construct from a frozen :class:`~repro.pipeline.config.
    PipelineConfig` (or its keyword arguments).  :meth:`analyze` is the
    primary entrypoint; :meth:`trace`, :meth:`index`, :meth:`indexes`
    (plus ``scale``/``cls_capacity``/``max_instructions``/``workloads``
    attributes) remain for direct access.
    """

    def __init__(self, config=None, workload_objects=None, **kwargs):
        if config is None:
            config = PipelineConfig(**kwargs)
        elif kwargs:
            raise TypeError("pass either a PipelineConfig or keyword "
                            "arguments, not both")
        self.stats = SessionStats()
        if workload_objects is not None:
            # Explicit objects (possibly unregistered) take precedence
            # over registry lookup by name.
            self._workloads = list(workload_objects)
            names = tuple(w.name for w in self._workloads)
            if config.workloads is None:
                config = dataclasses.replace(config, workloads=names)
            elif config.workloads != names:
                raise ValueError("workload_objects disagree with "
                                 "config.workloads")
        elif config.workloads is None:
            self._workloads = suite()
        else:
            self._workloads = [get(name) for name in config.workloads]
        self.config = config
        self._by_name = {w.name: w for w in self._workloads}
        self._fingerprints = {}
        self._cache = (TraceCache(config.cache_dir)
                       if config.cache_dir is not None else None)
        self._derived = (DerivedCache(config.cache_dir)
                         if config.cache_dir is not None else None)
        self._traces = {}
        self._indexes = {}
        self._sources = {}   # name -> "cache" | "traced", first touch

    # -- direct trace/index surface ------------------------------------------

    @property
    def scale(self):
        return self.config.scale

    @property
    def cls_capacity(self):
        return self.config.cls_capacity

    @property
    def max_instructions(self):
        return self.config.max_instructions

    @property
    def workloads(self):
        return list(self._workloads)

    def trace(self, name):
        """The control-flow trace of *name*, materialized and memoized."""
        if name not in self._traces:
            workload = self._get(name)
            limit = self.config.limit_for(workload)
            trace = self._from_cache(name, limit)
            if trace is None:
                trace = self._trace_now(name, limit)
            self._traces[name] = trace
        return self._traces[name]

    def index(self, name):
        """The loop index of *name*, memoized.

        When the trace lives only in the cache, records are streamed
        into the detector without materializing the trace.
        """
        if name not in self._indexes:
            workload = self._get(name)
            detector = LoopDetector(cls_capacity=self.config.cls_capacity)
            if name in self._traces:
                index = detector.run(self._traces[name])
            else:
                limit = self.config.limit_for(workload)
                stream = (self._cache.open_batches(
                              name, self.scale, limit,
                              self._fingerprint(name))
                          if self._cache is not None else None)
                if stream is not None:
                    self._mark(name, cached=True)
                    header, batches = stream
                    try:
                        index = detector.run_batches(
                            batches, header.total_instructions)
                    except ValueError:
                        # Entry truncated past its (valid) header; fall
                        # back to re-tracing with a fresh detector.
                        detector = LoopDetector(
                            cls_capacity=self.config.cls_capacity)
                        index = detector.run(self.trace(name))
                else:
                    index = detector.run(self.trace(name))
            self._indexes[name] = index
        return self._indexes[name]

    def indexes(self):
        """``(name, index)`` for every workload, in configured order."""
        self.ensure_traced()
        return [(w.name, self.index(w.name)) for w in self._workloads]

    # -- streaming analysis --------------------------------------------------

    def analyze(self, suite):
        """Stream every workload once through *suite*.

        The single analysis entrypoint: per workload, cached trace
        records (or the in-memory trace, or a fresh inline trace) are
        replayed exactly once through the canonical
        :class:`LoopDetector`; the suite receives every record and loop
        event as it happens and each pass's ``finish`` sees the
        completed index.  ``stats.replays`` counts the replays — one
        per workload, however many passes are registered.

        Returns ``suite.results()``.
        """
        self.ensure_traced()
        for workload in self._workloads:
            self._analyze_one(workload, suite)
        return suite.results()

    def _analyze_one(self, workload, suite):
        name = workload.name
        limit = self.config.limit_for(workload)
        trace = self._traces.get(name)
        stream = None
        source = "memory"
        if trace is None and self._cache is not None:
            stream = self._cache.open_batches(name, self.scale, limit,
                                              self._fingerprint(name))
        if trace is None and stream is None:
            trace = self.trace(name)
            source = "traced"

        if trace is not None:
            batches = iter_batches(trace.records)
            total = trace.total_instructions
        else:
            self._mark(name, cached=True)
            source = "cache"
            if obs.active() is not None:
                try:
                    obs.add("cache.bytes_read", os.path.getsize(
                        self._cache.path(name, self.scale, limit,
                                         self._fingerprint(name))))
                except OSError:
                    pass
            header, cached_batches = stream
            batches = _guard_stream(cached_batches)
            total = header.total_instructions

        try:
            index = self._replay(workload, suite, batches, total,
                                 source=source)
        except _CorruptStream:
            # The cache entry was truncated past its (valid) header:
            # drop the partially fed state and replay from a fresh
            # trace (trace() re-traces; load() evicted the entry).
            # Exceptions raised by analysis passes themselves are NOT
            # retried — only the stream's own ValueError is wrapped.
            suite.abort(self._context(workload, total))
            trace = self.trace(name)
            index = self._replay(workload, suite,
                                 iter_batches(trace.records),
                                 trace.total_instructions,
                                 source="retraced")
        self._indexes.setdefault(name, index)

    def _context(self, workload, total, detector=None):
        from repro.analysis.base import WorkloadContext
        from repro.timing import make_timing

        # One timing-model instance per workload replay: record-fed
        # models accumulate per-workload state, so they must never be
        # shared across workloads (or survive an abort/retry).
        timing = (make_timing(self.config.timing)
                  if self.config.timing is not None else None)
        derived = None
        if self._derived is not None:
            derived = self._derived.store(TraceCache.key(
                workload.name, self.scale,
                self.config.limit_for(workload),
                self._fingerprint(workload.name)))
        return WorkloadContext(
            workload.name, total, workload=workload, scale=self.scale,
            cls_capacity=self.config.cls_capacity, detector=detector,
            timing=timing, derived=derived)

    def _replay(self, workload, suite, batches, total, source="memory"):
        """One full batched record-stream replay into *suite*; returns
        the loop index built by the canonical detector along the way.

        *batches* is an iterable of :class:`~repro.trace.batch.
        RecordBatch` (a cached v3 stream, or an in-memory trace through
        :func:`~repro.trace.batch.iter_batches`).  Per batch, records
        fan out to the suite's record consumers and the timing model,
        then the detector's columnar fast path turns them into loop
        events -- event order is identical to the per-record replay.
        """
        detector = LoopDetector(cls_capacity=self.config.cls_capacity)
        ctx = self._context(workload, total, detector)
        suite.begin(ctx)
        self.stats.replays += 1
        wants_records = suite.wants_records
        timing = ctx.timing
        timing_feed = (timing.feed_batch
                       if timing is not None and timing.wants_records
                       else None)
        feed_batch = suite.feed_batch
        detect_batch = detector.feed_batch
        # Loop events only fan out when some pass actually overrides
        # feed(); with every stock pass record-fed or finish-time, the
        # event stream has no takers and the replay is record-only.
        feed_events = None
        if getattr(suite, "has_event_consumers", True):
            feed_events = getattr(suite, "feed_events", None)
            if feed_events is None:       # suite-shaped duck type
                suite_feed = suite.feed

                def feed_events(events):
                    for event in events:
                        suite_feed(event)
        collector = obs.active()
        n_batches = n_records = 0
        with obs.span("replay", workload=workload.name, source=source):
            for batch in batches:
                if collector is not None:
                    n_batches += 1
                    n_records += len(batch)
                if wants_records:
                    feed_batch(batch)
                if timing_feed is not None:
                    timing_feed(batch)
                events = detect_batch(batch)
                if events and feed_events is not None:
                    feed_events(events)
            events = detector.finish(total)
            if events and feed_events is not None:
                feed_events(events)
            ctx.index = detector.index(total)
            with obs.span("finish", workload=workload.name):
                suite.finish(ctx)
        if collector is not None:
            collector.add("replay.batches", n_batches)
            collector.add("replay.records", n_records)
        if ctx.derived is not None:
            ctx.derived.flush()
        return ctx.index

    # -- pipeline ------------------------------------------------------------

    def ensure_traced(self, names=None):
        """Trace every listed workload (default: all) that is neither in
        memory nor in the cache, fanning out across ``config.jobs``
        processes."""
        if names is None:
            names = [w.name for w in self._workloads]
        else:
            names = [self._get(n).name for n in names]
        missing = []
        for name in names:
            if name in self._traces:
                continue
            limit = self.config.limit_for(self._by_name[name])
            if self._cache is not None and self._cache.has(
                    name, self.scale, limit, self._fingerprint(name)):
                self._mark(name, cached=True)
                continue
            missing.append((name, limit))
        if not missing:
            return
        # Unregistered workload objects cannot be resolved by name in a
        # child process; those trace inline below.
        pooled = [(n, l) for n, l in missing if self._poolable(n)]
        if self.config.jobs == 1 or len(pooled) <= 1:
            pooled = []
        results = {}
        if pooled:
            cache_dir = self.config.cache_dir
            collector = obs.active()
            observe = collector is not None
            with ProcessPoolExecutor(
                    max_workers=min(self.config.jobs,
                                    len(pooled))) as pool:
                futures = [
                    pool.submit(worker.trace_workload, name, self.scale,
                                limit, cache_dir, shared=True,
                                observe=observe)
                    for name, limit in pooled]
                # Futures are drained in submission order (the
                # configured workload order), so worker obs events
                # merge deterministically however tracing interleaved.
                for future in futures:
                    name, payload, *events = future.result()
                    results[name] = payload
                    if events and events[0] and collector is not None:
                        collector.absorb(events[0], workload=name)
        # Absorb in configured order so memoization and any downstream
        # iteration see a deterministic sequence.
        for name, limit in missing:
            if name in results:
                self._mark(name, cached=False)
                payload = results[name]
                if payload is not None:
                    # Cacheless pool results arrive through a shared-
                    # memory segment (or raw v3 bytes as the fallback).
                    self._traces[name] = \
                        worker.load_trace_payload(payload)
                # else: the worker streamed it into the cache; load
                # lazily (index() streams it straight off disk).
            else:
                self._trace_now(name, limit, memoize=True)

    # -- internals -----------------------------------------------------------

    def _get(self, name):
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError("workload %r not in this session" % name) \
                from None

    def _mark(self, name, cached):
        kind = "cache" if cached else "traced"
        prev = self._sources.get(name)
        if prev == kind or prev == "traced":
            return
        self._sources[name] = kind
        if cached:
            self.stats.cache_hits += 1
        else:
            if prev == "cache":
                # The cache entry turned out corrupt mid-stream and we
                # re-traced; it was never a usable hit.
                self.stats.cache_hits -= 1
            self.stats.traced += 1

    def _fingerprint(self, name):
        fingerprint = self._fingerprints.get(name)
        if fingerprint is None:
            fingerprint = program_fingerprint(
                self._by_name[name].program(self.scale))
            self._fingerprints[name] = fingerprint
        return fingerprint

    def _poolable(self, name):
        """A child process resolves names through the registry; only
        workloads whose name maps back to the same object can be
        traced in the pool."""
        try:
            return get(name) is self._by_name[name]
        except KeyError:
            return False

    def _from_cache(self, name, limit):
        if self._cache is None:
            return None
        trace = self._cache.load(name, self.scale, limit,
                                 self._fingerprint(name))
        if trace is not None:
            self._mark(name, cached=True)
        return trace

    def _trace_now(self, name, limit, memoize=False):
        """Trace inline through the shared worker entry point; returns
        the in-memory trace directly (no disk round-trip)."""
        self._mark(name, cached=False)
        with obs.span("trace", workload=name, mode="inline"):
            _, trace = worker.trace_workload(
                self._by_name[name], self.scale, limit,
                self.config.cache_dir, materialize=True)
        if memoize:
            self._traces[name] = trace
        return trace
