"""High-throughput tracing interpreters.

Two loops over the packed program form:

* :func:`trace_control_flow` records only control-transfer instructions
  (:class:`~repro.trace.record.CFRecord`) -- the input to loop detection
  and thread speculation.
* :func:`trace_full` records every instruction with register and memory
  effects (:class:`~repro.trace.record.FullRecord`) -- the input to the
  data-speculation study.

Both deliberately duplicate the dispatch of :class:`repro.cpu.machine.
Machine`; the duplication is the price of a usable simulation rate in
pure Python, and equivalence is pinned by differential tests.
"""

from array import array

from repro.isa.errors import ProgramError
from repro.isa.instructions import InstrKind
from repro.isa.registers import NUM_REGISTERS, REG_SP
from repro.cpu.machine import (
    BRANCH_CODES,
    C_ADD, C_ADDI, C_AND, C_ANDI, C_BEQ, C_BGE, C_BGT, C_BLE, C_BLT, C_BNE,
    C_CALL, C_DIV, C_DIVI, C_HALT, C_JMP, C_JR, C_LD, C_LI, C_MAX, C_MIN,
    C_MV, C_MUL, C_MULI, C_NOP, C_OR, C_ORI, C_REM, C_REMI, C_RET, C_SEQ,
    C_SLE, C_SLL, C_SLLI, C_SLT, C_SLTI, C_SNE, C_SRA, C_SRAI, C_SRL,
    C_SRLI, C_ST, C_SUB, C_SUBI, C_XOR, C_XORI,
    STACK_TOP,
    _ALU, _BRANCH, _IMM_TO_REG,
    pack_program, wrap64,
)
from repro.trace.batch import NO_TARGET, FullBatch, RecordBatch
from repro.trace.record import CFRecord, FullRecord
from repro.trace.stream import CFTrace, FullTrace

_K_BRANCH = int(InstrKind.BRANCH)
_K_JUMP = int(InstrKind.JUMP)
_K_IJUMP = int(InstrKind.IJUMP)
_K_CALL = int(InstrKind.CALL)
_K_RET = int(InstrKind.RET)
_K_HALT = int(InstrKind.HALT)

_I64_MAX = (1 << 63) - 1
_I64_MIN = -(1 << 63)


class TraceBudgetExceeded(ProgramError):
    """Raised when a program does not halt within the instruction budget
    and ``allow_truncation`` is False."""


def trace_control_flow(program, max_instructions=5_000_000,
                       allow_truncation=True):
    """Run *program* and return its control-flow trace.

    When the budget is exhausted before ``halt`` the trace is returned
    truncated (``trace.halted`` is False) unless *allow_truncation* is
    False, in which case :class:`TraceBudgetExceeded` is raised.
    """
    packed = pack_program(program)
    regs = [0] * NUM_REGISTERS
    regs[REG_SP] = STACK_TOP
    mem = dict(program.data.initial)
    mem_get = mem.get
    records = []
    append = records.append
    pc = program.entry
    seq = 0
    halted = False
    alu = _ALU
    branch = _BRANCH

    while seq < max_instructions:
        code, rd, rs1, rs2, imm, target = packed[pc]
        if code == C_ADDI:
            v = regs[rs1] + imm
            if v > _I64_MAX or v < _I64_MIN:
                v = wrap64(v)
            if rd:
                regs[rd] = v
            pc += 1
        elif code == C_LD:
            if rd:
                regs[rd] = mem_get(regs[rs1] + imm, 0)
            pc += 1
        elif code == C_ST:
            mem[regs[rs1] + imm] = regs[rs2]
            pc += 1
        elif code in BRANCH_CODES:
            taken = branch[code](regs[rs1], regs[rs2])
            append(CFRecord(seq, pc, _K_BRANCH, taken, target))
            pc = target if taken else pc + 1
        elif code == C_ADD:
            v = regs[rs1] + regs[rs2]
            if v > _I64_MAX or v < _I64_MIN:
                v = wrap64(v)
            if rd:
                regs[rd] = v
            pc += 1
        elif code == C_LI:
            if rd:
                regs[rd] = imm
            pc += 1
        elif code == C_MV:
            if rd:
                regs[rd] = regs[rs1]
            pc += 1
        elif code == C_SUB:
            v = regs[rs1] - regs[rs2]
            if v > _I64_MAX or v < _I64_MIN:
                v = wrap64(v)
            if rd:
                regs[rd] = v
            pc += 1
        elif code == C_MUL:
            v = regs[rs1] * regs[rs2]
            if v > _I64_MAX or v < _I64_MIN:
                v = wrap64(v)
            if rd:
                regs[rd] = v
            pc += 1
        elif code == C_MULI:
            v = regs[rs1] * imm
            if v > _I64_MAX or v < _I64_MIN:
                v = wrap64(v)
            if rd:
                regs[rd] = v
            pc += 1
        elif code == C_JMP:
            append(CFRecord(seq, pc, _K_JUMP, True, target))
            pc = target
        elif code == C_CALL:
            regs[1] = pc + 1
            append(CFRecord(seq, pc, _K_CALL, True, target))
            pc = target
        elif code == C_RET:
            nxt = regs[1]
            append(CFRecord(seq, pc, _K_RET, True, nxt))
            pc = nxt
        elif code == C_JR:
            nxt = regs[rs1]
            append(CFRecord(seq, pc, _K_IJUMP, True, nxt))
            pc = nxt
        elif code == C_HALT:
            append(CFRecord(seq, pc, _K_HALT, False, None))
            seq += 1
            halted = True
            break
        elif code == C_NOP:
            pc += 1
        else:
            # Remaining ALU forms (immediate and register) via the tables.
            if code in _IMM_TO_REG:
                v = alu[_IMM_TO_REG[code]](regs[rs1], imm)
            else:
                v = alu[code](regs[rs1], regs[rs2])
            if rd:
                regs[rd] = v
            pc += 1
        seq += 1

    if not halted and not allow_truncation:
        raise TraceBudgetExceeded(
            "program %r did not halt within %d instructions"
            % (program.name, max_instructions))
    return CFTrace(records=records, total_instructions=seq, halted=halted,
                   program_name=program.name)


class ChunkedCFTracer:
    """Control-flow tracing with bounded-memory chunked emission.

    Same dispatch as :func:`trace_control_flow` (the duplication is this
    module's stated price of speed; equivalence is pinned by tests), but
    records are handed out in lists of at most ``chunk_size`` via
    :meth:`chunks` so a consumer — the on-disk trace cache writer, or a
    :class:`~repro.core.detector.LoopDetector` fed record by record —
    never holds the whole trace.

    ``total_instructions`` and ``halted`` are only valid once the
    generator is exhausted; reading them earlier raises
    :class:`RuntimeError`.
    """

    DEFAULT_CHUNK = 65536

    def __init__(self, program, max_instructions=5_000_000,
                 allow_truncation=True, chunk_size=DEFAULT_CHUNK):
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.program = program
        self.program_name = program.name
        self.max_instructions = max_instructions
        self.allow_truncation = allow_truncation
        self.chunk_size = chunk_size
        self._finished = False
        self._total = None
        self._halted = None

    @property
    def total_instructions(self):
        if not self._finished:
            raise RuntimeError("trace not finished; exhaust chunks() first")
        return self._total

    @property
    def halted(self):
        if not self._finished:
            raise RuntimeError("trace not finished; exhaust chunks() first")
        return self._halted

    def chunks(self):
        """Generate lists of :class:`CFRecord`, each at most
        ``chunk_size`` long, in execution order (decoding adapter over
        :meth:`batches`)."""
        for batch in self.batches():
            yield list(batch.iter_records())

    def batches(self):
        """Generate :class:`~repro.trace.batch.RecordBatch` columns of
        at most ``chunk_size`` records, in execution order.

        This is the native emission path: the interpretation loop
        appends directly to the batch columns, so no
        :class:`CFRecord` is ever constructed between the machine and
        a batch consumer (the v3 cache writer, the loop detector's
        ``feed_batch``).
        """
        program = self.program
        chunk = self.chunk_size
        max_instructions = self.max_instructions
        packed = pack_program(program)
        regs = [0] * NUM_REGISTERS
        regs[REG_SP] = STACK_TOP
        mem = dict(program.data.initial)
        mem_get = mem.get
        c_seq = array("q")
        c_pc = array("q")
        c_kind = array("b")
        c_taken = array("b")
        c_target = array("q")
        sq_a = c_seq.append
        pc_a = c_pc.append
        kd_a = c_kind.append
        tk_a = c_taken.append
        tg_a = c_target.append
        pc = program.entry
        seq = 0
        halted = False
        alu = _ALU
        branch = _BRANCH

        while seq < max_instructions:
            if len(c_seq) >= chunk:
                yield RecordBatch(c_seq, c_pc, c_kind, c_taken, c_target)
                c_seq = array("q")
                c_pc = array("q")
                c_kind = array("b")
                c_taken = array("b")
                c_target = array("q")
                sq_a = c_seq.append
                pc_a = c_pc.append
                kd_a = c_kind.append
                tk_a = c_taken.append
                tg_a = c_target.append
            code, rd, rs1, rs2, imm, target = packed[pc]
            if code == C_ADDI:
                v = regs[rs1] + imm
                if v > _I64_MAX or v < _I64_MIN:
                    v = wrap64(v)
                if rd:
                    regs[rd] = v
                pc += 1
            elif code == C_LD:
                if rd:
                    regs[rd] = mem_get(regs[rs1] + imm, 0)
                pc += 1
            elif code == C_ST:
                mem[regs[rs1] + imm] = regs[rs2]
                pc += 1
            elif code in BRANCH_CODES:
                taken = branch[code](regs[rs1], regs[rs2])
                sq_a(seq)
                pc_a(pc)
                kd_a(_K_BRANCH)
                tk_a(1 if taken else 0)
                tg_a(target)
                pc = target if taken else pc + 1
            elif code == C_ADD:
                v = regs[rs1] + regs[rs2]
                if v > _I64_MAX or v < _I64_MIN:
                    v = wrap64(v)
                if rd:
                    regs[rd] = v
                pc += 1
            elif code == C_LI:
                if rd:
                    regs[rd] = imm
                pc += 1
            elif code == C_MV:
                if rd:
                    regs[rd] = regs[rs1]
                pc += 1
            elif code == C_SUB:
                v = regs[rs1] - regs[rs2]
                if v > _I64_MAX or v < _I64_MIN:
                    v = wrap64(v)
                if rd:
                    regs[rd] = v
                pc += 1
            elif code == C_MUL:
                v = regs[rs1] * regs[rs2]
                if v > _I64_MAX or v < _I64_MIN:
                    v = wrap64(v)
                if rd:
                    regs[rd] = v
                pc += 1
            elif code == C_MULI:
                v = regs[rs1] * imm
                if v > _I64_MAX or v < _I64_MIN:
                    v = wrap64(v)
                if rd:
                    regs[rd] = v
                pc += 1
            elif code == C_JMP:
                sq_a(seq)
                pc_a(pc)
                kd_a(_K_JUMP)
                tk_a(1)
                tg_a(target)
                pc = target
            elif code == C_CALL:
                regs[1] = pc + 1
                sq_a(seq)
                pc_a(pc)
                kd_a(_K_CALL)
                tk_a(1)
                tg_a(target)
                pc = target
            elif code == C_RET:
                nxt = regs[1]
                sq_a(seq)
                pc_a(pc)
                kd_a(_K_RET)
                tk_a(1)
                tg_a(nxt)
                pc = nxt
            elif code == C_JR:
                nxt = regs[rs1]
                sq_a(seq)
                pc_a(pc)
                kd_a(_K_IJUMP)
                tk_a(1)
                tg_a(nxt)
                pc = nxt
            elif code == C_HALT:
                sq_a(seq)
                pc_a(pc)
                kd_a(_K_HALT)
                tk_a(0)
                tg_a(NO_TARGET)
                seq += 1
                halted = True
                break
            elif code == C_NOP:
                pc += 1
            else:
                # Remaining ALU forms (immediate and register) via the
                # tables.
                if code in _IMM_TO_REG:
                    v = alu[_IMM_TO_REG[code]](regs[rs1], imm)
                else:
                    v = alu[code](regs[rs1], regs[rs2])
                if rd:
                    regs[rd] = v
                pc += 1
            seq += 1

        if not halted and not self.allow_truncation:
            raise TraceBudgetExceeded(
                "program %r did not halt within %d instructions"
                % (program.name, max_instructions))
        if len(c_seq):
            yield RecordBatch(c_seq, c_pc, c_kind, c_taken, c_target)
        self._total = seq
        self._halted = halted
        self._finished = True


def trace_full(program, max_instructions=1_000_000, allow_truncation=True):
    """Run *program* recording every instruction's architectural effects."""
    packed = pack_program(program)
    regs = [0] * NUM_REGISTERS
    regs[REG_SP] = STACK_TOP
    mem = dict(program.data.initial)
    mem_get = mem.get
    records = []
    append = records.append
    pc = program.entry
    seq = 0
    halted = False
    alu = _ALU
    branch = _BRANCH
    empty = ()
    k_other = int(InstrKind.OTHER)

    while seq < max_instructions:
        code, rd, rs1, rs2, imm, target = packed[pc]
        if code <= C_MAX:  # three-register ALU block
            a = regs[rs1]
            b = regs[rs2]
            v = alu[code](a, b)
            if rd:
                regs[rd] = v
            append(FullRecord(seq, pc, k_other, False, None,
                              ((rs1, a), (rs2, b)), ((rd, v),), empty,
                              empty))
            pc += 1
        elif code <= C_SLTI:  # immediate ALU block
            a = regs[rs1]
            v = alu[_IMM_TO_REG[code]](a, imm)
            if rd:
                regs[rd] = v
            append(FullRecord(seq, pc, k_other, False, None,
                              ((rs1, a),), ((rd, v),), empty, empty))
            pc += 1
        elif code == C_LI:
            if rd:
                regs[rd] = imm
            append(FullRecord(seq, pc, k_other, False, None,
                              empty, ((rd, imm),), empty, empty))
            pc += 1
        elif code == C_MV:
            a = regs[rs1]
            if rd:
                regs[rd] = a
            append(FullRecord(seq, pc, k_other, False, None,
                              ((rs1, a),), ((rd, a),), empty, empty))
            pc += 1
        elif code == C_LD:
            base = regs[rs1]
            addr = base + imm
            v = mem_get(addr, 0)
            if rd:
                regs[rd] = v
            append(FullRecord(seq, pc, k_other, False, None,
                              ((rs1, base),), ((rd, v),), ((addr, v),),
                              empty))
            pc += 1
        elif code == C_ST:
            base = regs[rs1]
            addr = base + imm
            v = regs[rs2]
            mem[addr] = v
            append(FullRecord(seq, pc, k_other, False, None,
                              ((rs1, base), (rs2, v)), empty, empty,
                              ((addr, v),)))
            pc += 1
        elif code in BRANCH_CODES:
            a = regs[rs1]
            b = regs[rs2]
            taken = branch[code](a, b)
            append(FullRecord(seq, pc, _K_BRANCH, taken, target,
                              ((rs1, a), (rs2, b)), empty, empty, empty))
            pc = target if taken else pc + 1
        elif code == C_JMP:
            append(FullRecord(seq, pc, _K_JUMP, True, target,
                              empty, empty, empty, empty))
            pc = target
        elif code == C_CALL:
            regs[1] = pc + 1
            append(FullRecord(seq, pc, _K_CALL, True, target,
                              empty, ((1, pc + 1),), empty, empty))
            pc = target
        elif code == C_RET:
            nxt = regs[1]
            append(FullRecord(seq, pc, _K_RET, True, nxt,
                              ((1, nxt),), empty, empty, empty))
            pc = nxt
        elif code == C_JR:
            nxt = regs[rs1]
            append(FullRecord(seq, pc, _K_IJUMP, True, nxt,
                              ((rs1, nxt),), empty, empty, empty))
            pc = nxt
        elif code == C_HALT:
            append(FullRecord(seq, pc, _K_HALT, False, None,
                              empty, empty, empty, empty))
            seq += 1
            halted = True
            break
        else:  # NOP
            append(FullRecord(seq, pc, k_other, False, None,
                              empty, empty, empty, empty))
            pc += 1
        seq += 1

    if not halted and not allow_truncation:
        raise TraceBudgetExceeded(
            "program %r did not halt within %d instructions"
            % (program.name, max_instructions))
    return FullTrace(records=records, total_instructions=seq, halted=halted,
                     program_name=program.name)


class ChunkedFullTracer:
    """Full-effects tracing with bounded-memory columnar emission.

    The dispatch of :func:`trace_full`, emitting
    :class:`~repro.trace.batch.FullBatch` columns instead of
    :class:`~repro.trace.record.FullRecord` tuples: per instruction the
    loop appends to the fixed effect slots (two register reads, one
    register write, one memory access -- see :class:`FullBatch`), so
    the data-speculation study streams a workload's architectural
    effects without materializing millions of nested tuples.
    Equivalence with :func:`trace_full` is pinned by tests.

    Reads of (and writes to) register 0 are not emitted -- the zero
    register is never a live-in and its writes are discarded.

    ``total_instructions`` and ``halted`` are only valid once
    :meth:`batches` is exhausted, as for :class:`ChunkedCFTracer`.
    """

    DEFAULT_CHUNK = 32768

    def __init__(self, program, max_instructions=1_000_000,
                 allow_truncation=True, chunk_size=DEFAULT_CHUNK):
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.program = program
        self.program_name = program.name
        self.max_instructions = max_instructions
        self.allow_truncation = allow_truncation
        self.chunk_size = chunk_size
        self._finished = False
        self._total = None
        self._halted = None

    @property
    def total_instructions(self):
        if not self._finished:
            raise RuntimeError("trace not finished; exhaust batches() first")
        return self._total

    @property
    def halted(self):
        if not self._finished:
            raise RuntimeError("trace not finished; exhaust batches() first")
        return self._halted

    def batches(self):
        """Generate :class:`FullBatch` columns of at most ``chunk_size``
        instructions, in execution order."""
        program = self.program
        chunk = self.chunk_size
        max_instructions = self.max_instructions
        packed = pack_program(program)
        regs = [0] * NUM_REGISTERS
        regs[REG_SP] = STACK_TOP
        mem = dict(program.data.initial)
        mem_get = mem.get
        pc = program.entry
        seq = 0
        start_seq = 0
        halted = False
        alu = _ALU
        branch = _BRANCH
        k_other = int(InstrKind.OTHER)

        def fresh():
            return ([], [], [], [], [], [], [], [], [], [], [], [])

        (pcs, kinds, takens, targets, rr1, rv1, rr2, rv2, wr, mra, mrv,
         mwa) = fresh()

        while seq < max_instructions:
            if len(pcs) >= chunk:
                yield FullBatch(start_seq, pcs, kinds, takens, targets,
                                rr1, rv1, rr2, rv2, wr, mra, mrv, mwa)
                start_seq = seq
                (pcs, kinds, takens, targets, rr1, rv1, rr2, rv2, wr,
                 mra, mrv, mwa) = fresh()
            code, rd, rs1, rs2, imm, target = packed[pc]
            if code <= C_MAX:  # three-register ALU block
                a = regs[rs1]
                b = regs[rs2]
                v = alu[code](a, b)
                if rd:
                    regs[rd] = v
                kinds.append(k_other)
                takens.append(0)
                targets.append(NO_TARGET)
                rr1.append(rs1 if rs1 else -1)
                rv1.append(a)
                rr2.append(rs2 if rs2 else -1)
                rv2.append(b)
                wr.append(rd if rd else -1)
                mra.append(None)
                mrv.append(None)
                mwa.append(None)
                pcs.append(pc)
                pc += 1
            elif code <= C_SLTI:  # immediate ALU block
                a = regs[rs1]
                v = alu[_IMM_TO_REG[code]](a, imm)
                if rd:
                    regs[rd] = v
                kinds.append(k_other)
                takens.append(0)
                targets.append(NO_TARGET)
                rr1.append(rs1 if rs1 else -1)
                rv1.append(a)
                rr2.append(-1)
                rv2.append(0)
                wr.append(rd if rd else -1)
                mra.append(None)
                mrv.append(None)
                mwa.append(None)
                pcs.append(pc)
                pc += 1
            elif code == C_LI:
                if rd:
                    regs[rd] = imm
                kinds.append(k_other)
                takens.append(0)
                targets.append(NO_TARGET)
                rr1.append(-1)
                rv1.append(0)
                rr2.append(-1)
                rv2.append(0)
                wr.append(rd if rd else -1)
                mra.append(None)
                mrv.append(None)
                mwa.append(None)
                pcs.append(pc)
                pc += 1
            elif code == C_MV:
                a = regs[rs1]
                if rd:
                    regs[rd] = a
                kinds.append(k_other)
                takens.append(0)
                targets.append(NO_TARGET)
                rr1.append(rs1 if rs1 else -1)
                rv1.append(a)
                rr2.append(-1)
                rv2.append(0)
                wr.append(rd if rd else -1)
                mra.append(None)
                mrv.append(None)
                mwa.append(None)
                pcs.append(pc)
                pc += 1
            elif code == C_LD:
                base = regs[rs1]
                addr = base + imm
                v = mem_get(addr, 0)
                if rd:
                    regs[rd] = v
                kinds.append(k_other)
                takens.append(0)
                targets.append(NO_TARGET)
                rr1.append(rs1 if rs1 else -1)
                rv1.append(base)
                rr2.append(-1)
                rv2.append(0)
                wr.append(rd if rd else -1)
                mra.append(addr)
                mrv.append(v)
                mwa.append(None)
                pcs.append(pc)
                pc += 1
            elif code == C_ST:
                base = regs[rs1]
                addr = base + imm
                v = regs[rs2]
                mem[addr] = v
                kinds.append(k_other)
                takens.append(0)
                targets.append(NO_TARGET)
                rr1.append(rs1 if rs1 else -1)
                rv1.append(base)
                rr2.append(rs2 if rs2 else -1)
                rv2.append(v)
                wr.append(-1)
                mra.append(None)
                mrv.append(None)
                mwa.append(addr)
                pcs.append(pc)
                pc += 1
            elif code in BRANCH_CODES:
                a = regs[rs1]
                b = regs[rs2]
                taken = branch[code](a, b)
                kinds.append(_K_BRANCH)
                takens.append(1 if taken else 0)
                targets.append(target)
                rr1.append(rs1 if rs1 else -1)
                rv1.append(a)
                rr2.append(rs2 if rs2 else -1)
                rv2.append(b)
                wr.append(-1)
                mra.append(None)
                mrv.append(None)
                mwa.append(None)
                pcs.append(pc)
                pc = target if taken else pc + 1
            elif code == C_JMP:
                kinds.append(_K_JUMP)
                takens.append(1)
                targets.append(target)
                rr1.append(-1)
                rv1.append(0)
                rr2.append(-1)
                rv2.append(0)
                wr.append(-1)
                mra.append(None)
                mrv.append(None)
                mwa.append(None)
                pcs.append(pc)
                pc = target
            elif code == C_CALL:
                regs[1] = pc + 1
                kinds.append(_K_CALL)
                takens.append(1)
                targets.append(target)
                rr1.append(-1)
                rv1.append(0)
                rr2.append(-1)
                rv2.append(0)
                wr.append(1)
                mra.append(None)
                mrv.append(None)
                mwa.append(None)
                pcs.append(pc)
                pc = target
            elif code == C_RET:
                nxt = regs[1]
                kinds.append(_K_RET)
                takens.append(1)
                targets.append(nxt)
                rr1.append(1)
                rv1.append(nxt)
                rr2.append(-1)
                rv2.append(0)
                wr.append(-1)
                mra.append(None)
                mrv.append(None)
                mwa.append(None)
                pcs.append(pc)
                pc = nxt
            elif code == C_JR:
                nxt = regs[rs1]
                kinds.append(_K_IJUMP)
                takens.append(1)
                targets.append(nxt)
                rr1.append(rs1 if rs1 else -1)
                rv1.append(nxt)
                rr2.append(-1)
                rv2.append(0)
                wr.append(-1)
                mra.append(None)
                mrv.append(None)
                mwa.append(None)
                pcs.append(pc)
                pc = nxt
            elif code == C_HALT:
                kinds.append(_K_HALT)
                takens.append(0)
                targets.append(NO_TARGET)
                rr1.append(-1)
                rv1.append(0)
                rr2.append(-1)
                rv2.append(0)
                wr.append(-1)
                mra.append(None)
                mrv.append(None)
                mwa.append(None)
                pcs.append(pc)
                seq += 1
                halted = True
                break
            else:  # NOP
                kinds.append(k_other)
                takens.append(0)
                targets.append(NO_TARGET)
                rr1.append(-1)
                rv1.append(0)
                rr2.append(-1)
                rv2.append(0)
                wr.append(-1)
                mra.append(None)
                mrv.append(None)
                mwa.append(None)
                pcs.append(pc)
                pc += 1
            seq += 1

        if not halted and not self.allow_truncation:
            raise TraceBudgetExceeded(
                "program %r did not halt within %d instructions"
                % (program.name, max_instructions))
        if pcs:
            yield FullBatch(start_seq, pcs, kinds, takens, targets,
                            rr1, rv1, rr2, rv2, wr, mra, mrv, mwa)
        self._total = seq
        self._halted = halted
        self._finished = True
