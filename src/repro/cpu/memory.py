"""Sparse word-addressed data memory."""


class Memory:
    """A flat 64-bit word-addressed memory backed by a dictionary.

    Unwritten locations read as zero, which lets workloads use large
    zero-initialized arrays without paying for them.
    """

    __slots__ = ("cells",)

    def __init__(self, initial=None):
        self.cells = dict(initial) if initial else {}

    def load(self, addr):
        return self.cells.get(addr, 0)

    def store(self, addr, value):
        self.cells[addr] = value

    def snapshot(self, base, count):
        """Return *count* words starting at *base* as a list."""
        get = self.cells.get
        return [get(base + i, 0) for i in range(count)]

    def write_block(self, base, values):
        for i, value in enumerate(values):
            self.cells[base + i] = int(value)

    def __len__(self):
        return len(self.cells)
