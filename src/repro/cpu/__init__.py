"""CPU interpreters: reference machine and fast tracing loops."""

from repro.cpu.machine import Machine, STACK_TOP, pack_program, wrap64
from repro.cpu.memory import Memory
from repro.cpu.tracer import (
    ChunkedCFTracer,
    TraceBudgetExceeded,
    trace_control_flow,
    trace_full,
)

__all__ = [
    "Machine",
    "Memory",
    "STACK_TOP",
    "pack_program",
    "wrap64",
    "ChunkedCFTracer",
    "TraceBudgetExceeded",
    "trace_control_flow",
    "trace_full",
]
