"""Architectural state and a readable single-step interpreter.

:class:`Machine` is the reference implementation used by unit tests and
debugging sessions; the high-throughput tracing loops in
:mod:`repro.cpu.tracer` replicate its semantics over a packed program
form produced by :func:`pack_program`.
"""

from repro.isa.errors import ProgramError
from repro.isa.instructions import Opcode
from repro.isa.registers import NUM_REGISTERS, REG_SP, REG_ZERO
from repro.cpu.memory import Memory

#: Initial stack pointer; the stack grows toward lower addresses and is
#: far above any data-segment allocation.
STACK_TOP = 1 << 30

_MASK = (1 << 64) - 1
_SIGN = 1 << 63


def wrap64(value):
    """Wrap a Python int to signed 64-bit two's-complement."""
    value &= _MASK
    return value - (1 << 64) if value & _SIGN else value


def _div(a, b):
    """Truncating signed division; division by zero yields 0."""
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _rem(a, b):
    """Remainder consistent with :func:`_div`; x % 0 yields x."""
    if b == 0:
        return a
    return a - _div(a, b) * b


# Packed opcode numbering used by the fast interpreter loops.  The order
# groups operand shapes so the dispatch chains stay short.
OPCODE_LIST = [
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SLL, Opcode.SRL,
    Opcode.SRA, Opcode.SLT, Opcode.SLE, Opcode.SEQ, Opcode.SNE,
    Opcode.MIN, Opcode.MAX,
    Opcode.ADDI, Opcode.SUBI, Opcode.MULI, Opcode.DIVI, Opcode.REMI,
    Opcode.ANDI, Opcode.ORI, Opcode.XORI, Opcode.SLLI, Opcode.SRLI,
    Opcode.SRAI, Opcode.SLTI,
    Opcode.LI, Opcode.MV, Opcode.LD, Opcode.ST,
    Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BLE, Opcode.BGT,
    Opcode.JMP, Opcode.JR, Opcode.CALL, Opcode.RET,
    Opcode.NOP, Opcode.HALT,
]
OP_CODE = {op: i for i, op in enumerate(OPCODE_LIST)}

# Named constants for the dispatch chains.
(C_ADD, C_SUB, C_MUL, C_DIV, C_REM, C_AND, C_OR, C_XOR, C_SLL, C_SRL,
 C_SRA, C_SLT, C_SLE, C_SEQ, C_SNE, C_MIN, C_MAX,
 C_ADDI, C_SUBI, C_MULI, C_DIVI, C_REMI, C_ANDI, C_ORI, C_XORI, C_SLLI,
 C_SRLI, C_SRAI, C_SLTI,
 C_LI, C_MV, C_LD, C_ST,
 C_BEQ, C_BNE, C_BLT, C_BGE, C_BLE, C_BGT,
 C_JMP, C_JR, C_CALL, C_RET,
 C_NOP, C_HALT) = range(len(OPCODE_LIST))

#: Codes of conditional branches, used by the tracing loops.
BRANCH_CODES = frozenset({C_BEQ, C_BNE, C_BLT, C_BGE, C_BLE, C_BGT})

_ALU = {
    C_ADD: lambda a, b: wrap64(a + b),
    C_SUB: lambda a, b: wrap64(a - b),
    C_MUL: lambda a, b: wrap64(a * b),
    C_DIV: _div,
    C_REM: _rem,
    C_AND: lambda a, b: a & b,
    C_OR: lambda a, b: a | b,
    C_XOR: lambda a, b: a ^ b,
    C_SLL: lambda a, b: wrap64(a << (b & 63)),
    C_SRL: lambda a, b: (a & _MASK) >> (b & 63),
    C_SRA: lambda a, b: a >> (b & 63),
    C_SLT: lambda a, b: 1 if a < b else 0,
    C_SLE: lambda a, b: 1 if a <= b else 0,
    C_SEQ: lambda a, b: 1 if a == b else 0,
    C_SNE: lambda a, b: 1 if a != b else 0,
    C_MIN: min,
    C_MAX: max,
}

_BRANCH = {
    C_BEQ: lambda a, b: a == b,
    C_BNE: lambda a, b: a != b,
    C_BLT: lambda a, b: a < b,
    C_BGE: lambda a, b: a >= b,
    C_BLE: lambda a, b: a <= b,
    C_BGT: lambda a, b: a > b,
}

#: Immediate-form code -> register-form code (same semantics).
_IMM_TO_REG = {
    C_ADDI: C_ADD, C_SUBI: C_SUB, C_MULI: C_MUL, C_DIVI: C_DIV,
    C_REMI: C_REM, C_ANDI: C_AND, C_ORI: C_OR, C_XORI: C_XOR,
    C_SLLI: C_SLL, C_SRLI: C_SRL, C_SRAI: C_SRA, C_SLTI: C_SLT,
}


def pack_program(program):
    """Compile a finalized program to the packed tuple form.

    Each element is ``(code, rd, rs1, rs2, imm, target)``; the fast
    interpreter loops index this list with the program counter.
    """
    program.finalize()
    packed = []
    for instr in program.instructions:
        packed.append((OP_CODE[instr.op], instr.rd, instr.rs1, instr.rs2,
                       instr.imm, instr.target))
    return packed


class Machine:
    """Architectural state plus a straightforward interpreter."""

    def __init__(self, program):
        program.finalize()
        self.program = program
        self.regs = [0] * NUM_REGISTERS
        self.regs[REG_SP] = STACK_TOP
        self.memory = Memory(program.data.initial)
        self.pc = program.entry
        self.halted = False
        self.instruction_count = 0

    def read_reg(self, index):
        return 0 if index == REG_ZERO else self.regs[index]

    def write_reg(self, index, value):
        if index != REG_ZERO:
            self.regs[index] = value

    def step(self):
        """Execute one instruction; returns the executed instruction."""
        if self.halted:
            raise ProgramError("machine is halted")
        instr = self.program.instructions[self.pc]
        code = OP_CODE[instr.op]
        regs = self.regs
        next_pc = self.pc + 1

        if code in _ALU:
            self.write_reg(instr.rd, _ALU[code](self.read_reg(instr.rs1),
                                                self.read_reg(instr.rs2)))
        elif code in _IMM_TO_REG:
            fn = _ALU[_IMM_TO_REG[code]]
            self.write_reg(instr.rd, fn(self.read_reg(instr.rs1), instr.imm))
        elif code == C_LI:
            self.write_reg(instr.rd, wrap64(instr.imm))
        elif code == C_MV:
            self.write_reg(instr.rd, self.read_reg(instr.rs1))
        elif code == C_LD:
            addr = self.read_reg(instr.rs1) + instr.imm
            self.write_reg(instr.rd, self.memory.load(addr))
        elif code == C_ST:
            addr = self.read_reg(instr.rs1) + instr.imm
            self.memory.store(addr, self.read_reg(instr.rs2))
        elif code in _BRANCH:
            if _BRANCH[code](self.read_reg(instr.rs1),
                             self.read_reg(instr.rs2)):
                next_pc = instr.target
        elif code == C_JMP:
            next_pc = instr.target
        elif code == C_JR:
            next_pc = self.read_reg(instr.rs1)
        elif code == C_CALL:
            regs[1] = self.pc + 1  # ra
            next_pc = instr.target
        elif code == C_RET:
            next_pc = regs[1]
        elif code == C_HALT:
            self.halted = True
        elif code != C_NOP:
            raise ProgramError("unknown opcode %r" % instr.op)

        self.pc = next_pc
        self.instruction_count += 1
        return instr

    def run(self, max_instructions=10_000_000):
        """Run until halt or the instruction cap; returns the count."""
        while not self.halted:
            if self.instruction_count >= max_instructions:
                raise ProgramError(
                    "instruction budget of %d exhausted" % max_instructions)
            self.step()
        return self.instruction_count
