"""Dynamic trace records.

Two granularities are produced by :mod:`repro.cpu.tracer`:

* **Control-flow traces** (:class:`CFRecord`) carry one record per executed
  control-transfer instruction.  Straight-line instructions are implicit:
  between two consecutive records the machine executed exactly
  ``next.seq - prev.seq - 1`` non-control instructions.  This is all the
  loop detector and the thread-speculation engine need, and it keeps
  million-instruction traces affordable.
* **Full traces** (:class:`FullRecord`) carry one record per executed
  instruction including register and memory accesses with their values;
  the data-speculation study (paper section 4) consumes these.

Both are named tuples so they stay cheap to allocate while remaining
self-describing.
"""

from typing import NamedTuple, Optional, Tuple

from repro.isa.instructions import InstrKind


class CFRecord(NamedTuple):
    """One executed control-transfer instruction."""

    seq: int                 #: global dynamic instruction index (0-based)
    pc: int                  #: instruction address
    kind: int                #: :class:`InstrKind` value
    taken: bool              #: True for taken branches and all jumps
    target: Optional[int]    #: destination when taken (None for halt)

    @property
    def fallthrough(self):
        """Address executed next when the transfer is not taken."""
        return self.pc + 1

    @property
    def next_pc(self):
        return self.target if self.taken else self.pc + 1

    @property
    def is_backward(self):
        """Backward transfer per the paper: target at or before the pc.

        Direction is a static property of the transfer -- a not-taken
        backward branch is still backward (the CLS uses exactly this to
        detect loop exits at B).  Only the halt record, which has no
        target, is never backward.
        """
        return self.target is not None and self.target <= self.pc

    def describe(self):
        return "#%d pc=%d %s %s-> %s" % (
            self.seq, self.pc, InstrKind(self.kind).name,
            "taken " if self.taken else "not-taken ",
            self.target)


class FullRecord(NamedTuple):
    """One executed instruction with its architectural effects."""

    seq: int
    pc: int
    kind: int
    taken: bool
    target: Optional[int]
    reg_reads: Tuple          #: tuple of (register index, value read)
    reg_writes: Tuple         #: tuple of (register index, value written)
    mem_reads: Tuple          #: tuple of (address, value read)
    mem_writes: Tuple         #: tuple of (address, value written)

    def as_cf(self):
        """Project to a :class:`CFRecord` (valid only for control kinds)."""
        return CFRecord(self.seq, self.pc, self.kind, self.taken,
                        self.target)
