"""Columnar record batches: the native currency of the trace pipeline.

A :class:`RecordBatch` holds a run of control-flow records as five
parallel columns (``seqs``/``pcs``/``kinds``/``takens``/``targets``)
instead of a list of :class:`~repro.trace.record.CFRecord` tuples.
Everything between the tracer and the analysis layer moves batches:

* :class:`repro.cpu.tracer.ChunkedCFTracer` emits them directly from
  the interpretation loop;
* the binary v3 trace format (:mod:`repro.trace.io`) writes and reads
  them as struct-packed column chunks, so the on-disk cache round-trip
  is ``tobytes``/``frombytes`` rather than text formatting and parsing;
* :meth:`repro.core.detector.LoopDetector.feed_batch` and the analysis
  ``feed_batch`` protocol consume columns with one tight loop per
  batch, dropping to per-record work only where a record actually
  causes a loop event.

Columns are ``array('q')`` (seq, pc, target) and ``array('b')`` (kind,
taken); a ``target`` of :data:`NO_TARGET` encodes ``None`` (the halt
record -- program addresses are non-negative by construction).
Slicing is **zero-copy**: :meth:`RecordBatch.slice` and
:meth:`RecordBatch.prefix` return batches whose columns are
memoryviews into the parent's storage.

:class:`FullBatch` is the analogous columnar form of a full
per-instruction trace, with fixed-slot effect columns (at most two
register reads, one register write, one memory access per
instruction on this ISA); the data-speculation study streams these
from :class:`repro.cpu.tracer.ChunkedFullTracer` without ever
materializing :class:`~repro.trace.record.FullRecord` objects.
"""

from array import array
from bisect import bisect_left

from repro.trace.record import CFRecord

#: ``target`` column sentinel encoding ``None`` (halt has no target).
NO_TARGET = -1

#: Default records per batch for the adapters below.
DEFAULT_BATCH_RECORDS = 8192


class RecordBatch:
    """A run of control-flow records as five parallel columns.

    Columns are positionally aligned sequences (arrays, or memoryviews
    for zero-copy slices): ``seqs``/``pcs``/``targets`` hold signed
    64-bit values, ``kinds``/``takens`` signed bytes.  ``seqs`` is
    strictly increasing within a batch (execution order), which
    :meth:`prefix` exploits.  Batches are immutable once built.
    """

    __slots__ = ("seqs", "pcs", "kinds", "takens", "targets")

    def __init__(self, seqs, pcs, kinds, takens, targets):
        n = len(seqs)
        if not (len(pcs) == len(kinds) == len(takens)
                == len(targets) == n):
            raise ValueError("record batch columns disagree on length")
        self.seqs = seqs
        self.pcs = pcs
        self.kinds = kinds
        self.takens = takens
        self.targets = targets

    # -- construction --------------------------------------------------------

    @classmethod
    def empty(cls):
        return cls(array("q"), array("q"), array("b"), array("b"),
                   array("q"))

    @classmethod
    def from_records(cls, records):
        """Build a batch from an iterable of :class:`CFRecord`."""
        seqs = array("q")
        pcs = array("q")
        kinds = array("b")
        takens = array("b")
        targets = array("q")
        for rec in records:
            seqs.append(rec.seq)
            pcs.append(rec.pc)
            kinds.append(rec.kind)
            takens.append(1 if rec.taken else 0)
            targets.append(NO_TARGET if rec.target is None else rec.target)
        return cls(seqs, pcs, kinds, takens, targets)

    # -- container protocol --------------------------------------------------

    def __len__(self):
        return len(self.seqs)

    def __iter__(self):
        return self.iter_records()

    @property
    def columns(self):
        """``(seqs, pcs, kinds, takens, targets)``."""
        return (self.seqs, self.pcs, self.kinds, self.takens,
                self.targets)

    def record(self, i):
        """The *i*-th record, decoded to a :class:`CFRecord`."""
        target = self.targets[i]
        return CFRecord(self.seqs[i], self.pcs[i], self.kinds[i],
                        bool(self.takens[i]),
                        None if target < 0 else target)

    def iter_records(self):
        """Decode every row to a :class:`CFRecord`, in order."""
        for seq, pc, kind, taken, target in zip(
                self.seqs, self.pcs, self.kinds, self.takens,
                self.targets):
            yield CFRecord(seq, pc, kind, bool(taken),
                           None if target < 0 else target)

    # -- zero-copy slicing ---------------------------------------------------

    def slice(self, start, stop):
        """Rows ``[start, stop)`` as a batch sharing this one's storage."""
        return RecordBatch(memoryview(self.seqs)[start:stop],
                           memoryview(self.pcs)[start:stop],
                           memoryview(self.kinds)[start:stop],
                           memoryview(self.takens)[start:stop],
                           memoryview(self.targets)[start:stop])

    def prefix(self, seq_limit):
        """The (zero-copy) prefix of records with ``seq < seq_limit``.

        Relies on ``seqs`` being sorted; returns ``self`` unchanged when
        every record qualifies.
        """
        n = len(self.seqs)
        if n == 0 or self.seqs[n - 1] < seq_limit:
            return self
        return self.slice(0, bisect_left(self.seqs, seq_limit))

    def __repr__(self):
        if len(self):
            span = " seq %d..%d" % (self.seqs[0], self.seqs[-1])
        else:
            span = ""
        return "RecordBatch(%d records%s)" % (len(self), span)


def iter_batches(records, batch_records=DEFAULT_BATCH_RECORDS):
    """Adapt an iterable of :class:`CFRecord` to a batch stream.

    The bridge from the legacy per-record world (an in-memory
    :class:`~repro.trace.stream.CFTrace`, the v1/v2 text readers) into
    batch consumers; emits no empty batches.
    """
    if batch_records < 1:
        raise ValueError("batch_records must be >= 1")
    seqs = array("q")
    pcs = array("q")
    kinds = array("b")
    takens = array("b")
    targets = array("q")
    count = 0
    for rec in records:
        seqs.append(rec.seq)
        pcs.append(rec.pc)
        kinds.append(rec.kind)
        takens.append(1 if rec.taken else 0)
        targets.append(NO_TARGET if rec.target is None else rec.target)
        count += 1
        if count >= batch_records:
            yield RecordBatch(seqs, pcs, kinds, takens, targets)
            seqs = array("q")
            pcs = array("q")
            kinds = array("b")
            takens = array("b")
            targets = array("q")
            count = 0
    if count:
        yield RecordBatch(seqs, pcs, kinds, takens, targets)


class FullBatch:
    """A run of full per-instruction records as fixed-slot columns.

    The ISA bounds every instruction's architectural effects: at most
    two register reads, one register write, one memory read (``ld``)
    and one memory write (``st``).  One column per slot therefore
    replaces the nested effect tuples of
    :class:`~repro.trace.record.FullRecord`:

    ``rr1``/``rv1``, ``rr2``/``rv2``
        register-read slots (register index / value); ``-1`` marks an
        empty slot.  Reads of register 0 (the hardwired zero) are not
        recorded -- no consumer observes them.
    ``wr``
        written register index or ``-1``; writes to register 0 are
        likewise dropped.
    ``mra``/``mrv``, ``mwa``
        memory-read address/value and memory-write address; ``None``
        marks an empty slot (addresses are unbounded Python ints, so
        the columns are plain lists).

    ``seqs`` is implicit: a full trace covers every instruction, so row
    ``i`` has sequence number ``start_seq + i``.
    """

    __slots__ = ("start_seq", "pcs", "kinds", "takens", "targets",
                 "rr1", "rv1", "rr2", "rv2", "wr", "mra", "mrv", "mwa")

    def __init__(self, start_seq, pcs, kinds, takens, targets,
                 rr1, rv1, rr2, rv2, wr, mra, mrv, mwa):
        n = len(pcs)
        for column in (kinds, takens, targets, rr1, rv1, rr2, rv2, wr,
                       mra, mrv, mwa):
            if len(column) != n:
                raise ValueError("full batch columns disagree on length")
        self.start_seq = start_seq
        self.pcs = pcs
        self.kinds = kinds
        self.takens = takens
        self.targets = targets
        self.rr1 = rr1
        self.rv1 = rv1
        self.rr2 = rr2
        self.rv2 = rv2
        self.wr = wr
        self.mra = mra
        self.mrv = mrv
        self.mwa = mwa

    def __len__(self):
        return len(self.pcs)

    def __repr__(self):
        return ("FullBatch(%d instructions from seq %d)"
                % (len(self), self.start_seq))
