"""Trace (de)serialization.

Control-flow traces are written as a compact line format so experiment
pipelines can cache the expensive interpretation step (the on-disk
trace cache in :mod:`repro.pipeline.cache` builds on this module).

Two format versions share the record line layout::

    <seq> <pc> <kind> <taken> <target|->

* **v1** (legacy, still written by default for compatibility)::

      #cftrace v1 name=<program> total=<n> halted=<0|1> records=<n>

  Older v1 files lack the ``records=`` field; they still load, but
  without truncation detection.

* **v2** (the cache format) has the same header fields and is written
  and read in bounded chunks: the writer batches record lines instead
  of issuing one ``write`` per record, and :class:`CFTraceWriter`
  back-patches the header so a trace can be streamed to disk while it
  is being generated, without ever materializing the record list.

Both loaders validate the declared record count and raise
:class:`ValueError` on truncated, padded, or malformed files.

Full traces are not serialized (they are cheap to regenerate at the
scales the data-speculation study uses, and enormous on disk).
"""

import contextlib
import io
import os
from typing import NamedTuple, Optional

from repro.trace.record import CFRecord
from repro.trace.stream import CFTrace

_HEADER_V1 = "#cftrace v1 "
_HEADER_V2 = "#cftrace v2 "

#: Bump when the on-disk record layout changes; cache keys include it.
TRACE_FORMAT_VERSION = 2

#: Records per chunk for the batched v2 writer/reader.
CHUNK_RECORDS = 8192

#: Room reserved in a back-patched v2 header for the numeric fields.
_BACKPATCH_SLACK = 64


class TraceHeader(NamedTuple):
    """Parsed trace-file header."""

    version: int
    program_name: str
    total_instructions: int
    halted: bool
    records: Optional[int]    #: declared record count (None: legacy v1)


def _format_record(rec):
    return "%d %d %d %d %s" % (
        rec.seq, rec.pc, rec.kind, 1 if rec.taken else 0,
        "-" if rec.target is None else str(rec.target))


def _parse_record(line, lineno):
    parts = line.split()
    if len(parts) != 5:
        raise ValueError("malformed record on line %d: %r" % (lineno, line))
    seq, pc, kind, taken, target = parts
    if taken not in ("0", "1"):
        raise ValueError("malformed taken flag on line %d: %r"
                         % (lineno, line))
    try:
        return CFRecord(int(seq), int(pc), int(kind), taken == "1",
                        None if target == "-" else int(target))
    except ValueError:
        raise ValueError("malformed record on line %d: %r"
                         % (lineno, line)) from None


def _parse_header(line):
    if line.startswith(_HEADER_V1):
        version, body = 1, line[len(_HEADER_V1):]
    elif line.startswith(_HEADER_V2):
        version, body = 2, line[len(_HEADER_V2):]
    else:
        raise ValueError("not a cftrace file (bad header %r)" % line[:40])
    fields = {}
    for part in body.split():
        if "=" not in part:
            raise ValueError("malformed header field %r" % part)
        key, value = part.split("=", 1)
        fields[key] = value
    try:
        total = int(fields["total"])
        halted = fields["halted"] == "1"
        records = int(fields["records"]) if "records" in fields else None
    except (KeyError, ValueError):
        raise ValueError("malformed header %r" % line.strip()) from None
    if version == 2 and records is None:
        raise ValueError("v2 header missing records= field")
    return TraceHeader(version, fields.get("name", "program"), total,
                       halted, records)


# -- writing -----------------------------------------------------------------

@contextlib.contextmanager
def atomic_writer(path):
    """A text file handle that atomically replaces *path* on success
    and leaves no temp file behind on error."""
    tmp = "%s.tmp.%d" % (path, os.getpid())
    try:
        with open(tmp, "w", encoding="ascii") as fh:
            yield fh
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def dump_cf_trace(trace, path_or_file, version=1):
    """Write *trace* to a path (atomically) or text file object.

    ``version=1`` keeps the legacy one-write-per-record format;
    ``version=2`` writes the chunked cache format.
    """
    if hasattr(path_or_file, "write"):
        _write(trace, path_or_file, version)
        return
    with atomic_writer(path_or_file) as fh:
        _write(trace, fh, version)


def _write(trace, fh, version):
    if version == 1:
        fh.write("%sname=%s total=%d halted=%d records=%d\n"
                 % (_HEADER_V1, trace.program_name,
                    trace.total_instructions, 1 if trace.halted else 0,
                    len(trace.records)))
        for rec in trace.records:
            fh.write(_format_record(rec))
            fh.write("\n")
    elif version == 2:
        fh.write("%sname=%s total=%d halted=%d records=%d\n"
                 % (_HEADER_V2, trace.program_name,
                    trace.total_instructions, 1 if trace.halted else 0,
                    len(trace.records)))
        _write_record_chunks(trace.records, fh)
    else:
        raise ValueError("unknown trace format version %r" % (version,))


def _write_record_chunks(records, fh):
    batch = []
    for rec in records:
        batch.append(_format_record(rec))
        if len(batch) >= CHUNK_RECORDS:
            fh.write("\n".join(batch))
            fh.write("\n")
            del batch[:]
    if batch:
        fh.write("\n".join(batch))
        fh.write("\n")


class CFTraceWriter:
    """Streaming v2 writer for traces of unknown final length.

    The header needs ``total``/``halted``/``records``, which a streaming
    producer only knows at the end, so a fixed-width placeholder header
    is written first and back-patched by :meth:`close`.  The file object
    must therefore be seekable.

    Usage::

        with open(tmp, "w", encoding="ascii") as fh:
            writer = CFTraceWriter(fh, program_name)
            for chunk in tracer.chunks():
                writer.write(chunk)
            writer.close(tracer.total_instructions, tracer.halted)
    """

    def __init__(self, fh, program_name):
        self._fh = fh
        self._name = program_name
        self._count = 0
        self._batch = []
        self._width = (len(_HEADER_V2) + len("name=%s" % program_name)
                       + _BACKPATCH_SLACK)
        fh.write("#" + " " * (self._width - 1) + "\n")

    def write(self, records):
        """Append an iterable of records."""
        batch = self._batch
        for rec in records:
            batch.append(_format_record(rec))
            self._count += 1
            if len(batch) >= CHUNK_RECORDS:
                self._flush()

    def _flush(self):
        if self._batch:
            self._fh.write("\n".join(self._batch))
            self._fh.write("\n")
            del self._batch[:]

    def close(self, total_instructions, halted):
        """Flush records and back-patch the real header."""
        self._flush()
        header = "%sname=%s total=%d halted=%d records=%d" % (
            _HEADER_V2, self._name, total_instructions,
            1 if halted else 0, self._count)
        if len(header) > self._width:
            raise ValueError("header exceeds reserved width")
        self._fh.seek(0)
        self._fh.write(header.ljust(self._width))

    @property
    def records_written(self):
        return self._count


# -- reading -----------------------------------------------------------------

def load_cf_trace(path_or_file):
    """Read a trace written by :func:`dump_cf_trace` (either version)."""
    if hasattr(path_or_file, "read"):
        return _read(path_or_file)
    with open(path_or_file, "r", encoding="ascii") as fh:
        return _read(fh)


def _read(fh):
    header = _parse_header(fh.readline())
    records = []
    lineno = 1
    for line in fh:
        lineno += 1
        line = line.strip()
        if not line:
            continue
        records.append(_parse_record(line, lineno))
    _check_count(header, len(records))
    return CFTrace(records=records,
                   total_instructions=header.total_instructions,
                   halted=header.halted, program_name=header.program_name)


def _check_count(header, seen):
    if header.records is not None and seen != header.records:
        raise ValueError(
            "trace declares %d records but file contains %d "
            "(truncated or tampered?)" % (header.records, seen))


def read_cf_header(path_or_file):
    """Read only the header of a trace file."""
    if hasattr(path_or_file, "read"):
        return _parse_header(path_or_file.readline())
    with open(path_or_file, "r", encoding="ascii") as fh:
        return _parse_header(fh.readline())


def open_cf_records(path):
    """Open *path* for streaming: ``(header, record_iterator)``.

    The iterator yields :class:`CFRecord` one at a time without holding
    the whole trace in memory, validates the declared record count at
    end of file (raising :class:`ValueError` on mismatch), and closes
    the file when exhausted or garbage-collected.
    """
    fh = open(path, "r", encoding="ascii")
    try:
        header = _parse_header(fh.readline())
    except BaseException:
        fh.close()
        raise
    return header, _record_stream(fh, header)


def _record_stream(fh, header):
    try:
        seen = 0
        lineno = 1
        for line in fh:
            lineno += 1
            line = line.strip()
            if not line:
                continue
            yield _parse_record(line, lineno)
            seen += 1
        _check_count(header, seen)
    finally:
        fh.close()


# -- string helpers ----------------------------------------------------------

def dumps_cf_trace(trace, version=1):
    """Serialize to a string (round-trip helper for tests and workers)."""
    buf = io.StringIO()
    _write(trace, buf, version)
    return buf.getvalue()


def loads_cf_trace(text):
    return _read(io.StringIO(text))
