"""Trace (de)serialization.

Control-flow traces are written as a compact line format so experiment
pipelines can cache the expensive interpretation step::

    #cftrace v1 name=<program> total=<n> halted=<0|1>
    <seq> <pc> <kind> <taken> <target|->

Full traces are not serialized (they are cheap to regenerate at the
scales the data-speculation study uses, and enormous on disk).
"""

import io
import os

from repro.trace.record import CFRecord
from repro.trace.stream import CFTrace

_HEADER_PREFIX = "#cftrace v1 "


def dump_cf_trace(trace, path_or_file):
    """Write *trace* to a path or text file object."""
    if hasattr(path_or_file, "write"):
        _write(trace, path_or_file)
        return
    tmp = "%s.tmp.%d" % (path_or_file, os.getpid())
    with open(tmp, "w", encoding="ascii") as fh:
        _write(trace, fh)
    os.replace(tmp, path_or_file)


def _write(trace, fh):
    fh.write("%sname=%s total=%d halted=%d\n"
             % (_HEADER_PREFIX, trace.program_name,
                trace.total_instructions, 1 if trace.halted else 0))
    for rec in trace.records:
        target = "-" if rec.target is None else str(rec.target)
        fh.write("%d %d %d %d %s\n"
                 % (rec.seq, rec.pc, rec.kind, 1 if rec.taken else 0,
                    target))


def load_cf_trace(path_or_file):
    """Read a trace written by :func:`dump_cf_trace`."""
    if hasattr(path_or_file, "read"):
        return _read(path_or_file)
    with open(path_or_file, "r", encoding="ascii") as fh:
        return _read(fh)


def _read(fh):
    header = fh.readline()
    if not header.startswith(_HEADER_PREFIX):
        raise ValueError("not a cftrace v1 file")
    fields = dict(part.split("=", 1)
                  for part in header[len(_HEADER_PREFIX):].split())
    records = []
    for line in fh:
        line = line.strip()
        if not line:
            continue
        seq, pc, kind, taken, target = line.split()
        records.append(CFRecord(int(seq), int(pc), int(kind),
                                taken == "1",
                                None if target == "-" else int(target)))
    return CFTrace(records=records, total_instructions=int(fields["total"]),
                   halted=fields["halted"] == "1",
                   program_name=fields.get("name", "program"))


def dumps_cf_trace(trace):
    """Serialize to a string (round-trip helper for tests)."""
    buf = io.StringIO()
    _write(trace, buf)
    return buf.getvalue()


def loads_cf_trace(text):
    return _read(io.StringIO(text))
