"""Trace (de)serialization.

Control-flow traces are persisted so experiment pipelines can cache the
expensive interpretation step (the on-disk trace cache in
:mod:`repro.pipeline.cache` builds on this module).  Three format
versions are readable; **v3 is the only format written by default**:

* **v1** (legacy text, read-only)::

      #cftrace v1 name=<program> total=<n> halted=<0|1> records=<n>
      <seq> <pc> <kind> <taken> <target|->

  Older v1 files lack the ``records=`` field; they still load, but
  without truncation detection.  v1 is never written by default
  anymore (pass ``version=1`` explicitly to produce fixtures).

* **v2** (text, chunked): same line layout as v1, but written and read
  in bounded chunks, with a back-patchable header
  (:class:`CFTraceWriter`) so a trace can stream to disk while it is
  generated.

* **v3** (binary, columnar -- the cache format): a struct-packed
  header followed by column chunks that map one-to-one onto
  :class:`~repro.trace.batch.RecordBatch`.  Layout, all little-endian::

      magic  b"CFT3"
      header <H name_len> <name bytes> <q total> <B halted> <q records>
      chunk  <I count> <I payload_len> zlib(seqs[count]x q
             | pcs[count]x q | kinds[count]x b | takens[count]x b
             | targets[count]x q)
      end    <I 0xFFFFFFFF>

  Each chunk's concatenated column bytes are zlib-compressed (the
  64-bit columns are mostly zero bytes, so the cache shrinks well
  below the old text format while decoding stays a C-speed
  ``decompress`` straight into zero-copy column views; files opened
  by path are additionally memory-mapped so the compressed payloads
  are never copied out of the page cache).  ``records`` in the
  header is the
  declared total; the end marker must be followed by end-of-file.
  Readers raise :class:`ValueError` on a bad magic, a truncated or
  undecodable chunk, a record-count mismatch, or trailing garbage --
  a v3 file is either bit-exact or rejected.

All loaders validate the declared record count and raise
:class:`ValueError` on truncated, padded, or malformed files.

Full traces are not serialized (they are cheap to regenerate at the
scales the data-speculation study uses, and enormous on disk).
"""

import contextlib
import io
import mmap
import os
import struct
import sys
import zlib
from array import array
from typing import NamedTuple, Optional

from repro.trace.batch import NO_TARGET, RecordBatch, iter_batches
from repro.trace.record import CFRecord
from repro.trace.stream import CFTrace

_HEADER_V1 = "#cftrace v1 "
_HEADER_V2 = "#cftrace v2 "

#: v3 file magic.  The leading byte differs from ``#`` so text and
#: binary traces are distinguishable from their first byte.
MAGIC_V3 = b"CFT3"

#: Bump when the on-disk record layout changes; cache keys include it.
TRACE_FORMAT_VERSION = 3

#: Records per chunk for the batched v2/v3 writers.
CHUNK_RECORDS = 8192

#: Room reserved in a back-patched v2 header for the numeric fields.
_BACKPATCH_SLACK = 64

#: v3 end-of-chunks marker (an impossible chunk record count).
_END_MARKER = 0xFFFFFFFF

#: Upper bound on a single v3 chunk's declared record count; anything
#: larger is treated as corruption rather than attempted as an
#: allocation.
_MAX_CHUNK_RECORDS = 1 << 28

_NAME_STRUCT = struct.Struct("<H")
_META_STRUCT = struct.Struct("<qBq")      # total, halted, records
_COUNT_STRUCT = struct.Struct("<I")

_BIG_ENDIAN = sys.byteorder == "big"


class TraceHeader(NamedTuple):
    """Parsed trace-file header."""

    version: int
    program_name: str
    total_instructions: int
    halted: bool
    records: Optional[int]    #: declared record count (None: legacy v1)


def _format_record(rec):
    return "%d %d %d %d %s" % (
        rec.seq, rec.pc, rec.kind, 1 if rec.taken else 0,
        "-" if rec.target is None else str(rec.target))


def _parse_record(line, lineno):
    parts = line.split()
    if len(parts) != 5:
        raise ValueError("malformed record on line %d: %r" % (lineno, line))
    seq, pc, kind, taken, target = parts
    if taken not in ("0", "1"):
        raise ValueError("malformed taken flag on line %d: %r"
                         % (lineno, line))
    try:
        return CFRecord(int(seq), int(pc), int(kind), taken == "1",
                        None if target == "-" else int(target))
    except ValueError:
        raise ValueError("malformed record on line %d: %r"
                         % (lineno, line)) from None


def _parse_header(line):
    if line.startswith(_HEADER_V1):
        version, body = 1, line[len(_HEADER_V1):]
    elif line.startswith(_HEADER_V2):
        version, body = 2, line[len(_HEADER_V2):]
    else:
        raise ValueError("not a cftrace file (bad header %r)" % line[:40])
    fields = {}
    for part in body.split():
        if "=" not in part:
            raise ValueError("malformed header field %r" % part)
        key, value = part.split("=", 1)
        fields[key] = value
    try:
        total = int(fields["total"])
        halted = fields["halted"] == "1"
        records = int(fields["records"]) if "records" in fields else None
    except (KeyError, ValueError):
        raise ValueError("malformed header %r" % line.strip()) from None
    if version == 2 and records is None:
        raise ValueError("v2 header missing records= field")
    return TraceHeader(version, fields.get("name", "program"), total,
                       halted, records)


# -- binary v3 primitives ----------------------------------------------------

class _BufferReader:
    """Minimal binary file facade over a bytes-like buffer (an mmap'd
    trace file, a shared-memory segment, plain ``bytes``).

    ``read`` returns **zero-copy** :class:`memoryview` slices, so the
    v3 reader's framing fields and compressed chunk payloads are never
    copied out of the underlying buffer; ``close`` releases the view
    and any owned backing resources (mapping, file handle).  Only the
    surface the v3 reader uses is implemented.
    """

    __slots__ = ("_view", "_pos", "_mm", "_fh")

    def __init__(self, buf, mm=None, fh=None):
        self._view = memoryview(buf)
        self._pos = 0
        self._mm = mm
        self._fh = fh

    def read(self, n):
        view = self._view
        if view is None:
            return b""
        data = view[self._pos:self._pos + n]
        self._pos += len(data)
        return data

    def close(self):
        view, self._view = self._view, None
        if view is not None:
            view.release()
        mm, self._mm = self._mm, None
        if mm is not None:
            try:
                mm.close()
            except BufferError:
                # A still-referenced slice pins the mapping; it closes
                # with the last view.
                pass
        fh, self._fh = self._fh, None
        if fh is not None:
            fh.close()


def _mmap_reader(fh):
    """A zero-copy :class:`_BufferReader` over *fh*'s mapped contents,
    or ``None`` when the file cannot be mapped (empty file, pipe,
    exotic filesystem) -- callers fall back to plain reads."""
    try:
        mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
    except (OSError, ValueError, io.UnsupportedOperation):
        return None
    return _BufferReader(mm, mm=mm, fh=fh)


def _exactly(fh, n, what):
    data = fh.read(n)
    if len(data) != n:
        raise ValueError("truncated or tampered v3 trace: short read in %s"
                         % what)
    return data


def _read_header_v3(fh):
    magic = fh.read(len(MAGIC_V3))
    if magic != MAGIC_V3:
        raise ValueError("not a v3 cftrace file (bad magic %r)"
                         % bytes(magic))
    (name_len,) = _NAME_STRUCT.unpack(_exactly(fh, _NAME_STRUCT.size,
                                               "header"))
    name = bytes(_exactly(fh, name_len, "header")).decode(
        "utf-8", errors="replace")
    total, halted, records = _META_STRUCT.unpack(
        _exactly(fh, _META_STRUCT.size, "header"))
    if records < 0 or total < 0:
        raise ValueError("v3 trace header was never finalized "
                         "(writer did not close?)")
    return TraceHeader(3, name, total, bool(halted), records)


def _column_array(typecode, data):
    column = array(typecode)
    column.frombytes(data)
    if _BIG_ENDIAN and column.itemsize > 1:
        column.byteswap()
    return column


def _column_bytes(column):
    if _BIG_ENDIAN and column.itemsize > 1:
        typecode = getattr(column, "typecode", None) or column.format
        swapped = array(typecode, column)
        swapped.byteswap()
        return swapped.tobytes()
    return column.tobytes()


def _read_chunk_v3(fh, count):
    (payload_len,) = _COUNT_STRUCT.unpack(
        _exactly(fh, _COUNT_STRUCT.size, "chunk"))
    raw = count * 26
    # zlib never usefully expands input beyond a few header bytes per
    # block, so a payload larger than the raw column bytes (plus
    # slack) is corruption -- reject before allocating anything.
    if payload_len > raw + 1024:
        raise ValueError("malformed v3 chunk payload length %d for %d "
                         "records" % (payload_len, count))
    try:
        decomp = zlib.decompressobj()
        # Bounded decode: a tampered payload (zlib bomb) may inflate
        # far past the declared record count; cap the output at one
        # byte over the expected size so oversized streams fail the
        # length check below instead of exhausting memory.
        payload = decomp.decompress(_exactly(fh, payload_len, "chunk"),
                                    raw + 1)
    except zlib.error:
        raise ValueError("corrupt v3 chunk (zlib decode failed)") \
            from None
    if len(payload) != raw or not decomp.eof or decomp.unused_data:
        raise ValueError(
            "v3 chunk declares %d records but decodes to %d bytes "
            "(truncated or tampered?)" % (count, len(payload)))
    view = memoryview(payload)
    q = count * 8
    if not _BIG_ENDIAN:
        # Zero-copy decode: the columns are typed views straight over
        # the decompressed payload -- no per-column copies.  Batches
        # are immutable, so the read-only views are fully equivalent
        # to the arrays the copying path builds.
        return RecordBatch(
            view[:q].cast("q"),
            view[q:2 * q].cast("q"),
            view[2 * q:2 * q + count].cast("b"),
            view[2 * q + count:2 * q + 2 * count].cast("b"),
            view[2 * q + 2 * count:].cast("q"))
    seqs = _column_array("q", view[:q])
    pcs = _column_array("q", view[q:2 * q])
    kinds = _column_array("b", view[2 * q:2 * q + count])
    takens = _column_array("b", view[2 * q + count:2 * q + 2 * count])
    targets = _column_array("q", view[2 * q + 2 * count:])
    return RecordBatch(seqs, pcs, kinds, takens, targets)


def _batches_v3(fh, header):
    """Generate the file's batches, enforcing count/end/EOF invariants;
    closes *fh* when exhausted or garbage-collected."""
    try:
        seen = 0
        while True:
            (count,) = _COUNT_STRUCT.unpack(
                _exactly(fh, _COUNT_STRUCT.size, "chunk count"))
            if count == _END_MARKER:
                break
            if count == 0 or count > _MAX_CHUNK_RECORDS:
                raise ValueError("malformed v3 chunk record count %d"
                                 % count)
            yield _read_chunk_v3(fh, count)
            seen += count
            if seen > header.records:
                break    # fail the count check below with the real total
        if seen != header.records:
            raise ValueError(
                "trace declares %d records but file contains %d "
                "(truncated or tampered?)" % (header.records, seen))
        if fh.read(1):
            raise ValueError("trailing garbage after v3 end marker")
    finally:
        fh.close()


def _write_chunk_v3(fh, batch):
    payload = zlib.compress(
        _column_bytes(batch.seqs) + _column_bytes(batch.pcs)
        + _column_bytes(batch.kinds) + _column_bytes(batch.takens)
        + _column_bytes(batch.targets))
    fh.write(_COUNT_STRUCT.pack(len(batch)))
    fh.write(_COUNT_STRUCT.pack(len(payload)))
    fh.write(payload)


# -- writing -----------------------------------------------------------------

@contextlib.contextmanager
def atomic_writer(path, binary=False):
    """A file handle that atomically replaces *path* on success and
    leaves no temp file behind on error."""
    tmp = "%s.tmp.%d" % (path, os.getpid())
    try:
        if binary:
            fh = open(tmp, "wb")
        else:
            fh = open(tmp, "w", encoding="ascii")
        with fh:
            yield fh
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def dump_cf_trace(trace, path_or_file, version=TRACE_FORMAT_VERSION):
    """Write *trace* to a path (atomically) or file object.

    The default is the current format (binary v3).  ``version=2``
    writes the chunked text format; ``version=1`` exists only to
    produce legacy fixtures and should not be used for new files (it
    has no truncation detection on old readers).  File objects must be
    binary for v3 and text for v1/v2.
    """
    if version not in (1, 2, 3):
        raise ValueError("unknown trace format version %r" % (version,))
    if hasattr(path_or_file, "write"):
        _write(trace, path_or_file, version)
        return
    with atomic_writer(path_or_file, binary=(version == 3)) as fh:
        _write(trace, fh, version)


def _write(trace, fh, version):
    if version == 3:
        _write_v3(trace, fh)
        return
    if version == 1:
        fh.write("%sname=%s total=%d halted=%d records=%d\n"
                 % (_HEADER_V1, trace.program_name,
                    trace.total_instructions, 1 if trace.halted else 0,
                    len(trace.records)))
        for rec in trace.records:
            fh.write(_format_record(rec))
            fh.write("\n")
    elif version == 2:
        fh.write("%sname=%s total=%d halted=%d records=%d\n"
                 % (_HEADER_V2, trace.program_name,
                    trace.total_instructions, 1 if trace.halted else 0,
                    len(trace.records)))
        _write_record_chunks(trace.records, fh)
    else:
        raise ValueError("unknown trace format version %r" % (version,))


def _write_v3(trace, fh):
    try:
        fh.write(MAGIC_V3)
    except TypeError:
        raise TypeError("v3 traces are binary; pass a binary-mode file "
                        "object (or a path)") from None
    name = trace.program_name.encode("utf-8")
    fh.write(_NAME_STRUCT.pack(len(name)))
    fh.write(name)
    fh.write(_META_STRUCT.pack(trace.total_instructions,
                               1 if trace.halted else 0,
                               len(trace.records)))
    for batch in iter_batches(trace.records, CHUNK_RECORDS):
        _write_chunk_v3(fh, batch)
    fh.write(_COUNT_STRUCT.pack(_END_MARKER))


def _write_record_chunks(records, fh):
    batch = []
    for rec in records:
        batch.append(_format_record(rec))
        if len(batch) >= CHUNK_RECORDS:
            fh.write("\n".join(batch))
            fh.write("\n")
            del batch[:]
    if batch:
        fh.write("\n".join(batch))
        fh.write("\n")


class CFTraceWriter:
    """Streaming *v2 text* writer for traces of unknown final length.

    Kept for producing v2 fixtures and for text-consuming tools; the
    cache writes v3 through :class:`BatchTraceWriter`.  The header
    needs ``total``/``halted``/``records``, which a streaming producer
    only knows at the end, so a fixed-width placeholder header is
    written first and back-patched by :meth:`close`.  The file object
    must therefore be seekable.
    """

    def __init__(self, fh, program_name):
        self._fh = fh
        self._name = program_name
        self._count = 0
        self._batch = []
        self._width = (len(_HEADER_V2) + len("name=%s" % program_name)
                       + _BACKPATCH_SLACK)
        fh.write("#" + " " * (self._width - 1) + "\n")

    def write(self, records):
        """Append an iterable of records."""
        batch = self._batch
        for rec in records:
            batch.append(_format_record(rec))
            self._count += 1
            if len(batch) >= CHUNK_RECORDS:
                self._flush()

    def _flush(self):
        if self._batch:
            self._fh.write("\n".join(self._batch))
            self._fh.write("\n")
            del self._batch[:]

    def close(self, total_instructions, halted):
        """Flush records and back-patch the real header."""
        self._flush()
        header = "%sname=%s total=%d halted=%d records=%d" % (
            _HEADER_V2, self._name, total_instructions,
            1 if halted else 0, self._count)
        if len(header) > self._width:
            raise ValueError("header exceeds reserved width")
        self._fh.seek(0)
        self._fh.write(header.ljust(self._width))

    @property
    def records_written(self):
        return self._count


class BatchTraceWriter:
    """Streaming v3 writer: batches in, columnar chunks out.

    Mirrors :class:`CFTraceWriter` for the binary format: the header's
    ``total``/``halted``/``records`` fields sit at a fixed offset (the
    program name's length is known up front), are written as ``-1``
    placeholders, and are back-patched by :meth:`close` -- so a file
    abandoned mid-write fails validation instead of loading short.
    The file object must be binary and seekable.
    """

    def __init__(self, fh, program_name):
        self._fh = fh
        self._count = 0
        name = program_name.encode("utf-8")
        fh.write(MAGIC_V3)
        fh.write(_NAME_STRUCT.pack(len(name)))
        fh.write(name)
        self._meta_offset = (len(MAGIC_V3) + _NAME_STRUCT.size
                             + len(name))
        fh.write(_META_STRUCT.pack(-1, 0, -1))

    def write_batch(self, batch):
        """Append one :class:`RecordBatch` as a chunk."""
        if len(batch):
            _write_chunk_v3(self._fh, batch)
            self._count += len(batch)

    def write(self, records):
        """Append an iterable of records (convenience adapter)."""
        for batch in iter_batches(records, CHUNK_RECORDS):
            self.write_batch(batch)

    def close(self, total_instructions, halted):
        """Write the end marker and back-patch the real header."""
        fh = self._fh
        fh.write(_COUNT_STRUCT.pack(_END_MARKER))
        fh.seek(self._meta_offset)
        fh.write(_META_STRUCT.pack(total_instructions,
                                   1 if halted else 0, self._count))

    @property
    def records_written(self):
        return self._count


# -- reading -----------------------------------------------------------------

def _open_sniffed(path):
    """Open *path* and classify it: ``(version_family, file_handle)``
    where family is ``"binary"`` (v3) or ``"text"`` (v1/v2)."""
    fh = open(path, "rb")
    try:
        magic = fh.read(len(MAGIC_V3))
        fh.seek(0)
        if magic == MAGIC_V3:
            return "binary", fh
        return "text", io.TextIOWrapper(fh, encoding="ascii")
    except BaseException:
        fh.close()
        raise


def load_cf_trace(path_or_file):
    """Read a trace written by :func:`dump_cf_trace` (any version).

    Paths are sniffed; file objects must be binary for v3, text for
    v1/v2 (matching how they are written).
    """
    if hasattr(path_or_file, "read"):
        if _is_binary_file(path_or_file):
            return _read_v3(path_or_file)
        return _read(path_or_file)
    family, fh = _open_sniffed(path_or_file)
    with fh:
        if family == "binary":
            return _read_v3(fh)
        return _read(fh)


def _is_binary_file(fh):
    probe = fh.read(0)
    return isinstance(probe, (bytes, bytearray, memoryview))


def _read_v3(fh):
    header = _read_header_v3(fh)
    records = []
    seen = 0
    while True:
        (count,) = _COUNT_STRUCT.unpack(
            _exactly(fh, _COUNT_STRUCT.size, "chunk count"))
        if count == _END_MARKER:
            break
        if count == 0 or count > _MAX_CHUNK_RECORDS:
            raise ValueError("malformed v3 chunk record count %d" % count)
        records.extend(_read_chunk_v3(fh, count).iter_records())
        seen += count
    _check_count(header, seen)
    if fh.read(1):
        raise ValueError("trailing garbage after v3 end marker")
    return CFTrace(records=records,
                   total_instructions=header.total_instructions,
                   halted=header.halted, program_name=header.program_name)


def _read(fh):
    header = _parse_header(fh.readline())
    records = []
    lineno = 1
    for line in fh:
        lineno += 1
        line = line.strip()
        if not line:
            continue
        records.append(_parse_record(line, lineno))
    _check_count(header, len(records))
    return CFTrace(records=records,
                   total_instructions=header.total_instructions,
                   halted=header.halted, program_name=header.program_name)


def _check_count(header, seen):
    if header.records is not None and seen != header.records:
        raise ValueError(
            "trace declares %d records but file contains %d "
            "(truncated or tampered?)" % (header.records, seen))


def read_cf_header(path_or_file):
    """Read only the header of a trace file (any version)."""
    if hasattr(path_or_file, "read"):
        if _is_binary_file(path_or_file):
            return _read_header_v3(path_or_file)
        return _parse_header(path_or_file.readline())
    family, fh = _open_sniffed(path_or_file)
    with fh:
        if family == "binary":
            return _read_header_v3(fh)
        return _parse_header(fh.readline())


def open_cf_batches(path):
    """Open *path* for batch streaming: ``(header, batch_iterator)``.

    The iterator yields :class:`~repro.trace.batch.RecordBatch` without
    holding the whole trace in memory, validates the declared record
    count (raising :class:`ValueError` on truncation mid-stream), and
    closes the file when exhausted or garbage-collected.  v1/v2 text
    files are adapted into batches transparently.

    v3 files are **memory-mapped**: framing fields and compressed
    payloads are read as zero-copy views of the page cache, and each
    chunk decompresses straight into the batch's column views (see
    :func:`_read_chunk_v3`) -- the warm-cache replay path allocates one
    payload buffer per chunk and nothing else.
    """
    family, fh = _open_sniffed(path)
    try:
        if family == "binary":
            mapped = _mmap_reader(fh)
            if mapped is not None:
                fh = mapped
            header = _read_header_v3(fh)
            return header, _batches_v3(fh, header)
        header = _parse_header(fh.readline())
    except BaseException:
        fh.close()
        raise
    return header, iter_batches(_record_stream(fh, header),
                                CHUNK_RECORDS)


def open_cf_records(path):
    """Open *path* for streaming: ``(header, record_iterator)``.

    Like :func:`open_cf_batches` but yielding one :class:`CFRecord` at
    a time (the batch layer decodes them on the fly for v3).
    """
    header, batches = open_cf_batches(path)
    return header, _records_of(batches)


def _records_of(batches):
    for batch in batches:
        yield from batch.iter_records()


def _record_stream(fh, header):
    try:
        seen = 0
        lineno = 1
        for line in fh:
            lineno += 1
            line = line.strip()
            if not line:
                continue
            yield _parse_record(line, lineno)
            seen += 1
        _check_count(header, seen)
    finally:
        fh.close()


# -- string/bytes helpers ----------------------------------------------------

def dumps_cf_trace(trace, version=TRACE_FORMAT_VERSION):
    """Serialize to ``bytes`` (v3) or ``str`` (v1/v2) -- the round-trip
    helper for tests and pool workers."""
    if version == 3:
        buf = io.BytesIO()
    else:
        buf = io.StringIO()
    _write(trace, buf, version)
    return buf.getvalue()


def loads_cf_trace(data):
    """Inverse of :func:`dumps_cf_trace`; accepts ``str`` or any
    bytes-like buffer (``bytes``, ``memoryview``, a shared-memory
    segment's ``buf``).  Binary input is parsed zero-copy -- no view
    of *data* outlives the call."""
    if isinstance(data, str):
        return _read(io.StringIO(data))
    reader = _BufferReader(data)
    try:
        return _read_v3(reader)
    finally:
        reader.close()
