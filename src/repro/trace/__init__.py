"""Dynamic trace infrastructure (records, batches, statistics, IO)."""

from repro.trace.record import CFRecord, FullRecord
from repro.trace.batch import (
    NO_TARGET,
    FullBatch,
    RecordBatch,
    iter_batches,
)
from repro.trace.stream import CFTrace, FullTrace, clip, straight_line_runs
from repro.trace.stats import CFStats, basic_block_profile, collect_cf_stats
from repro.trace.io import (
    BatchTraceWriter,
    CFTraceWriter,
    TRACE_FORMAT_VERSION,
    TraceHeader,
    dump_cf_trace,
    dumps_cf_trace,
    load_cf_trace,
    loads_cf_trace,
    open_cf_batches,
    open_cf_records,
    read_cf_header,
)

__all__ = [
    "CFRecord",
    "FullRecord",
    "NO_TARGET",
    "FullBatch",
    "RecordBatch",
    "iter_batches",
    "CFTrace",
    "FullTrace",
    "clip",
    "straight_line_runs",
    "CFStats",
    "basic_block_profile",
    "collect_cf_stats",
    "BatchTraceWriter",
    "CFTraceWriter",
    "TRACE_FORMAT_VERSION",
    "TraceHeader",
    "dump_cf_trace",
    "dumps_cf_trace",
    "load_cf_trace",
    "loads_cf_trace",
    "open_cf_batches",
    "open_cf_records",
    "read_cf_header",
]
