"""Dynamic trace infrastructure (records, containers, statistics, IO)."""

from repro.trace.record import CFRecord, FullRecord
from repro.trace.stream import CFTrace, FullTrace, clip, straight_line_runs
from repro.trace.stats import CFStats, basic_block_profile, collect_cf_stats
from repro.trace.io import (
    CFTraceWriter,
    TRACE_FORMAT_VERSION,
    TraceHeader,
    dump_cf_trace,
    dumps_cf_trace,
    load_cf_trace,
    loads_cf_trace,
    open_cf_records,
    read_cf_header,
)

__all__ = [
    "CFRecord",
    "FullRecord",
    "CFTrace",
    "FullTrace",
    "clip",
    "straight_line_runs",
    "CFStats",
    "basic_block_profile",
    "collect_cf_stats",
    "CFTraceWriter",
    "TRACE_FORMAT_VERSION",
    "TraceHeader",
    "dump_cf_trace",
    "dumps_cf_trace",
    "load_cf_trace",
    "loads_cf_trace",
    "open_cf_records",
    "read_cf_header",
]
