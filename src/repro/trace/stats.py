"""Dynamic-trace statistics (instruction mix, branch behaviour).

These are validation aids: the workload suite uses them to check that a
synthetic benchmark has the control-flow character it claims (branch
density, taken ratio, backward-branch share) before the loop-level
statistics of the paper are even computed.
"""

from collections import Counter

from repro.isa.instructions import InstrKind


class CFStats:
    """Summary statistics over a control-flow trace."""

    def __init__(self, total_instructions=0):
        self.total_instructions = total_instructions
        self.by_kind = Counter()
        self.taken_branches = 0
        self.not_taken_branches = 0
        self.backward_taken = 0
        self.backward_not_taken = 0
        self.unique_branch_pcs = set()
        self.unique_backward_targets = set()

    @property
    def control_transfers(self):
        return sum(self.by_kind.values())

    @property
    def branch_count(self):
        return self.taken_branches + self.not_taken_branches

    @property
    def taken_ratio(self):
        total = self.branch_count
        return self.taken_branches / total if total else 0.0

    @property
    def backward_branch_share(self):
        """Share of branch executions that are backward."""
        total = self.branch_count
        if not total:
            return 0.0
        return (self.backward_taken + self.backward_not_taken) / total

    @property
    def control_density(self):
        if not self.total_instructions:
            return 0.0
        return self.control_transfers / self.total_instructions

    def as_dict(self):
        return {
            "total_instructions": self.total_instructions,
            "control_transfers": self.control_transfers,
            "branches": self.branch_count,
            "taken_ratio": self.taken_ratio,
            "backward_branch_share": self.backward_branch_share,
            "control_density": self.control_density,
            "static_branch_sites": len(self.unique_branch_pcs),
            "static_backward_targets": len(self.unique_backward_targets),
        }


def collect_cf_stats(cf_trace):
    """Compute :class:`CFStats` for a control-flow trace."""
    stats = CFStats(total_instructions=cf_trace.total_instructions)
    k_branch = int(InstrKind.BRANCH)
    for rec in cf_trace.records:
        stats.by_kind[rec.kind] += 1
        if rec.kind == k_branch:
            stats.unique_branch_pcs.add(rec.pc)
            backward = rec.target is not None and rec.target <= rec.pc
            if rec.taken:
                stats.taken_branches += 1
                if backward:
                    stats.backward_taken += 1
            else:
                stats.not_taken_branches += 1
                if backward:
                    stats.backward_not_taken += 1
            if backward:
                stats.unique_backward_targets.add(rec.target)
        elif rec.kind == int(InstrKind.JUMP):
            if rec.target is not None and rec.target <= rec.pc:
                stats.unique_backward_targets.add(rec.target)
    return stats


def basic_block_profile(cf_trace):
    """Histogram of straight-line run lengths between control transfers."""
    histogram = Counter()
    prev_seq = -1
    for rec in cf_trace.records:
        histogram[rec.seq - prev_seq] += 1
        prev_seq = rec.seq
    return histogram
