"""Bulk columnar kernels over :class:`~repro.trace.batch.RecordBatch`
columns.

The state-free hot consumers of the record stream -- the branch
predictors and the ``classcost`` timing model -- need the same handful
of elementwise column operations: "which records are backward taken
transfers", "which records are conditional branches", "what does each
instruction class cost".  This module is that inventory, computed once
per batch in bulk instead of once per record in the consumer's inner
loop.  (Stateful consumers -- the CLS and the loop detector it drives
-- use fused scalar loops over the same columns instead; see the note
below.)

Two backends produce bit-identical results:

* **numpy**, when importable (``pip install .[fast]``): columns are
  wrapped zero-copy with :func:`numpy.frombuffer` and the masks are a
  few vector ops per batch;
* **stdlib**, otherwise: plain ``array``/``bytes`` loops.  Slower, but
  the full analysis pipeline stays correct without any third-party
  dependency -- the equivalence tests run both backends against each
  other.

Capability detection is *eager*: numpy is probed once at import with
the exact operations the kernels rely on, and the choice is exposed as
:data:`HAVE_NUMPY` / :func:`backend`.  Setting the environment
variable ``REPRO_NO_NUMPY`` (to any non-empty value) forces the stdlib
backend -- that is how CI runs the no-numpy leg of the matrix on an
image that has numpy installed.

Consumers with a tuned scalar loop of their own check
:data:`HAVE_NUMPY` and only take the kernel-driven path when the
vector backend is live; a kernel call in stdlib mode is correct but
adds a pass over the batch that a fused scalar loop avoids.
"""

import os
from array import array

from repro.isa.instructions import InstrKind
from repro.obs import collector as _obs

_K_BRANCH = int(InstrKind.BRANCH)
_K_JUMP = int(InstrKind.JUMP)
_K_IJUMP = int(InstrKind.IJUMP)
_K_RET = int(InstrKind.RET)


def _detect_numpy():
    """Import numpy and probe the operations the kernels depend on."""
    if os.environ.get("REPRO_NO_NUMPY"):
        return None
    try:
        import numpy
    except ImportError:
        return None
    try:
        probe = numpy.frombuffer(array("q", [3, 1, 2]),
                                 dtype=numpy.int64)
        small = numpy.frombuffer(array("b", [0, 1, 1]),
                                 dtype=numpy.int8)
        mask = (probe <= 2) & (small != 0)
        if numpy.flatnonzero(mask).tolist() != [1, 2]:
            return None
        if numpy.cumsum(probe).tolist() != [3, 4, 6]:
            return None
    except Exception:
        return None
    return numpy


_np = _detect_numpy()

#: True when the numpy backend is live for this process.
HAVE_NUMPY = _np is not None


def backend():
    """``"numpy"`` or ``"stdlib"`` -- whichever is active."""
    return "numpy" if HAVE_NUMPY else "stdlib"


def _count(name):
    """Per-kernel invocation counter (``kernel.<fn>``), a no-op unless
    an obs collector is active.  Kernels run once per batch, not per
    record, so the disabled check is far off the per-record path."""
    collector = _obs.active()
    if collector is not None:
        collector.add("kernel." + name)


# -- column views ------------------------------------------------------------

def _i64(column):
    """Zero-copy numpy view of a signed-64-bit column (numpy only)."""
    return _np.frombuffer(column, dtype=_np.int64)


def _i8(column):
    """Zero-copy numpy view of a signed-byte column (numpy only)."""
    return _np.frombuffer(column, dtype=_np.int8)


# There is deliberately no CLS-walk kernel here.  The CurrentLoopStack
# is a stateful stack machine: every record's effect depends on the
# stack the previous record left behind, so a vectorized candidate
# walk ends up re-deriving per-record verdicts against ever-changing
# stack bounds -- measured ~3x slower than the fused scalar column
# loop in CurrentLoopStack.process_batch on real traces (only ~10% of
# control transfers are skippable, and exit-rule verdict vectors go
# stale on every push/pop/B-update).  Kernels belong here only for
# state-free bulk work: masks, gathers, run-length summaries, cost
# columns.


# -- branch predictor columns ------------------------------------------------

def backward_branch_mask(batch):
    """``bytes`` mask: 1 where the record is a conditional branch with
    a backward (or self) target, taken or not."""
    _count("backward_branch_mask")
    n = len(batch)
    if n == 0:
        return b""
    if HAVE_NUMPY:
        targets = _i64(batch.targets)
        mask = ((_i8(batch.kinds) == _K_BRANCH) & (targets >= 0)
                & (targets <= _i64(batch.pcs)))
        return mask.astype(_np.uint8).tobytes()
    out = bytearray(n)
    k_branch = _K_BRANCH
    i = 0
    for pc, kind, target in zip(batch.pcs, batch.kinds, batch.targets):
        if kind == k_branch and 0 <= target <= pc:
            out[i] = 1
        i += 1
    return bytes(out)


def taken_mask(batch):
    """``bytes`` mask: 1 where the record committed taken."""
    _count("taken_mask")
    n = len(batch)
    if n == 0:
        return b""
    if HAVE_NUMPY:
        return (_i8(batch.takens) != 0).astype(_np.uint8).tobytes()
    return bytes(bytearray(1 if taken else 0 for taken in batch.takens))


def branch_columns(batch):
    """``(pcs, takens)`` of the conditional-branch records only, as
    plain lists of Python ints (``takens`` is 0/1), in stream order."""
    _count("branch_columns")
    n = len(batch)
    if n == 0:
        return [], []
    if HAVE_NUMPY:
        idx = _np.flatnonzero(_i8(batch.kinds) == _K_BRANCH)
        if not idx.size:
            return [], []
        return (_i64(batch.pcs)[idx].tolist(),
                _i8(batch.takens)[idx].tolist())
    pcs = []
    takens = []
    k_branch = _K_BRANCH
    for pc, kind, taken in zip(batch.pcs, batch.kinds, batch.takens):
        if kind == k_branch:
            pcs.append(pc)
            takens.append(1 if taken else 0)
    return pcs, takens


def closing_branch_pcs(batch):
    """The set of pcs observed as *taken backward* conditional branches
    in this batch (the loop-closing candidates of the branch-prediction
    baseline)."""
    _count("closing_branch_pcs")
    n = len(batch)
    if n == 0:
        return set()
    if HAVE_NUMPY:
        targets = _i64(batch.targets)
        pcs = _i64(batch.pcs)
        mask = ((_i8(batch.kinds) == _K_BRANCH)
                & (_i8(batch.takens) != 0)
                & (targets >= 0) & (targets <= pcs))
        return set(pcs[mask].tolist())
    out = set()
    k_branch = _K_BRANCH
    for pc, kind, taken, target in zip(batch.pcs, batch.kinds,
                                       batch.takens, batch.targets):
        if kind == k_branch and taken and 0 <= target <= pc:
            out.add(pc)
    return out


# -- classcost prefix sums ---------------------------------------------------

def classcost_extras(batch, cost_by_kind, other, total):
    """The ``classcost`` prefix-sum increments for one batch.

    *cost_by_kind* maps instruction-class ints to cycle costs; *other*
    is the straight-line rate; *total* the running extra-cost total.
    Returns ``(seqs, extras, new_total)`` -- the seq column values of
    the records whose class costs differ from *other* and the running
    cumulative extra cost after each, ready to extend the model's
    prefix arrays.
    """
    _count("classcost_extras")
    n = len(batch)
    if n == 0:
        return [], [], total
    if HAVE_NUMPY:
        table = _np.zeros(max(cost_by_kind) + 1, dtype=_np.int64)
        for kind, cost in cost_by_kind.items():
            table[kind] = cost
        deltas = table[_i8(batch.kinds)] - other
        idx = _np.flatnonzero(deltas)
        if not idx.size:
            return [], [], total
        extras = _np.cumsum(deltas[idx]) + total
        return (_i64(batch.seqs)[idx].tolist(), extras.tolist(),
                int(extras[-1]))
    seqs = []
    extras = []
    for seq, kind in zip(batch.seqs, batch.kinds):
        delta = cost_by_kind[kind] - other
        if delta:
            total += delta
            seqs.append(seq)
            extras.append(total)
    return seqs, extras, total


# -- per-pc run-length grouping ----------------------------------------------

def per_pc_runs(pcs, values):
    """Group parallel ``(pc, value)`` sequences into per-pc run-length
    lists: ``{pc: [(value, run_length), ...]}`` in first-seen pc order,
    runs in occurrence order.

    The run-length view of a pc's taken history is what makes saturating
    per-pc predictors (bimodal) O(#runs) instead of O(#occurrences); it
    is also a compact per-branch behaviour summary for characterization.
    """
    _count("per_pc_runs")
    out = {}
    if HAVE_NUMPY and not isinstance(pcs, list):
        pcs = pcs.tolist() if hasattr(pcs, "tolist") else list(pcs)
        values = values.tolist() if hasattr(values, "tolist") \
            else list(values)
    for pc, value in zip(pcs, values):
        runs = out.get(pc)
        if runs is None:
            out[pc] = [(value, 1)]
        else:
            last_value, count = runs[-1]
            if last_value == value:
                runs[-1] = (value, count + 1)
            else:
                runs.append((value, 1))
    return out
