"""Trace containers and streaming utilities."""

from repro.isa.instructions import InstrKind
from repro.trace.record import CFRecord


class CFTrace:
    """A control-flow trace: records plus run metadata.

    ``records`` holds one :class:`~repro.trace.record.CFRecord` per
    executed control transfer, in execution order.  ``total_instructions``
    is the number of *all* executed instructions (straight-line ones are
    implicit between records).
    """

    def __init__(self, records, total_instructions, halted,
                 program_name="program"):
        self.records = records
        self.total_instructions = total_instructions
        self.halted = halted
        self.program_name = program_name

    def __iter__(self):
        return iter(self.records)

    def __len__(self):
        return len(self.records)

    @property
    def control_fraction(self):
        """Fraction of executed instructions that transfer control."""
        if self.total_instructions == 0:
            return 0.0
        return len(self.records) / self.total_instructions

    def backward_records(self):
        """Iterate taken-or-not backward branch/jump records."""
        for rec in self.records:
            if rec.target is not None and rec.target <= rec.pc:
                yield rec

    def validate(self):
        """Check internal consistency; raises ``ValueError`` on violation.

        Invariants: sequence numbers strictly increase, every record's
        ``seq`` is below ``total_instructions``, and consecutive records
        are linked by straight-line execution (the next record's pc is
        reachable from the previous record's successor by falling
        through, i.e. ``next.pc >= prev.next_pc`` and the gap equals the
        pc distance).
        """
        prev = None
        for rec in self.records:
            if rec.seq >= self.total_instructions:
                raise ValueError("record %r beyond trace length" % (rec,))
            if prev is not None:
                if rec.seq <= prev.seq:
                    raise ValueError("non-monotonic seq at %r" % (rec,))
                if prev.kind != int(InstrKind.HALT):
                    start = prev.next_pc
                    gap = rec.seq - prev.seq - 1
                    if rec.pc - start != gap:
                        raise ValueError(
                            "straight-line gap mismatch between %r and %r"
                            % (prev, rec))
            prev = rec
        return True


class FullTrace:
    """A full per-instruction trace (see :class:`FullRecord`)."""

    def __init__(self, records, total_instructions, halted,
                 program_name="program"):
        self.records = records
        self.total_instructions = total_instructions
        self.halted = halted
        self.program_name = program_name

    def __iter__(self):
        return iter(self.records)

    def __len__(self):
        return len(self.records)

    def control_flow(self):
        """Project to a :class:`CFTrace` (for the shared detector path)."""
        records = [rec.as_cf() for rec in self.records
                   if rec.kind != int(InstrKind.OTHER)]
        return CFTrace(records=records,
                       total_instructions=self.total_instructions,
                       halted=self.halted, program_name=self.program_name)


def straight_line_runs(cf_trace):
    """Yield ``(start_pc, length)`` straight-line runs between records.

    Includes the implicit run before the first control transfer.  Useful
    for instruction-mix statistics without a full trace.
    """
    prev_next = None
    prev_seq = -1
    for rec in cf_trace.records:
        start = prev_next
        length = rec.seq - prev_seq - 1
        if length > 0 and start is not None:
            yield start, length
        prev_next = rec.next_pc
        prev_seq = rec.seq


def clip(cf_trace, max_instructions):
    """Return a trace truncated to the first *max_instructions*."""
    if max_instructions >= cf_trace.total_instructions:
        return cf_trace
    records = [r for r in cf_trace.records if r.seq < max_instructions]
    return CFTrace(records=records, total_instructions=max_instructions,
                   halted=False, program_name=cf_trace.program_name)
