"""The sweep orchestrator: shard, execute, checkpoint, resume.

:func:`run_sweep` expands a :class:`~repro.sweep.spec.SweepSpec` into
content-keyed cells, asks the store which are already done, and shards
only the missing ones across a process pool -- grouped by workload, so
each worker performs one index build per workload (served from the
trace cache when warm) however many cells that workload contributes.
Completed groups are checkpointed into the store *as they stream in*
(one committed transaction each), which is the whole resume story:

* interrupt mid-sweep, rerun the same spec, and only the cells missing
  from the store execute (a completed sweep reruns as 0 cells);
* a cell that raises is recorded as a ``failed`` row -- with the error
  message -- and the sweep carries on; failed rows are retried on the
  next submission;
* ``KeyboardInterrupt`` drains any already-finished worker results
  into the store before propagating, so Ctrl-C loses at most the
  groups still executing.

Workers reuse the derived-results store under the same keys as the
direct experiments (:func:`~repro.analysis.passes.shared_simulate`),
so a sweep following a ``runner sensitivity`` run -- or vice versa --
recomputes nothing.
"""

import json
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, \
    wait

from repro.obs import collector as obs
from repro.sweep.spec import KIND_LOOPSTATS, KIND_SIM, expand_cells


class SweepRunStats:
    """What one :func:`run_sweep` call actually did."""

    __slots__ = ("sweep_id", "planned", "skipped", "executed", "failed",
                 "checkpoints")

    def __init__(self, sweep_id, planned, skipped):
        self.sweep_id = sweep_id
        self.planned = planned      #: cells the grid names
        self.skipped = skipped      #: already stored as done
        self.executed = 0           #: computed (and stored) this run
        self.failed = 0             #: stored as failed rows this run
        self.checkpoints = 0        #: store commits performed

    def __repr__(self):
        return ("SweepRunStats(%s: planned=%d, skipped=%d, "
                "executed=%d, failed=%d)"
                % (self.sweep_id, self.planned, self.skipped,
                   self.executed, self.failed))


def _cell_descriptor(cell):
    """The picklable (kind, timing, policy, tus, key) tuple a worker
    needs to execute one cell."""
    return (cell.key, cell.kind, cell.timing, cell.policy, cell.tus)


def _base_row(cell):
    return {
        "cell_key": cell.key, "trace_key": cell.trace_key,
        "workload": cell.workload, "scale": cell.scale,
        "max_instructions": cell.max_instructions,
        "cls_capacity": cell.cls_capacity, "kind": cell.kind,
        "timing": cell.timing, "policy": cell.policy, "tus": cell.tus,
    }


def run_workload_cells(name, scale, max_instructions, cls_capacity,
                       cache_dir, descriptors, on_row=None):
    """Execute every cell of one workload; returns result row dicts.

    Module-level so the process pool can pickle it.  Builds the loop
    index once (trace cache and derived store apply when *cache_dir*
    is set), then prices the workload's whole simulation config group
    against it in one fused :func:`~repro.core.speculation.grid.
    simulate_grid` call (the per-cell engine remains as the fallback,
    both for configs the grid cannot fuse and for a grid call that
    fails wholesale).  A cell that raises becomes a ``failed`` row; an
    index build that raises fails every cell of the workload (the
    caller records that).

    *on_row*, when given, is called with each finished row dict as it
    completes -- the per-cell checkpointing seam (only useful inline;
    a pool worker has nobody to stream to).
    """
    from repro.core.loopstats import compute_loop_statistics, \
        loop_coverage
    from repro.core.speculation import simulate, simulate_grid
    from repro.pipeline import PipelineConfig, SimulationSession
    from repro.pipeline.derived import DerivedCache
    from repro.sweep.spec import sim_cell_suffix
    from repro.timing import make_timing

    session = SimulationSession(PipelineConfig(
        workloads=(name,), scale=scale,
        max_instructions=max_instructions, cls_capacity=cls_capacity,
        cache_dir=cache_dir))
    index = session.index(name)
    derived = None
    if cache_dir is not None:
        from repro.pipeline.cache import TraceCache
        workload = session.workloads[0]
        derived = DerivedCache(cache_dir).store(TraceCache.key(
            name, scale, session.config.limit_for(workload),
            session._fingerprint(name)))

    # Pre-price the simulation cells through one fused grid call:
    # restore per cell from the derived store, batch the misses.  Any
    # cell this pass cannot place (bad timing spec, a grid call that
    # raises) simply stays out of sim_results and the per-cell loop
    # below recomputes it -- attributing errors cell by cell exactly
    # as before.
    sim_results = {}
    sim_pending = []
    for key, kind, timing, policy, tus in descriptors:
        if kind != KIND_SIM:
            continue
        try:
            model = None if timing == "ideal" else make_timing(timing)
            dkey = sim_cell_suffix(
                tus, policy, None if model is None else model.key(),
                cls_capacity)
            result = _restore_sim(derived, dkey)
        except Exception:
            continue
        if result is not None:
            sim_results[key] = result
        else:
            sim_pending.append((key, dkey, (tus, policy, model)))
    if sim_pending:
        try:
            computed = simulate_grid(
                index, [config for _, _, config in sim_pending],
                name=name)
        except Exception:
            pass
        else:
            if derived is not None:
                derived.put_cells(
                    (dkey, result.state())
                    for (_, dkey, _), result in zip(sim_pending,
                                                    computed))
            for (key, _, _), result in zip(sim_pending, computed):
                sim_results[key] = result

    rows = []
    for key, kind, timing, policy, tus in descriptors:
        row = {"cell_key": key, "status": "done", "error": None,
               "tpc": None, "hit_ratio": None, "speedup": None,
               "overhead_cycles": None, "detail": None}
        try:
            if kind == KIND_SIM:
                result = sim_results.get(key)
                if result is None:
                    model = None if timing == "ideal" else \
                        make_timing(timing)
                    dkey = sim_cell_suffix(
                        tus, policy,
                        None if model is None else model.key(),
                        cls_capacity)
                    result = _restore_sim(derived, dkey)
                    if result is None:
                        result = simulate(index, num_tus=tus,
                                          policy=policy, name=name,
                                          timing=model)
                        if derived is not None:
                            derived.put(dkey, result.state())
                row.update(
                    tpc=result.tpc, hit_ratio=result.hit_ratio,
                    speedup=result.speedup_bound,
                    overhead_cycles=result.overhead_cycles,
                    detail=json.dumps(result.state(), sort_keys=True))
            elif kind == KIND_LOOPSTATS:
                stats = compute_loop_statistics(index, name)
                row["detail"] = json.dumps(
                    {"stats": stats.state(),
                     "coverage": loop_coverage(index)},
                    sort_keys=True)
            else:
                raise ValueError("unknown cell kind %r" % kind)
        except Exception as exc:
            row["status"] = "failed"
            row["error"] = "%s: %s" % (type(exc).__name__, exc)
        rows.append(row)
        if on_row is not None:
            on_row(row)
    if derived is not None:
        derived.flush()
    return name, rows


def _restore_sim(derived, dkey):
    from repro.core.speculation.metrics import SpeculationResult

    if derived is None:
        return None
    state = derived.get(dkey)
    if state is None:
        return None
    try:
        return SpeculationResult.from_state(state)
    except (KeyError, TypeError):
        return None


def run_sweep(spec, store, jobs=1, cache_dir=None, progress=None,
              dry_run=False, checkpoint="group"):
    """Execute *spec* into *store*; returns :class:`SweepRunStats`.

    *progress*, when given, is called as ``progress(workload,
    executed_so_far, total_missing)`` after each checkpoint commit --
    the fault-injection seam the resume tests use, and the CLI's
    progress line.  *dry_run* plans and registers the sweep but
    executes nothing.

    *checkpoint* picks the commit granularity: ``"group"`` (default)
    commits one transaction per workload group, ``"cell"`` one per
    cell.  Cell granularity matters for very long workloads: inline
    (``jobs <= 1``) each cell commits the moment it is computed, so an
    interrupt mid-workload loses at most the cell in flight; pooled
    workers still return whole groups (results cross the process
    boundary per future), so there it only narrows the commit
    transactions.  Either way the stored rows are identical --
    resume exactness does not depend on the granularity.

    With an obs collector active the whole run is a ``sweep`` span,
    each store commit a ``sweep.checkpoint`` child span, and the run's
    plan/skip/execute/fail/checkpoint tallies land in the
    ``sweep.cells_*`` / ``sweep.checkpoints`` counters.
    """
    if checkpoint not in ("group", "cell"):
        raise ValueError("checkpoint must be 'group' or 'cell', got %r"
                         % (checkpoint,))
    with obs.span("sweep", experiment=spec.experiment, jobs=jobs):
        stats = _run_sweep(spec, store, jobs, cache_dir, progress,
                           dry_run, checkpoint)
    collector = obs.active()
    if collector is not None:
        collector.add("sweep.cells_planned", stats.planned)
        collector.add("sweep.cells_resumed", stats.skipped)
        collector.add("sweep.cells_executed", stats.executed)
        collector.add("sweep.cells_failed", stats.failed)
        collector.add("sweep.checkpoints", stats.checkpoints)
    return stats


def _run_sweep(spec, store, jobs, cache_dir, progress, dry_run,
               checkpoint="group"):
    cells = expand_cells(spec)
    sweep_id = store.record_sweep(spec, [c.key for c in cells])
    done = store.done_keys([c.key for c in cells])
    missing = [c for c in cells if c.key not in done]
    stats = SweepRunStats(sweep_id, len(cells), len(cells) - len(missing))
    if dry_run or not missing:
        return stats

    # Shard by workload: one task per workload keeps the expensive part
    # (index build) amortized across that workload's whole cell set.
    groups = {}
    order = []
    for cell in missing:
        if cell.workload not in groups:
            groups[cell.workload] = []
            order.append(cell.workload)
        groups[cell.workload].append(cell)
    by_cell = {c.key: c for c in missing}

    def commit(name, rows):
        if checkpoint == "cell":
            # One transaction per cell; same rows, narrower commits.
            batches = [[row] for row in rows]
        else:
            batches = [rows]
        for batch in batches:
            with obs.span("sweep.checkpoint", workload=name,
                          rows=len(batch)):
                store.put_cells(batch)
            stats.checkpoints += 1
        if progress is not None:
            progress(name, stats.executed + stats.failed, len(missing))

    def absorb(name, result_rows):
        rows = []
        for partial in result_rows:
            row = _base_row(by_cell[partial["cell_key"]])
            row.update(partial)
            rows.append(row)
            if partial["status"] == "failed":
                stats.failed += 1
            else:
                stats.executed += 1
        commit(name, rows)

    def task_args(name):
        return (name, spec.scale, spec.max_instructions,
                spec.cls_capacity, cache_dir,
                [_cell_descriptor(c) for c in groups[name]])

    def fail_group(name, exc, skip_keys=()):
        rows = []
        for cell in groups[name]:
            if cell.key in skip_keys:
                continue
            row = _base_row(cell)
            row.update(status="failed", tpc=None, hit_ratio=None,
                       speedup=None, overhead_cycles=None, detail=None,
                       error="%s: %s" % (type(exc).__name__, exc))
            rows.append(row)
            stats.failed += 1
        commit(name, rows)

    if jobs <= 1 or len(order) <= 1:
        for name in order:
            committed = set()
            on_row = None
            if checkpoint == "cell":
                # Stream: each finished cell commits immediately, so
                # an interrupt mid-workload loses at most the cell in
                # flight.
                def on_row(partial, name=name, committed=committed):
                    row = _base_row(by_cell[partial["cell_key"]])
                    row.update(partial)
                    if partial["status"] == "failed":
                        stats.failed += 1
                    else:
                        stats.executed += 1
                    committed.add(partial["cell_key"])
                    commit(name, [row])
            try:
                _, rows = run_workload_cells(*task_args(name),
                                             on_row=on_row)
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                # Index build (or another per-workload stage) died:
                # record every not-yet-committed cell of the group as
                # failed.
                fail_group(name, exc, skip_keys=committed)
            else:
                if on_row is None:
                    absorb(name, rows)
        return stats

    with ProcessPoolExecutor(max_workers=min(jobs, len(order))) as pool:
        futures = {pool.submit(run_workload_cells, *task_args(name)):
                   name for name in order}
        pending = set(futures)
        try:
            while pending:
                finished, pending = wait(pending,
                                         return_when=FIRST_COMPLETED)
                for future in finished:
                    name = futures[future]
                    try:
                        _, rows = future.result()
                    except Exception as exc:
                        fail_group(name, exc)
                    else:
                        absorb(name, rows)
        except KeyboardInterrupt:
            # Flush whatever already finished, then propagate; the
            # CLI turns this into exit code 130.
            for future in pending:
                future.cancel()
            for future in [f for f in pending if f.done()
                           and not f.cancelled()]:
                name = futures[future]
                try:
                    _, rows = future.result()
                except Exception:
                    continue
                absorb(name, rows)
            pool.shutdown(wait=False, cancel_futures=True)
            raise
    return stats
