"""``runner sweep`` / ``runner query``: the store-backed front end.

``runner sweep`` submits an experiment grid to the orchestrator;
resubmitting the same grid resumes it (only missing cells execute, a
completed sweep reruns as 0 cells).  ``runner query`` reads the store
back: raw cell listings, group-by aggregates, and full experiment
reports rebuilt byte-identical to the direct experiments.  See
``docs/SWEEPS.md``::

    runner sweep sensitivity --workloads swim,go --spawn-cost 0,8
    runner sweep characterize --profile deep-nest --count 25
    runner sweep --resume 1f8a0c93d2e47b56
    runner query --list
    runner query --sweep 1f8a --report
    runner query --workloads swim --status failed
    runner query --group-by policy --format csv
"""

import argparse
import os
import sys

from repro.sweep.orchestrator import run_sweep
from repro.sweep.spec import SWEEP_EXPERIMENTS, SweepSpec
from repro.sweep.store import SweepStore, SweepStoreError, \
    default_store_dir


def _add_store_arg(parser):
    parser.add_argument("--store", default=default_store_dir(),
                        metavar="DIR",
                        help="sweep result store (default %(default)s)")


def _parse_names(option, spec, parser):
    names = tuple(n.strip() for n in spec.split(",") if n.strip())
    if not names:
        parser.error("%s selected nothing" % option)
    return names


def _parse_ints(option, spec, parser):
    try:
        values = tuple(int(v.strip()) for v in spec.split(",")
                       if v.strip())
    except ValueError:
        parser.error("%s expects comma-separated integers, got %r"
                     % (option, spec))
    if not values:
        parser.error("%s selected nothing" % option)
    return values


def _resolve_workloads(args, experiment, parser):
    """The spec's workload tuple, mirroring the runner's rules:
    ``--workloads`` wins, ``--profile`` (or characterize's default)
    selects a generated synthetic sweep, every other experiment
    defaults to the full analog suite."""
    from repro.workloads import SUITE_ORDER, get as get_workload
    from repro.workloads.synthetic import sweep_names

    if args.workloads is not None:
        if args.profile is not None:
            parser.error("--profile and --workloads are mutually "
                         "exclusive")
        if args.seed is not None or args.count is not None:
            parser.error("--seed/--count apply to a synthetic sweep "
                         "only")
        names = _parse_names("--workloads", args.workloads, parser)
        for name in names:
            try:
                get_workload(name)
            except KeyError:
                parser.error("unknown workload %r (see runner --list)"
                             % name)
        return names
    if args.profile is not None or experiment == "characterize":
        try:
            names = sweep_names(args.profile or "baseline",
                                1 if args.seed is None else args.seed,
                                10 if args.count is None else args.count)
            for name in names:
                get_workload(name)      # resolve + register up front
        except (KeyError, ValueError) as exc:
            parser.error(str(exc))
        return tuple(names)
    if args.seed is not None or args.count is not None:
        parser.error("--seed/--count apply to a synthetic sweep only "
                     "(use --profile)")
    return tuple(SUITE_ORDER)


def _build_spec(args, parser):
    from repro.experiments import characterize, figure7, sensitivity

    experiment = args.experiment
    sens_flags = [name for name, value in
                  (("--spawn-cost", args.spawn_cost),
                   ("--squash-cost", args.squash_cost),
                   ("--promote-cost", args.promote_cost))
                  if value is not None]
    if experiment != "sensitivity" and sens_flags:
        parser.error("%s appl%s to sensitivity sweeps only"
                     % (", ".join(sens_flags),
                        "ies" if len(sens_flags) == 1 else "y"))
    if experiment not in ("sensitivity", "figure6", "figure7") \
            and args.tus is not None:
        parser.error("--tus applies to sensitivity/figure6/figure7 "
                     "sweeps only")
    if experiment not in ("characterize", "table2") \
            and args.num_tus is not None:
        parser.error("--num-tus applies to characterize/table2 sweeps "
                     "only")
    if experiment in ("figure6", "table2") \
            and args.policies is not None:
        parser.error("%s runs a fixed policy; drop --policies"
                     % experiment)

    kwargs = {
        "experiment": experiment,
        "workloads": _resolve_workloads(args, experiment, parser),
        "scale": args.scale,
        "cls_capacity": args.cls_capacity,
        "max_instructions": args.max_instructions,
    }
    if args.policies is not None:
        kwargs["policies"] = _parse_names("--policies", args.policies,
                                          parser)
    elif experiment == "characterize":
        kwargs["policies"] = characterize.POLICIES
    elif experiment == "figure7":
        kwargs["policies"] = figure7.POLICIES
    else:
        # figure6/table2 ignore the policies axis (fixed policy);
        # the sensitivity default keeps their spec digests stable.
        kwargs["policies"] = sensitivity.POLICIES
    if experiment == "sensitivity":
        if args.spawn_cost is not None:
            kwargs["spawn_costs"] = _parse_ints(
                "--spawn-cost", args.spawn_cost, parser)
        if args.tus is not None:
            kwargs["tu_counts"] = _parse_ints("--tus", args.tus, parser)
        if args.squash_cost is not None:
            kwargs["squash_cost"] = args.squash_cost
        if args.promote_cost is not None:
            kwargs["promote_cost"] = args.promote_cost
    elif experiment in ("figure6", "figure7"):
        if args.tus is not None:
            kwargs["tu_counts"] = _parse_ints("--tus", args.tus, parser)
    elif args.num_tus is not None:
        kwargs["num_tus"] = args.num_tus
    try:
        return SweepSpec(**kwargs)
    except ValueError as exc:
        parser.error(str(exc))


def sweep_main(argv=None):
    """Entry point of ``runner sweep ...``."""
    from repro.pipeline import default_cache_dir

    parser = argparse.ArgumentParser(
        prog="runner sweep",
        description="Submit (or resume) an experiment grid into the "
                    "sharded, resumable sweep store.")
    parser.add_argument("experiment", nargs="?",
                        choices=SWEEP_EXPERIMENTS,
                        help="grid to run (omit with --resume)")
    parser.add_argument("--resume", default=None, metavar="ID",
                        help="re-execute a stored sweep's missing/"
                             "failed cells (unique id prefix)")
    parser.add_argument("--workloads", default=None, metavar="A,B,...")
    parser.add_argument("--profile", default=None, metavar="NAME",
                        help="sweep a generated synthetic profile "
                             "(characterize default: baseline)")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--count", type=int, default=None)
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--cls-capacity", type=int, default=16)
    parser.add_argument("--max-instructions", type=int, default=None)
    parser.add_argument("--spawn-cost", default=None, metavar="N,...")
    parser.add_argument("--tus", default=None, metavar="N,...")
    parser.add_argument("--policies", default=None, metavar="P,...")
    parser.add_argument("--squash-cost", type=int, default=None,
                        metavar="N")
    parser.add_argument("--promote-cost", type=int, default=None,
                        metavar="N")
    parser.add_argument("--num-tus", type=int, default=None,
                        metavar="N",
                        help="characterize/table2 sweeps: TUs per "
                             "policy run (default 4)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1)")
    parser.add_argument("--checkpoint", choices=("group", "cell"),
                        default="group",
                        help="store commit granularity: one "
                             "transaction per workload group "
                             "(default) or per cell; with --jobs 1, "
                             "cell granularity also commits each cell "
                             "the moment it is computed")
    parser.add_argument("--cache-dir", default=default_cache_dir())
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the trace/derived caches (cells "
                             "recompute from scratch)")
    parser.add_argument("--dry-run", action="store_true",
                        help="plan and register the sweep without "
                             "executing cells")
    parser.add_argument("--metrics", default=None, metavar="PATH",
                        help="write a run manifest to PATH (summary "
                             "JSON + .jsonl event stream)")
    _add_store_arg(parser)
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    from repro.obs import ProgressLine, RunObserver

    cache_dir = None if args.no_cache else args.cache_dir
    observer = RunObserver(
        metrics_path=args.metrics,
        argv=["runner", "sweep"]
        + list(sys.argv[1:] if argv is None else argv),
        command="sweep", copy_dirs=(args.store, cache_dir))
    store = SweepStore(args.store)
    line = None
    try:
        with observer:
            if args.resume is not None:
                if args.experiment is not None \
                        or args.workloads is not None \
                        or args.profile is not None:
                    parser.error("--resume re-executes a stored grid; "
                                 "do not combine it with grid flags")
                spec = store.spec_for(args.resume)
            else:
                if args.experiment is None:
                    parser.error("name an experiment (%s) or use "
                                 "--resume"
                                 % "|".join(SWEEP_EXPERIMENTS))
                spec = _build_spec(args, parser)

            def progress(name, finished, total):
                # On an interactive stderr the live cells line replaces
                # the per-checkpoint stdout chatter; piped runs keep
                # the historical lines (and no control characters).
                nonlocal line
                if line is None:
                    line = ProgressLine(total)
                line.update(finished)
                if not line.enabled:
                    print("[%s stored, %d/%d cell(s)]"
                          % (name, finished, total))

            stats = run_sweep(spec, store, jobs=args.jobs,
                              cache_dir=cache_dir, progress=progress,
                              dry_run=args.dry_run,
                              checkpoint=args.checkpoint)
    except SweepStoreError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    finally:
        if line is not None:
            line.close()
        store.close()
    print("sweep %s: %s over %d workload(s), %d cell(s)"
          % (stats.sweep_id, spec.experiment, len(spec.workloads),
             stats.planned))
    print("store: %s" % args.store)
    print("planned %d, skipped %d, executed %d, failed %d"
          % (stats.planned, stats.skipped, stats.executed,
             stats.failed))
    observer.finalize(extra_meta={
        "sweep_id": stats.sweep_id, "experiment": spec.experiment,
        "planned": stats.planned, "skipped": stats.skipped,
        "executed": stats.executed, "failed": stats.failed})
    if args.dry_run:
        print("dry run: no cells executed")
    elif stats.failed:
        print("%d cell(s) failed; inspect with 'runner query --store "
              "%s --status failed' and resubmit to retry"
              % (stats.failed, args.store))
    elif stats.skipped == stats.planned:
        print("sweep already complete; query it with 'runner query "
              "--store %s --sweep %s --report'"
              % (args.store, stats.sweep_id))
    return 0


def query_main(argv=None):
    """Entry point of ``runner query ...``."""
    from repro.experiments.runner import _emit
    from repro.sweep.query import GROUP_KEYS, cell_listing, \
        grouped_listing, sweep_overview, sweep_report

    parser = argparse.ArgumentParser(
        prog="runner query",
        description="Filter, aggregate, and report results from the "
                    "sweep store.")
    parser.add_argument("--sweep", default=None, metavar="ID",
                        help="scope to one sweep (unique id prefix; "
                             "default for --report: the most recently "
                             "updated sweep)")
    parser.add_argument("--report", action="store_true",
                        help="rebuild the sweep's experiment report "
                             "(byte-identical to the direct run)")
    parser.add_argument("--list", action="store_true",
                        help="list stored sweeps")
    parser.add_argument("--workloads", default=None, metavar="A,B,...")
    parser.add_argument("--policies", default=None, metavar="P,...")
    parser.add_argument("--tus", default=None, metavar="N,...")
    parser.add_argument("--timing", default=None, metavar="T,...",
                        help="canonical timing spec filter, e.g. "
                             "ideal or overhead:spawn=8,squash=0,"
                             "promote=0")
    parser.add_argument("--kind", default=None,
                        choices=("sim", "loopstats"))
    parser.add_argument("--status", default=None,
                        choices=("done", "failed"))
    parser.add_argument("--group-by", default=None,
                        choices=GROUP_KEYS)
    parser.add_argument("--format", choices=("text", "csv", "json"),
                        default="text")
    parser.add_argument("--output-dir", default=None, metavar="DIR")
    _add_store_arg(parser)
    args = parser.parse_args(argv)

    if args.report and (args.list or args.group_by is not None):
        parser.error("--report renders the experiment tables; drop "
                     "--list/--group-by")

    if args.output_dir is not None:
        os.makedirs(args.output_dir, exist_ok=True)

    store = SweepStore(args.store)
    try:
        if args.list:
            results = [sweep_overview(store)]
            name = "sweeps"
        elif args.report:
            sweep_id = args.sweep or store.latest_sweep_id()
            if sweep_id is None:
                print("error: store %s has no sweeps" % args.store,
                      file=sys.stderr)
                return 1
            spec = store.spec_for(sweep_id)
            results = sweep_report(store, spec)
            name = spec.experiment
        else:
            sweep_id = None
            if args.sweep is not None:
                # Resolve prefixes the same way --report does.
                sweep_id = store.spec_for(args.sweep).sweep_id
            filters = {}
            if args.workloads is not None:
                filters["workloads"] = _parse_names(
                    "--workloads", args.workloads, parser)
            if args.policies is not None:
                filters["policies"] = _parse_names(
                    "--policies", args.policies, parser)
            if args.tus is not None:
                filters["tus"] = _parse_ints("--tus", args.tus, parser)
            if args.timing is not None:
                filters["timings"] = _parse_names(
                    "--timing", args.timing, parser)
            if args.kind is not None:
                filters["kinds"] = (args.kind,)
            rows = store.get_cells(sweep_id=sweep_id,
                                   status=args.status, **filters)
            if args.group_by is not None:
                results = [grouped_listing(rows, args.group_by,
                                           store.root)]
            else:
                results = [cell_listing(rows, store.root)]
            name = "query"
    except (SweepStoreError, ValueError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    finally:
        store.close()
    _emit(name, results, args.format, args.output_dir)
    return 0
