"""Query and aggregation layer over the sweep result store.

Three read paths, all returning :class:`~repro.experiments.report.
ExperimentResult` tables so they render through the runner's existing
``--format``/``--output-dir`` machinery:

* :func:`cell_listing` -- one row per stored cell under the given
  filters (the raw inspection view);
* :func:`grouped_listing` -- group-by aggregates (cell counts and
  mean/min/max metrics per workload, policy, TU count, timing model,
  or status);
* :func:`sweep_report` -- the *experiment report* of one stored sweep,
  rebuilt from the store through the same table builders the direct
  experiments render with
  (:class:`~repro.experiments.sensitivity.SensitivityTables`,
  :class:`~repro.experiments.characterize.CharacterizeTables`,
  :class:`~repro.experiments.figure6.Figure6Tables`,
  :class:`~repro.experiments.figure7.Figure7Tables`,
  :class:`~repro.experiments.table2.Table2Tables`), so the output is
  byte-identical to running the experiment directly.

Reports require a complete sweep: metrics of failed or missing cells
cannot be invented, so :func:`sweep_report` raises a clean
:class:`ValueError` telling the user to resubmit (resume) first.
"""

import json

from repro.experiments.report import ExperimentResult
from repro.sweep.spec import KIND_LOOPSTATS, KIND_SIM, expand_cells


def _round(value, digits=3):
    return "-" if value is None else round(value, digits)


def cell_listing(rows, store_root):
    """One table row per stored cell, deterministic order."""
    table = [(row.workload, row.kind,
              row.timing if row.timing is not None else "-",
              row.policy if row.policy is not None else "-",
              row.tus if row.tus is not None else "-",
              row.status, _round(row.tpc),
              "-" if row.hit_ratio is None
              else round(100.0 * row.hit_ratio, 1),
              _round(row.speedup))
             for row in rows]
    return ExperimentResult(
        "Sweep cells (%d)" % len(rows),
        ("workload", "kind", "timing", "policy", "TUs", "status",
         "tpc", "hit%", "speedup"),
        table,
        notes=["store: %s" % store_root],
    )


#: Columns ``--group-by`` accepts (cell attributes).
GROUP_KEYS = ("workload", "kind", "timing", "policy", "tus", "status")


def grouped_listing(rows, group_by, store_root):
    """Aggregate *rows* per *group_by* key: cell counts plus
    mean/min/max TPC and mean hit%/speedup over the done simulation
    cells of each group."""
    if group_by not in GROUP_KEYS:
        raise ValueError("unknown group-by key %r (known: %s)"
                         % (group_by, ", ".join(GROUP_KEYS)))
    groups = {}
    order = []
    for row in rows:
        key = getattr(row, group_by)
        key = "-" if key is None else key
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(row)
    order.sort(key=lambda k: str(k))
    table = []
    for key in order:
        members = groups[key]
        done = [r for r in members if r.status == "done"]
        failed = sum(1 for r in members if r.status == "failed")
        tpcs = [r.tpc for r in done if r.tpc is not None]
        hits = [r.hit_ratio for r in done if r.hit_ratio is not None]
        speedups = [r.speedup for r in done if r.speedup is not None]
        table.append((
            key, len(members), len(done), failed,
            _round(sum(tpcs) / len(tpcs)) if tpcs else "-",
            _round(min(tpcs)) if tpcs else "-",
            _round(max(tpcs)) if tpcs else "-",
            round(100.0 * sum(hits) / len(hits), 1) if hits else "-",
            _round(sum(speedups) / len(speedups)) if speedups else "-",
        ))
    return ExperimentResult(
        "Sweep cells by %s" % group_by,
        (group_by, "cells", "done", "failed", "mean tpc", "min tpc",
         "max tpc", "mean hit%", "mean speedup"),
        table,
        notes=["metric aggregates cover done simulation cells only",
               "store: %s" % store_root],
    )


def _restore_sim(row):
    from repro.core.speculation.metrics import SpeculationResult

    try:
        return SpeculationResult.from_state(row.detail_json)
    except (KeyError, TypeError):
        raise ValueError(
            "cell %s has an unreadable result blob; prune the store "
            "and resubmit the sweep" % row.cell_key) from None


def _restore_loopstats(row):
    from repro.core.loopstats import LoopStatistics

    detail = row.detail_json
    try:
        stats = LoopStatistics.from_state(detail["stats"])
        coverage = detail["coverage"]
    except (KeyError, TypeError):
        raise ValueError(
            "cell %s has an unreadable result blob; prune the store "
            "and resubmit the sweep" % row.cell_key) from None
    if not isinstance(coverage, float):
        raise ValueError("cell %s has a malformed coverage value"
                         % row.cell_key)
    return stats, coverage


def _complete_cells(store, spec):
    """``cell_key -> CellRow`` for every cell of *spec*, raising a
    clean error when any is missing or failed."""
    cells = expand_cells(spec)
    rows = {row.cell_key: row
            for row in store.get_cells(cell_keys=[c.key for c in cells])}
    missing = [c for c in cells if c.key not in rows]
    failed = [c for c in cells
              if c.key in rows and rows[c.key].status != "done"]
    if missing or failed:
        raise ValueError(
            "sweep %s is incomplete: %d cell(s) missing, %d failed "
            "of %d; resubmit it (runner sweep --resume %s) and query "
            "again" % (spec.sweep_id, len(missing), len(failed),
                       len(cells), spec.sweep_id))
    return cells, rows


def sweep_report(store, spec):
    """The experiment report of *spec* rebuilt from stored cells.

    Returns the same ``[ExperimentResult, ...]`` list the direct
    experiment produces, byte-identical under every output format.
    """
    cells, rows = _complete_cells(store, spec)
    by_cell = {}        # (workload, kind, policy, tus, timing) -> row
    for cell in cells:
        by_cell[(cell.workload, cell.kind, cell.policy, cell.tus,
                 cell.timing)] = rows[cell.key]

    if spec.experiment == "sensitivity":
        from repro.experiments.sensitivity import SensitivityTables

        tables = SensitivityTables(spec.spawn_costs, spec.tu_counts,
                                   spec.policies, spec.squash_cost,
                                   spec.promote_cost)
        for name in spec.workloads:
            def results(policy, tus, cost, name=name):
                timing, _, _ = _spawn_timing(spec, cost)
                return _restore_sim(
                    by_cell[(name, KIND_SIM, policy, tus, timing)])
            tables.add_workload(name, results)
        return tables.results()

    def ideal_sim(name, policy, tus):
        return _restore_sim(
            by_cell[(name, KIND_SIM, policy, tus, "ideal")])

    if spec.experiment == "figure6":
        from repro.experiments.figure6 import POLICY, Figure6Tables

        tables = Figure6Tables(spec.tu_counts)
        for name in spec.workloads:
            tables.add_workload(
                name, lambda tus, name=name: ideal_sim(name, POLICY,
                                                       tus))
        return [tables.results()]

    if spec.experiment == "figure7":
        from repro.experiments.figure7 import Figure7Tables

        tables = Figure7Tables(spec.policies, spec.tu_counts)
        for name in spec.workloads:
            tables.add_workload(
                name, lambda policy, tus, name=name: ideal_sim(
                    name, policy, tus))
        return [tables.results()]

    if spec.experiment == "table2":
        from repro.experiments.table2 import POLICY, Table2Tables

        tables = Table2Tables(spec.num_tus)
        for name in spec.workloads:
            tables.add_workload(name, ideal_sim(name, POLICY,
                                                spec.num_tus))
        return [tables.results()]

    from repro.experiments.characterize import CharacterizeTables

    tables = CharacterizeTables(spec.policies, spec.num_tus)
    for name in spec.workloads:
        stats, coverage = _restore_loopstats(
            by_cell[(name, KIND_LOOPSTATS, None, None, None)])
        tables.add_workload(
            name, stats, coverage,
            lambda policy, name=name: _restore_sim(
                by_cell[(name, KIND_SIM, policy, spec.num_tus,
                         "ideal")]))
    return tables.results()


def _spawn_timing(spec, cost):
    from repro.sweep.spec import canonical_timing

    return canonical_timing(spec.overhead_spec(cost))


def sweep_overview(store):
    """One table row per stored sweep (id, experiment, progress)."""
    table = []
    for sweep_id, experiment, spec_json, _, _ in store.sweeps():
        try:
            workloads = len(json.loads(spec_json)["workloads"])
        except (ValueError, KeyError, TypeError):
            workloads = "?"
        total = store.sweep_total(sweep_id)
        _, done, failed = store.counts(sweep_id)
        table.append((sweep_id, experiment, workloads, total, done,
                      failed))
    return ExperimentResult(
        "Sweeps (%d)" % len(table),
        ("sweep", "experiment", "workloads", "cells", "done", "failed"),
        table,
        notes=["store: %s" % store.root],
    )
