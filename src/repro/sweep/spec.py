"""Sweep grid specifications and their deterministic cell expansion.

A :class:`SweepSpec` pins one experiment grid completely: the
experiment kind, the workload set, the session coordinates (scale,
CLS capacity, instruction budget), and the experiment's own axes
(spawn costs x TU counts x policies for ``sensitivity``; policies at a
fixed TU count plus per-workload loop statistics for ``characterize``).
It is frozen, validated eagerly with the same rules the direct
experiments apply, and serializes to canonical JSON -- the digest of
that JSON is the **sweep id**, so resubmitting the same grid always
maps onto the same sweep.

:func:`expand_cells` turns a spec into its :class:`Cell` list.  Cells
are *content-keyed* with the trace-cache/derived-store key discipline
(:meth:`repro.pipeline.cache.TraceCache.key` +
:func:`repro.pipeline.derived.derived_key`): the key embeds the
workload's program fingerprint, scale, budget, CLS capacity, and the
cell's own parameters, so editing a workload generator orphans its
cells, two sweeps whose grids overlap share the overlapping cells, and
a ``sensitivity`` spawn-cost-0 cell is the *same row* as the
``characterize`` cell for that policy/TU configuration.
"""

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.pipeline.cache import TraceCache, program_fingerprint
from repro.pipeline.derived import derived_key

#: Experiments a sweep can run (the store-backed execution path of the
#: equally named direct experiments).  ``figure6`` sweeps the STR
#: policy over ``tu_counts``, ``figure7`` sweeps ``policies`` x
#: ``tu_counts``, and ``table2`` runs the paper's STR(3) configuration
#: at ``num_tus`` -- all on the ideal machine, exactly like the direct
#: experiments, so their cells are shared rows with any overlapping
#: sensitivity/characterize grid.
SWEEP_EXPERIMENTS = ("sensitivity", "characterize", "figure6",
                     "figure7", "table2")

#: Cell kinds: a speculation simulation and the per-workload loop
#: statistics (characterize's non-simulation half).
KIND_SIM = "sim"
KIND_LOOPSTATS = "loopstats"


def _int_tuple(name, values, minimum=0):
    """Sorted, de-duplicated integer axis (the direct sensitivity
    experiment's normalization, so grids match cell-for-cell)."""
    values = tuple(values)
    if not values:
        raise ValueError("%s must name at least one value" % name)
    for value in values:
        if not isinstance(value, int) or value < minimum:
            raise ValueError("%s values must be integers >= %d, got %r"
                             % (name, minimum, value))
    return tuple(sorted(set(values)))


@dataclass(frozen=True)
class SweepSpec:
    """One experiment grid, fully pinned.

    ``workloads`` is a tuple of resolved workload names (synthetic
    ``synth-<profile>-<seed>`` names included); order is preserved and
    determines report row order, exactly like the direct experiments.
    Each experiment reads only its own axes: ``characterize`` uses
    ``policies``/``num_tus``, ``figure6`` uses ``tu_counts`` (its
    policy is fixed to STR), ``figure7`` uses ``policies`` x
    ``tu_counts``, ``table2`` uses ``num_tus`` (policy fixed to
    STR(3)), and the spawn/squash/promote costs belong to
    ``sensitivity`` alone; the rest are ignored.
    """

    experiment: str
    workloads: Tuple[str, ...]
    scale: int = 1
    cls_capacity: int = 16
    max_instructions: Optional[int] = None
    # sensitivity axes
    spawn_costs: Tuple[int, ...] = (0, 2, 8, 32)
    tu_counts: Tuple[int, ...] = (2, 4, 8, 16)
    policies: Tuple[str, ...] = ("idle", "str", "str(3)")
    squash_cost: int = 0
    promote_cost: int = 0
    # characterize axis
    num_tus: int = 4

    def __post_init__(self):
        if self.experiment not in SWEEP_EXPERIMENTS:
            raise ValueError("unknown sweep experiment %r (known: %s)"
                             % (self.experiment,
                                ", ".join(SWEEP_EXPERIMENTS)))
        workloads = tuple(self.workloads)
        if not workloads:
            raise ValueError("a sweep needs at least one workload")
        object.__setattr__(self, "workloads", workloads)
        if self.scale < 1:
            raise ValueError("scale must be >= 1")
        if self.cls_capacity < 1:
            raise ValueError("cls_capacity must be >= 1")
        if self.max_instructions is not None \
                and self.max_instructions < 1:
            raise ValueError("max_instructions must be >= 1")
        object.__setattr__(self, "spawn_costs",
                           _int_tuple("spawn costs", self.spawn_costs))
        object.__setattr__(self, "tu_counts",
                           _int_tuple("TU counts", self.tu_counts,
                                      minimum=1))
        policies = tuple(self.policies)
        if not policies:
            raise ValueError("policies must name at least one policy")
        from repro.core.speculation import make_policy
        for policy in policies:
            make_policy(policy)     # ValueError on unknown policies
        object.__setattr__(self, "policies", policies)
        if not isinstance(self.num_tus, int) or self.num_tus < 1:
            raise ValueError("num_tus must be an integer >= 1")
        for name in ("squash_cost", "promote_cost"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 0:
                raise ValueError("%s must be an integer >= 0" % name)

    # -- serialization -----------------------------------------------------

    def to_json(self):
        """Canonical JSON (sorted keys, no whitespace variance)."""
        payload = {
            "experiment": self.experiment,
            "workloads": list(self.workloads),
            "scale": self.scale,
            "cls_capacity": self.cls_capacity,
            "max_instructions": self.max_instructions,
            "spawn_costs": list(self.spawn_costs),
            "tu_counts": list(self.tu_counts),
            "policies": list(self.policies),
            "squash_cost": self.squash_cost,
            "promote_cost": self.promote_cost,
            "num_tus": self.num_tus,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text):
        """The exact inverse of :meth:`to_json`; raises
        :class:`ValueError` on malformed input."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError("unreadable sweep spec: %s" % exc) from None
        if not isinstance(payload, dict):
            raise ValueError("unreadable sweep spec: not an object")
        try:
            return cls(
                experiment=payload["experiment"],
                workloads=tuple(payload["workloads"]),
                scale=payload["scale"],
                cls_capacity=payload["cls_capacity"],
                max_instructions=payload["max_instructions"],
                spawn_costs=tuple(payload["spawn_costs"]),
                tu_counts=tuple(payload["tu_counts"]),
                policies=tuple(payload["policies"]),
                squash_cost=payload["squash_cost"],
                promote_cost=payload["promote_cost"],
                num_tus=payload["num_tus"],
            )
        except (KeyError, TypeError) as exc:
            raise ValueError("unreadable sweep spec: %s" % exc) from None

    @property
    def sweep_id(self):
        """Content digest of the grid: same spec, same id, always."""
        digest = hashlib.sha256(self.to_json().encode("ascii"))
        return digest.hexdigest()[:16]

    # -- axes --------------------------------------------------------------

    def overhead_spec(self, spawn_cost):
        """The timing spec string of one spawn-cost point (the exact
        string the direct sensitivity experiment builds; all-zero
        costs canonicalize to the ideal model downstream)."""
        return ("overhead:spawn=%d,squash=%d,promote=%d"
                % (spawn_cost, self.squash_cost, self.promote_cost))


@dataclass(frozen=True)
class Cell:
    """One unit of sweep work, content-keyed.

    ``key`` is globally unique across sweeps: the workload's trace-cache
    key, the CLS capacity, and the cell parameters in derived-store key
    form.  ``timing`` is the canonical timing spec string (``"ideal"``
    for free speculation); ``policy``/``tus`` are ``None`` for
    non-simulation kinds.
    """

    key: str
    workload: str
    trace_key: str
    scale: int
    max_instructions: int
    cls_capacity: int
    kind: str
    timing: Optional[str] = None
    policy: Optional[str] = None
    tus: Optional[int] = None
    spawn_cost: Optional[int] = field(default=None, compare=False)


def canonical_timing(spec_str):
    """``(canonical spec string, model-or-None, derived-key part)``.

    All-zero overhead specs collapse onto the ideal model exactly like
    :func:`repro.analysis.passes.effective_timing`, so the cell key --
    and therefore the stored row -- is shared with ideal-machine runs.
    """
    from repro.timing import make_timing

    model = make_timing(spec_str)
    if model.key() == ("ideal",):
        return "ideal", None, None
    return spec_str, model, model.key()


def sim_cell_suffix(tus, policy, timing_key, cls_capacity):
    """The derived-store key of one simulation cell -- byte-for-byte
    the key :func:`repro.analysis.passes.shared_simulate` persists
    under, so sweep cells and direct experiment runs share one cache
    row on disk."""
    if timing_key is None:
        return derived_key("simulate", tus, policy) \
            + "/c%d" % cls_capacity
    return derived_key("simulate", tus, policy, timing_key) \
        + "/c%d" % cls_capacity


def loopstats_cell_suffix(cls_capacity):
    """The key suffix of a per-workload loop-statistics cell."""
    return derived_key("loopstats") + "/c%d" % cls_capacity


def workload_trace_key(name, scale=1, max_instructions=None):
    """The trace-cache key of *name* at these session coordinates
    (compiles the program to fingerprint it, like the pipeline does)."""
    from repro.workloads import get

    workload = get(name)
    limit = max_instructions or workload.default_max_instructions
    fingerprint = program_fingerprint(workload.program(scale))
    return TraceCache.key(name, scale, limit, fingerprint), limit


def expand_cells(spec):
    """The deterministic cell list of *spec*, in grid order.

    Grid order is workload (spec order), then kind, then the
    experiment's axis order (policy, TUs, spawn cost) -- the exact
    iteration order of the direct experiments, so progress reporting
    and resume behaviour line up with what ``runner sensitivity``
    would compute.
    """
    cells = []
    seen = set()
    for name in spec.workloads:
        trace_key, limit = workload_trace_key(
            name, spec.scale, spec.max_instructions)

        def add(kind, suffix, timing=None, policy=None, tus=None,
                spawn_cost=None):
            key = "%s/%s" % (trace_key, suffix)
            if key in seen:
                return
            seen.add(key)
            cells.append(Cell(
                key=key, workload=name, trace_key=trace_key,
                scale=spec.scale, max_instructions=limit,
                cls_capacity=spec.cls_capacity, kind=kind,
                timing=timing, policy=policy, tus=tus,
                spawn_cost=spawn_cost))

        def add_ideal(policy, tus):
            # figure6/figure7/table2 simulate on the paper's ideal
            # machine only, like the direct experiments they mirror.
            add(KIND_SIM,
                sim_cell_suffix(tus, policy, None, spec.cls_capacity),
                timing="ideal", policy=policy, tus=tus, spawn_cost=0)

        if spec.experiment == "characterize":
            add(KIND_LOOPSTATS,
                loopstats_cell_suffix(spec.cls_capacity))
            # Characterization always simulates on the paper's ideal
            # machine (the direct experiment takes no timing flags).
            for policy in spec.policies:
                add_ideal(policy, spec.num_tus)
        elif spec.experiment == "figure6":
            from repro.experiments.figure6 import POLICY
            for tus in spec.tu_counts:
                add_ideal(POLICY, tus)
        elif spec.experiment == "figure7":
            for policy in spec.policies:
                for tus in spec.tu_counts:
                    add_ideal(policy, tus)
        elif spec.experiment == "table2":
            from repro.experiments.table2 import POLICY
            add_ideal(POLICY, spec.num_tus)
        else:
            for policy in spec.policies:
                for tus in spec.tu_counts:
                    for cost in spec.spawn_costs:
                        timing, _, timing_key = canonical_timing(
                            spec.overhead_spec(cost))
                        add(KIND_SIM,
                            sim_cell_suffix(tus, policy, timing_key,
                                            spec.cls_capacity),
                            timing=timing, policy=policy, tus=tus,
                            spawn_cost=cost)
    return cells
