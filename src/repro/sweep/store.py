"""Resumable on-disk sweep result store (sqlite).

One database holds every sweep's results: a ``cells`` table with one
row per content-keyed cell (metrics as real columns for SQL-level
filtering and aggregation, the full result state as a JSON detail
blob for exact reconstruction), a ``sweeps`` table recording each
submitted grid's canonical spec, and a ``sweep_cells`` membership map.
Cells are global -- two sweeps whose grids overlap share the
overlapping rows, so repeat cells are free across sweeps, not just
within one.

The store is schema-versioned through sqlite's ``user_version`` pragma
the way :mod:`repro.pipeline.derived` versions its JSON sidecars, but
with the opposite failure policy: a derived-cache miss just recomputes,
whereas a sweep store holds results the user asked to keep, so a
corrupt file or a version mismatch raises :class:`SweepStoreError`
with a clean message (``tools/trace_cache.py sweeps clear`` resets it)
instead of silently discarding data or spewing a sqlite traceback.

Default location: ``~/.cache/repro-sweeps`` (override with the
``REPRO_SWEEP_STORE`` environment variable or ``--store``).
"""

import json
import os
import sqlite3
import time

#: Bump when the schema or the meaning of any stored column changes.
SWEEP_SCHEMA_VERSION = 1

#: Environment variable overriding the default store location.
STORE_ENV_VAR = "REPRO_SWEEP_STORE"

#: Database filename inside the store directory.
DB_NAME = "store.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS sweeps (
    sweep_id    TEXT PRIMARY KEY,
    experiment  TEXT NOT NULL,
    spec        TEXT NOT NULL,
    created_at  REAL NOT NULL,
    updated_at  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS cells (
    cell_key         TEXT PRIMARY KEY,
    trace_key        TEXT NOT NULL,
    workload         TEXT NOT NULL,
    scale            INTEGER NOT NULL,
    max_instructions INTEGER NOT NULL,
    cls_capacity     INTEGER NOT NULL,
    kind             TEXT NOT NULL,
    timing           TEXT,
    policy           TEXT,
    tus              INTEGER,
    status           TEXT NOT NULL,
    tpc              REAL,
    hit_ratio        REAL,
    speedup          REAL,
    overhead_cycles  INTEGER,
    detail           TEXT,
    error            TEXT,
    updated_at       REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS cells_by_workload
    ON cells (workload, kind, policy, tus);
CREATE TABLE IF NOT EXISTS sweep_cells (
    sweep_id TEXT NOT NULL,
    cell_key TEXT NOT NULL,
    PRIMARY KEY (sweep_id, cell_key)
);
"""

#: Column order of :data:`CellRow` / ``put_cells`` payload dicts.
CELL_FIELDS = ("cell_key", "trace_key", "workload", "scale",
               "max_instructions", "cls_capacity", "kind", "timing",
               "policy", "tus", "status", "tpc", "hit_ratio", "speedup",
               "overhead_cycles", "detail", "error")


class SweepStoreError(ValueError):
    """The store is unusable (corrupt file or schema mismatch)."""


class CellRow:
    """One stored cell, column access by name."""

    __slots__ = CELL_FIELDS + ("updated_at",)

    def __init__(self, values):
        for name, value in zip(self.__slots__, values):
            setattr(self, name, value)

    @property
    def detail_json(self):
        """The decoded detail blob (``{}`` when absent/unreadable)."""
        if not self.detail:
            return {}
        try:
            payload = json.loads(self.detail)
        except json.JSONDecodeError:
            return {}
        return payload if isinstance(payload, dict) else {}

    def __repr__(self):
        return ("CellRow(%s %s %s policy=%s tus=%s %s)"
                % (self.workload, self.kind, self.timing, self.policy,
                   self.tus, self.status))


def default_store_dir():
    """The sweep store used when no ``--store`` is given."""
    override = os.environ.get(STORE_ENV_VAR)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache",
                        "repro-sweeps")


class SweepStore:
    """The sweep database under *root* (a directory).

    Opens lazily; every sqlite-level failure surfaces as
    :class:`SweepStoreError` with the path in the message.  Use as a
    context manager or call :meth:`close` explicitly.
    """

    def __init__(self, root):
        self.root = root
        self.path = os.path.join(root, DB_NAME)
        self._conn = None

    # -- lifecycle ---------------------------------------------------------

    def _connect(self):
        if self._conn is not None:
            return self._conn
        os.makedirs(self.root, exist_ok=True)
        try:
            conn = sqlite3.connect(self.path)
            version = conn.execute("PRAGMA user_version").fetchone()[0]
            empty = conn.execute(
                "SELECT COUNT(*) FROM sqlite_master").fetchone()[0] == 0
            if empty:
                conn.executescript(_SCHEMA)
                conn.execute("PRAGMA user_version = %d"
                             % SWEEP_SCHEMA_VERSION)
                conn.commit()
            elif version != SWEEP_SCHEMA_VERSION:
                conn.close()
                raise SweepStoreError(
                    "sweep store %s has schema version %d, this build "
                    "expects %d; run 'python tools/trace_cache.py "
                    "sweeps clear --store %s' (or point --store at a "
                    "fresh directory)"
                    % (self.path, version, SWEEP_SCHEMA_VERSION,
                       self.root))
            else:
                # Same version: sanity-check the tables exist.
                conn.executescript(_SCHEMA)
                conn.commit()
        except sqlite3.DatabaseError as exc:
            raise SweepStoreError(
                "sweep store %s is corrupt (%s); run 'python "
                "tools/trace_cache.py sweeps clear --store %s' to "
                "reset it" % (self.path, exc, self.root)) from None
        self._conn = conn
        return conn

    def close(self):
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self):
        self._connect()
        return self

    def __exit__(self, *exc_info):
        self.close()

    def _execute(self, sql, params=()):
        try:
            return self._connect().execute(sql, params)
        except sqlite3.DatabaseError as exc:
            raise SweepStoreError(
                "sweep store %s failed: %s" % (self.path, exc)) \
                from None

    # -- sweeps ------------------------------------------------------------

    def record_sweep(self, spec, cell_keys):
        """Register *spec* (idempotent) and its cell membership;
        returns the sweep id."""
        sweep_id = spec.sweep_id
        now = time.time()
        conn = self._connect()
        self._execute(
            "INSERT INTO sweeps (sweep_id, experiment, spec, "
            "created_at, updated_at) VALUES (?, ?, ?, ?, ?) "
            "ON CONFLICT(sweep_id) DO UPDATE SET updated_at = ?",
            (sweep_id, spec.experiment, spec.to_json(), now, now, now))
        conn.executemany(
            "INSERT OR IGNORE INTO sweep_cells (sweep_id, cell_key) "
            "VALUES (?, ?)", [(sweep_id, key) for key in cell_keys])
        conn.commit()
        return sweep_id

    def sweeps(self):
        """``(sweep_id, experiment, spec_json, created_at, updated_at)``
        rows, most recently updated last."""
        return self._execute(
            "SELECT sweep_id, experiment, spec, created_at, updated_at "
            "FROM sweeps ORDER BY updated_at, sweep_id").fetchall()

    def spec_for(self, sweep_id):
        """The stored :class:`~repro.sweep.spec.SweepSpec` of
        *sweep_id* (unique-prefix match); raises
        :class:`SweepStoreError` when absent or ambiguous."""
        from repro.sweep.spec import SweepSpec

        rows = self._execute(
            "SELECT sweep_id, spec FROM sweeps WHERE sweep_id LIKE ? "
            "ORDER BY sweep_id", (sweep_id + "%",)).fetchall()
        if not rows:
            raise SweepStoreError("no sweep %r in %s"
                                  % (sweep_id, self.path))
        if len(rows) > 1:
            raise SweepStoreError(
                "sweep id %r is ambiguous in %s (matches %s)"
                % (sweep_id, self.path,
                   ", ".join(row[0] for row in rows)))
        try:
            payload = json.loads(rows[0][1])
        except json.JSONDecodeError:
            payload = None
        if isinstance(payload, dict) \
                and payload.get("experiment") == "search":
            raise SweepStoreError(
                "%s is a search run, not a sweep; resume it by "
                "resubmitting the same 'runner search' command"
                % rows[0][0])
        return SweepSpec.from_json(rows[0][1])

    def latest_sweep_id(self):
        """The most recently updated sweep's id, or ``None``."""
        rows = self.sweeps()
        return rows[-1][0] if rows else None

    # -- cells -------------------------------------------------------------

    def done_keys(self, cell_keys):
        """The subset of *cell_keys* already stored with status
        ``done`` (failed rows are retried, so they do not count)."""
        keys = list(cell_keys)
        done = set()
        for start in range(0, len(keys), 500):
            chunk = keys[start:start + 500]
            marks = ",".join("?" * len(chunk))
            rows = self._execute(
                "SELECT cell_key FROM cells WHERE status = 'done' "
                "AND cell_key IN (%s)" % marks, chunk).fetchall()
            done.update(row[0] for row in rows)
        return done

    def put_cells(self, rows):
        """Insert-or-replace *rows* (dicts keyed by
        :data:`CELL_FIELDS`) and commit -- this is the checkpoint the
        orchestrator's resume guarantee rests on."""
        if not rows:
            return
        now = time.time()
        payload = [tuple(row.get(f) for f in CELL_FIELDS) + (now,)
                   for row in rows]
        marks = ",".join("?" * (len(CELL_FIELDS) + 1))
        conn = self._connect()
        try:
            conn.executemany(
                "INSERT OR REPLACE INTO cells (%s, updated_at) "
                "VALUES (%s)" % (",".join(CELL_FIELDS), marks), payload)
            conn.commit()
        except sqlite3.DatabaseError as exc:
            raise SweepStoreError(
                "sweep store %s failed: %s" % (self.path, exc)) \
                from None

    def get_cells(self, cell_keys=None, sweep_id=None, workloads=None,
                  kinds=None, policies=None, tus=None, timings=None,
                  status=None):
        """:class:`CellRow` list under the given filters, in
        deterministic (workload, kind, timing, policy, tus) order."""
        where, params = [], []
        sql = ("SELECT %s, updated_at FROM cells"
               % ",".join(CELL_FIELDS))
        if sweep_id is not None:
            sql += (" JOIN sweep_cells USING (cell_key)")
            where.append("sweep_cells.sweep_id = ?")
            params.append(sweep_id)

        def add_in(column, values):
            values = list(values)
            where.append("%s IN (%s)" % (column,
                                         ",".join("?" * len(values))))
            params.extend(values)

        if cell_keys is not None:
            add_in("cell_key", cell_keys)
        if workloads is not None:
            add_in("workload", workloads)
        if kinds is not None:
            add_in("kind", kinds)
        if policies is not None:
            add_in("policy", policies)
        if tus is not None:
            add_in("tus", tus)
        if timings is not None:
            add_in("timing", timings)
        if status is not None:
            where.append("status = ?")
            params.append(status)
        if where:
            sql += " WHERE " + " AND ".join(where)
        sql += (" ORDER BY workload, kind, timing, policy, tus,"
                " cell_key")
        return [CellRow(row) for row in
                self._execute(sql, params).fetchall()]

    def counts(self, sweep_id=None):
        """``(total, done, failed)`` cell counts, optionally scoped to
        one sweep's membership."""
        if sweep_id is None:
            row = self._execute(
                "SELECT COUNT(*), "
                "SUM(CASE WHEN status = 'done' THEN 1 ELSE 0 END), "
                "SUM(CASE WHEN status = 'failed' THEN 1 ELSE 0 END) "
                "FROM cells").fetchone()
        else:
            row = self._execute(
                "SELECT COUNT(s.cell_key), "
                "SUM(CASE WHEN c.status = 'done' THEN 1 ELSE 0 END), "
                "SUM(CASE WHEN c.status = 'failed' THEN 1 ELSE 0 END) "
                "FROM sweep_cells s LEFT JOIN cells c "
                "ON s.cell_key = c.cell_key WHERE s.sweep_id = ?",
                (sweep_id,)).fetchone()
        total, done, failed = row
        return (total or 0, done or 0, failed or 0)

    def sweep_total(self, sweep_id):
        """How many cells *sweep_id*'s grid names (stored or not)."""
        return self._execute(
            "SELECT COUNT(*) FROM sweep_cells WHERE sweep_id = ?",
            (sweep_id,)).fetchone()[0]

    # -- maintenance -------------------------------------------------------

    def prune(self, dry_run=False):
        """Drop failed cells and cells no sweep references; returns
        ``(failed_removed, orphaned_removed)``."""
        conn = self._connect()
        failed = self._execute(
            "SELECT COUNT(*) FROM cells WHERE status = 'failed'"
        ).fetchone()[0]
        orphaned = self._execute(
            "SELECT COUNT(*) FROM cells WHERE status != 'failed' AND "
            "cell_key NOT IN (SELECT cell_key FROM sweep_cells)"
        ).fetchone()[0]
        if not dry_run:
            self._execute("DELETE FROM cells WHERE status = 'failed'")
            self._execute(
                "DELETE FROM cells WHERE cell_key NOT IN "
                "(SELECT cell_key FROM sweep_cells)")
            conn.commit()
        return failed, orphaned

    def clear(self):
        """Delete the database file entirely (works even when the file
        is corrupt or from another schema version)."""
        self.close()
        try:
            os.unlink(self.path)
            return True
        except FileNotFoundError:
            return False
