"""Sharded, resumable experiment sweeps over an on-disk result store.

The subsystem splits a swept experiment into content-keyed *cells*
(one simulation or loop-statistics computation each), shards them
across a process pool, and checkpoints every finished cell into a
schema-versioned sqlite store.  Interrupt a sweep and resubmit the
same grid: only the missing cells execute, and a completed sweep
reruns as 0 cells.  The query layer rebuilds the experiment report
from stored cells byte-identical to the direct run.

See ``docs/SWEEPS.md`` for the full tour; the CLI front end is
``runner sweep`` / ``runner query`` (:mod:`repro.sweep.cli`).
"""

from repro.sweep.orchestrator import SweepRunStats, run_sweep
from repro.sweep.query import cell_listing, grouped_listing, \
    sweep_overview, sweep_report
from repro.sweep.spec import Cell, SweepSpec, expand_cells
from repro.sweep.store import CellRow, SweepStore, SweepStoreError, \
    default_store_dir

__all__ = [
    "Cell",
    "CellRow",
    "SweepRunStats",
    "SweepSpec",
    "SweepStore",
    "SweepStoreError",
    "cell_listing",
    "default_store_dir",
    "expand_cells",
    "grouped_listing",
    "run_sweep",
    "sweep_overview",
    "sweep_report",
]
