"""Shared mini-language building blocks for the workload suite.

Run-time randomness is implemented *inside* the simulated program (a
mixed linear-congruential generator over a global scalar), so traces are
bit-reproducible and independent of the host RNG.  Host-side
:class:`~repro.util.rng.Xorshift64` seeds initial data arrays only.
"""

from repro.lang import Assign, CallExpr, Const, Function, Return, Var
from repro.util.rng import Xorshift64

#: Classic 31-bit LCG constants (Park-Miller style, power-of-two modulus
#: so the mini-language's masking stays cheap).
LCG_MUL = 1103515245
LCG_ADD = 12345
LCG_MASK = 0x7FFFFFFF


def add_lcg(module, state_name="rng_state", seed=12345):
    """Declare an in-language PRNG: global state + ``rand()`` function.

    ``rand()`` returns a fresh 31-bit pseudo-random value.  Callers
    typically reduce it with ``% n``.
    """
    module.scalar(state_name, seed)
    module.function("rand", [], [
        Assign(state_name,
               (Var(state_name) * LCG_MUL + LCG_ADD) & LCG_MASK),
        Return(Var(state_name)),
    ])
    return module


def rand():
    """Expression calling the in-language PRNG."""
    return CallExpr("rand")


def table_init(count, seed, low=0, high=255):
    """Host-side deterministic random initializer for data arrays."""
    gen = Xorshift64(seed)
    return gen.sample_values(count, low, high)


def ramp_init(count, start=0, step=1):
    return [start + i * step for i in range(count)]


def straight_line_block(dst_vars, expr_builder, statements):
    """Append *statements* with a long straight-line arithmetic block.

    ``dst_vars`` is a list of variable names cycled through as targets;
    ``expr_builder(k)`` produces the k-th expression.  Used by the
    fpppp-analog to create huge loop bodies.
    """
    for k, name in enumerate(dst_vars):
        statements.append(Assign(name, expr_builder(k)))
    return statements
