"""Workload abstraction and registry.

A workload is a named builder of mini-language modules whose dynamic
loop behaviour mirrors one SPEC95 program's row in the paper's Table 1
(iterations/execution, instructions/iteration, nesting depth, control
regularity).  ``scale`` multiplies the amount of work (outer repetitions
or grid/time steps) without changing the loop *shape*, standing in for
the paper's whole-run vs 10^9-instruction-prefix distinction.
"""

from repro.core.detector import LoopDetector
from repro.cpu import trace_control_flow, trace_full
from repro.lang.compiler import compile_module


class Workload:
    """A registered synthetic benchmark."""

    def __init__(self, name, builder, description, category,
                 default_max_instructions=2_000_000):
        self.name = name
        self.builder = builder
        self.description = description
        self.category = category          # "int" or "fp"
        self.default_max_instructions = default_max_instructions
        self._program_cache = {}

    def build_module(self, scale=1):
        if scale < 1:
            raise ValueError("scale must be >= 1")
        return self.builder(scale)

    def program(self, scale=1):
        """Compiled program, cached per scale."""
        if scale not in self._program_cache:
            self._program_cache[scale] = compile_module(
                self.build_module(scale))
        return self._program_cache[scale]

    def cf_trace(self, scale=1, max_instructions=None):
        limit = max_instructions or self.default_max_instructions
        return trace_control_flow(self.program(scale), limit)

    def full_trace(self, scale=1, max_instructions=None):
        limit = max_instructions or self.default_max_instructions
        return trace_full(self.program(scale), limit)

    def loop_index(self, scale=1, cls_capacity=16, max_instructions=None):
        trace = self.cf_trace(scale, max_instructions)
        return LoopDetector(cls_capacity=cls_capacity).run(trace)

    def __repr__(self):
        return "Workload(%r, %s)" % (self.name, self.category)


_REGISTRY = {}


def register(name, description, category,
             default_max_instructions=2_000_000):
    """Decorator registering a module-builder function as a workload."""
    def wrap(builder):
        if name in _REGISTRY:
            raise ValueError("workload %r already registered" % name)
        workload = Workload(name, builder, description, category,
                            default_max_instructions)
        _REGISTRY[name] = workload
        return builder
    return wrap


def register_workload(workload):
    """Register an already-built :class:`Workload` object (the synthetic
    resolver's path).

    Re-registering the *same object* is a no-op; a different object
    under a taken name raises (mirroring :func:`register`) rather than
    silently keeping the old builder.
    """
    existing = _REGISTRY.get(workload.name)
    if existing is workload:
        return workload
    if existing is not None:
        raise ValueError("workload %r already registered"
                         % workload.name)
    _REGISTRY[workload.name] = workload
    return workload


def get(name):
    """The registered workload called *name*.

    ``synth-<profile>-<seed>`` names resolve lazily through the
    deterministic generator (:mod:`repro.workloads.synthetic`) and are
    registered on first lookup — including inside pooled tracer
    processes, which resolve names through this function.
    ``frontier-<objective>-<k>`` names resolve through the committed
    frontier corpus (:mod:`repro.search.corpus`) the same way.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        pass
    if name.startswith("synth-"):
        from repro.workloads.synthetic import resolve_synthetic
        return resolve_synthetic(name)
    if name.startswith("frontier-"):
        from repro.search.corpus import resolve_frontier
        return resolve_frontier(name)
    raise KeyError("unknown workload %r (known: %s)"
                   % (name, ", ".join(sorted(_REGISTRY))))


def names():
    return sorted(_REGISTRY)


def all_workloads():
    return [_REGISTRY[n] for n in sorted(_REGISTRY)]
