"""turb3d-analog: turbulence simulation with FFT-style butterfly stages.

SPEC95 ``turb3d``: ~4 iterations per execution at nesting ~4 (max 6) --
the low trip counts come from logarithmic FFT stage loops.  The analog
runs radix-2 butterfly passes over velocity planes: a stage loop whose
span halves each trip (data-dependent While), block and element loops
inside, plus a nonlinear term pass.
"""

from repro.lang import Assign, For, Index, Module, Return, Store, Var, While
from repro.workloads.base import register
from repro.workloads.common import table_init

NPTS = 32           # transform length (2^5: 5 butterfly stages)
PLANES = 3


@register("turb3d", "FFT butterfly stages; ~4-5 iterations/execution, "
          "nesting 4-6", "fp")
def build(scale=1):
    m = Module("turb3d")
    m.array("vel", PLANES * NPTS,
            init=table_init(PLANES * NPTS, seed=73, low=0, high=127))

    p, b, e = Var("p"), Var("b"), Var("e")
    span = Var("span")
    base = p * NPTS + b * (span * 2) + e

    butterfly = [
        Assign("lo", Index("vel", base)),
        Assign("hi", Index("vel", base + span)),
        Store("vel", base, (Var("lo") + Var("hi")) % 65521),
        Store("vel", base + span,
              (Var("lo") - Var("hi") + 65521) % 65521),
    ]
    stage = [
        Assign("blocks", NPTS // (span * 2)),
        For("b", 0, Var("blocks"), [For("e", 0, span, butterfly)]),
        Assign("span", span // 2),
    ]
    nonlinear = [
        Store("vel", p * NPTS + e,
              (Index("vel", p * NPTS + e)
               * Index("vel", ((p + 1) % PLANES) * NPTS + e)) % 251),
    ]

    m.function("main", [], [
        For("step", 0, 6 * scale, [
            For("p", 0, PLANES, [
                Assign("span", NPTS // 2),
                While(span >= 1, stage),
            ]),
            For("p", 0, PLANES, [For("e", 0, NPTS, nonlinear)]),
        ]),
        Return(Index("vel", 5)),
    ])
    return m
