"""swim-analog: shallow-water finite-difference sweeps.

SPEC95 ``swim`` is the suite's extreme regular-loop program: Table 1
reports ~188 iterations per execution (by far the highest) at nesting
~3, and the paper's Figure 6 shows it keeping 4 TUs nearly full.  The
analog sweeps three fields (u, v, p) along a long 1D water column --
SPEC swim's inner loops are long contiguous vector sweeps, which is the
property that matters for loop detection -- with very high trip counts,
shallow nesting and perfectly repeatable control flow.
"""

from repro.lang import Assign, For, Index, Module, Return, Store, Var
from repro.workloads.base import register
from repro.workloads.common import table_init

N = 190          # column length; interior sweeps run N-2 iterations


@register("swim", "shallow-water sweeps; ~190 iterations/execution "
          "(suite maximum), nesting 2-3, fully regular", "fp")
def build(scale=1):
    m = Module("swim")
    m.array("u", N, init=table_init(N, seed=11, low=0, high=97))
    m.array("v", N, init=table_init(N, seed=13, low=0, high=97))
    m.array("p", N, init=table_init(N, seed=17, low=0, high=97))
    m.array("unew", N)
    m.array("vnew", N)

    i = Var("i")

    momentum = [
        Assign("du", Index("u", i + 1) - Index("u", i - 1)
               + Index("p", i - 1)),
        Assign("dv", Index("v", i + 1) - Index("v", i - 1)
               + Index("p", i + 1)),
        Assign("cor", (Index("v", i) - Index("u", i)) // 8),
        Assign("adv", (Index("u", i + 1) * Index("v", i - 1)) % 512),
        Store("unew", i, (Index("u", i) * 3 + Var("du") + Var("cor")
                          + Var("adv") // 64) // 4),
        Store("vnew", i, (Index("v", i) * 3 + Var("dv") - Var("cor")
                          + Var("adv") % 64) // 4),
    ]
    continuity = [
        Store("u", i, Index("unew", i)),
        Store("v", i, Index("vnew", i)),
        Store("p", i, (Index("p", i) * 2
                       + Index("unew", i) - Index("vnew", i)) // 2),
    ]
    smooth = [
        Store("p", i, (Index("p", i - 1) + Index("p", i) * 2
                       + Index("p", i + 1)) // 4),
    ]

    m.function("main", [], [
        For("t", 0, 9 * scale, [
            For("i", 1, N - 1, momentum),
            For("i", 1, N - 1, continuity),
            For("i", 1, N - 1, smooth),
        ]),
        Return(Index("p", N // 2)),
    ])
    return m
