"""ijpeg-analog: block-transform image compression.

SPEC95 ``ijpeg``: ~21 iterations per execution at deep nesting (6.4 avg,
9 max) -- 8x8 block transforms inside block-row/column loops inside a
pass loop.  The analog runs a DCT-like separable transform, quantization
and zig-zag energy scan over an image of 8x8 blocks.
"""

from repro.lang import Assign, For, If, Index, Module, Return, Store, Var
from repro.workloads.base import register
from repro.workloads.common import table_init

W = 24               # image side: 4x4 blocks of 8x8
BLOCKS = W // 8


@register("ijpeg", "8x8 block transforms; nesting depth 5-6, trips of "
          "8, regular inner control", "int")
def build(scale=1):
    m = Module("ijpeg")
    m.array("image", W * W, init=table_init(W * W, seed=137, low=0,
                                            high=255))
    m.array("coef", W * W)
    m.array("quant", 64, init=[1 + (u + v) for u in range(8)
                               for v in range(8)])
    m.scalar("energy", 0)

    by, bx, u, x, y = Var("by"), Var("bx"), Var("u"), Var("x"), Var("y")
    base = (by * 8) * W + bx * 8

    # Row transform: coef[u][x] accumulates image[y][x] * basis(u, y).
    row_pass = For("u", 0, 8, [
        For("x", 0, 8, [
            Assign("acc", 0),
            For("y", 0, 8, [
                Assign("basis", ((u * y * 3) % 7) - 3),
                Assign("acc", Var("acc")
                       + Index("image", base + y * W + x) * Var("basis")),
            ]),
            Store("coef", base + u * W + x, Var("acc") // 8),
        ]),
    ])
    quantize = For("u", 0, 8, [
        For("x", 0, 8, [
            Assign("q", Index("coef", base + u * W + x)
                   // Index("quant", u * 8 + x)),
            If(Var("q") < 0, [Assign("q", 0 - Var("q"))]),
            Store("coef", base + u * W + x, Var("q")),
            Assign("energy", Var("energy") + Var("q")),
        ]),
    ])

    m.function("main", [], [
        For("pass_", 0, 7 * scale, [
            For("by", 0, BLOCKS, [
                For("bx", 0, BLOCKS, [row_pass, quantize]),
            ]),
            # Smooth the image between passes (new data, same shape).
            For("x", 0, W * W, [
                Store("image", Var("x"),
                      (Index("image", Var("x")) * 3
                       + Index("coef", Var("x"))) % 256),
            ]),
        ]),
        Return(Var("energy")),
    ])
    return m
