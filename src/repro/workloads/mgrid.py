"""mgrid-analog: multigrid V-cycles.

SPEC95 ``mgrid``: ~29 iterations per execution, nesting ~5 (max 6),
large iteration bodies.  The analog runs V-cycles over a three-level
1D grid hierarchy (fine 32, mid 16, coarse 8): relaxation sweeps per
level, restriction down and prolongation up.
"""

from repro.lang import Assign, CallExpr, ExprStmt, For, Index, Module, \
    Return, Store, Var
from repro.workloads.base import register
from repro.workloads.common import table_init

FINE, MID, COARSE = 66, 34, 18       # includes boundary cells


@register("mgrid", "multigrid V-cycles; high trip counts on the fine "
          "level, nesting 4-5", "fp")
def build(scale=1):
    m = Module("mgrid")
    m.array("fine", FINE, init=table_init(FINE, seed=61, low=0, high=99))
    m.array("rhs", FINE, init=table_init(FINE, seed=67, low=0, high=20))
    m.array("mid", MID)
    m.array("coarse", COARSE)

    i = Var("i")

    m.function("relax_fine", ["sweeps"], [
        For("s", 0, Var("sweeps"), [
            For("i", 1, FINE - 1, [
                Store("fine", i,
                      (Index("fine", i - 1) + Index("fine", i + 1)
                       + Index("rhs", i) * 2) // 4),
            ]),
        ]),
        Return(0),
    ])
    m.function("restrict_down", [], [
        For("i", 1, MID - 1, [
            Store("mid", i,
                  (Index("fine", i * 2 - 1) + Index("fine", i * 2) * 2
                   + Index("fine", i * 2 + 1)) // 4),
        ]),
        For("i", 1, COARSE - 1, [
            Store("coarse", i,
                  (Index("mid", i * 2 - 1) + Index("mid", i * 2) * 2
                   + Index("mid", i * 2 + 1)) // 4),
        ]),
        Return(0),
    ])
    m.function("solve_coarse", [], [
        For("s", 0, 4, [
            For("i", 1, COARSE - 1, [
                Store("coarse", i,
                      (Index("coarse", i - 1)
                       + Index("coarse", i + 1)) // 2),
            ]),
        ]),
        Return(0),
    ])
    m.function("prolong_up", [], [
        For("i", 1, MID - 1, [
            Store("mid", i,
                  Index("mid", i) + Index("coarse", i // 2)),
        ]),
        For("i", 1, FINE - 1, [
            Store("fine", i,
                  Index("fine", i) + Index("mid", i // 2)),
        ]),
        Return(0),
    ])

    m.function("main", [], [
        For("cycle", 0, 12 * scale, [
            ExprStmt(CallExpr("relax_fine", 2)),
            ExprStmt(CallExpr("restrict_down")),
            ExprStmt(CallExpr("solve_coarse")),
            ExprStmt(CallExpr("prolong_up")),
            ExprStmt(CallExpr("relax_fine", 1)),
        ]),
        Return(Index("fine", FINE // 2)),
    ])
    return m
