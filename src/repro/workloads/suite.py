"""The 18-workload suite mirroring the paper's SPEC95 table order."""

# Importing the modules registers the workloads.
import repro.workloads.applu      # noqa: F401
import repro.workloads.apsi       # noqa: F401
import repro.workloads.compress   # noqa: F401
import repro.workloads.fpppp      # noqa: F401
import repro.workloads.gcc        # noqa: F401
import repro.workloads.go         # noqa: F401
import repro.workloads.hydro2d    # noqa: F401
import repro.workloads.ijpeg      # noqa: F401
import repro.workloads.li         # noqa: F401
import repro.workloads.m88ksim    # noqa: F401
import repro.workloads.mgrid      # noqa: F401
import repro.workloads.perl       # noqa: F401
import repro.workloads.su2cor     # noqa: F401
import repro.workloads.swim       # noqa: F401
import repro.workloads.tomcatv    # noqa: F401
import repro.workloads.turb3d     # noqa: F401
import repro.workloads.vortex     # noqa: F401
import repro.workloads.wave5      # noqa: F401

from repro.workloads.base import get

#: Table order used throughout the paper.
SUITE_ORDER = (
    "applu", "apsi", "compress", "fpppp", "gcc", "go", "hydro2d",
    "ijpeg", "li", "m88ksim", "mgrid", "perl", "su2cor", "swim",
    "tomcatv", "turb3d", "vortex", "wave5",
)


def suite():
    """The workloads in the paper's table order."""
    return [get(name) for name in SUITE_ORDER]


def integer_suite():
    return [w for w in suite() if w.category == "int"]


def fp_suite():
    return [w for w in suite() if w.category == "fp"]
