"""wave5-analog: particle-in-cell plasma simulation.

SPEC95 ``wave5``: high trip counts (~56 iterations per execution) at
nesting ~3, and a 99.95% control-speculation hit ratio in the paper's
Table 2.  The analog alternates a particle push (gather field, move,
deposit charge) with a field solve over the grid.
"""

from repro.lang import Assign, For, Index, Module, Return, Store, Var
from repro.workloads.base import register
from repro.workloads.common import table_init

NPART = 56
NGRID = 48


@register("wave5", "particle-in-cell; ~50 iterations/execution, "
          "nesting 2-3, regular control", "fp")
def build(scale=1):
    m = Module("wave5")
    m.array("pos", NPART, init=table_init(NPART, seed=79, low=0,
                                          high=NGRID - 1))
    m.array("vel", NPART, init=table_init(NPART, seed=83, low=0, high=9))
    m.array("field", NGRID, init=table_init(NGRID, seed=89, low=0,
                                            high=40))
    m.array("charge", NGRID)

    pp, g = Var("pp"), Var("g")

    push = [
        Assign("cell", Index("pos", pp) % NGRID),
        Assign("f", Index("field", Var("cell"))),
        Assign("nv", (Index("vel", pp) * 7 + Var("f")) // 8),
        Store("vel", pp, Var("nv")),
        Store("pos", pp, (Index("pos", pp) + Var("nv")) % NGRID),
        Store("charge", Var("cell"), Index("charge", Var("cell")) + 1),
    ]
    solve = [
        Store("field", g,
              (Index("field", (g - 1 + NGRID) % NGRID)
               + Index("field", (g + 1) % NGRID)
               + Index("charge", g) * 2) // 4),
        Store("charge", g, 0),
    ]

    m.function("main", [], [
        For("step", 0, 14 * scale, [
            For("pp", 0, NPART, push),
            For("g", 0, NGRID, solve),
        ]),
        Return(Index("field", 3)),
    ])
    return m
