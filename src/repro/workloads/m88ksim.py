"""m88ksim-analog: an instruction-set simulator simulating a guest CPU.

SPEC95 ``m88ksim`` interprets Motorola 88k binaries: its profile is a
hot fetch-decode-execute loop with *tiny* iterations (~40 instructions,
the smallest in Table 1) and shallow nesting (~2).  The analog interprets
a guest machine (accumulator ISA, encoded as op*1000+operand words in an
array) running a bubble-sort guest program -- a simulator inside the
simulator, exactly the paper's structure.
"""

from repro.lang import (
    Assign,
    Break,
    For,
    If,
    Index,
    Module,
    Return,
    Store,
    Var,
    While,
)
from repro.workloads.base import register
from repro.workloads.common import table_init

# Guest opcodes (word = op * 1000 + operand).
G_LOAD, G_STORE, G_LOADI, G_ADD, G_SUB, G_JMP, G_JGE, G_HALT = range(1, 9)

GUEST_DATA = 100          # guest memory: data segment base
N_ELEMS = 10


def _guest_sort_program():
    """Bubble sort over guest memory [GUEST_DATA, GUEST_DATA+N)."""
    # Guest registers are memory cells: i at 90, j at 91, tmp at 92.
    I, J, TMP = 90, 91, 92

    def w(op, operand=0):
        return op * 1000 + operand

    prog = []

    def emit(op, operand=0):
        prog.append(w(op, operand))
        return len(prog) - 1

    # for i = 0 .. N-2:  for j = 0 .. N-2-i: compare/swap j, j+1
    emit(G_LOADI, 0)
    emit(G_STORE, I)
    outer = len(prog)
    emit(G_LOADI, 0)
    emit(G_STORE, J)
    inner = len(prog)
    # acc = mem[data+j] - mem[data+j+1]  (guest indexing is indirect
    # through cell 93 which holds data+j; simplified: self-modifying
    # loads are avoided by bounded unindexed compare via helper cells)
    emit(G_LOAD, 93)                  # placeholder; patched below
    patch_load_a = len(prog) - 1
    emit(G_SUB, 94)
    patch_sub_b = len(prog) - 1
    jge_skip = emit(G_JGE, 0)         # if a-b >= 0 -> swap needed? no:
    #                                   ascending sort: swap when a > b
    emit(G_JMP, 0)
    patch_noswap = len(prog) - 1
    prog[jge_skip] = w(G_JGE, len(prog))
    # swap cells 93/94 back into memory
    emit(G_LOAD, 93)
    emit(G_STORE, 95)
    emit(G_LOAD, 94)
    emit(G_STORE, 93)
    emit(G_LOAD, 95)
    emit(G_STORE, 94)
    prog[patch_noswap] = w(G_JMP, len(prog))
    # j += 1; if j < N-1 -> inner
    emit(G_LOAD, J)
    emit(G_ADD, 98)                   # cell 98 holds constant 1
    emit(G_STORE, J)
    emit(G_SUB, 97)                   # cell 97 holds N-1
    jge_done = emit(G_JGE, 0)
    emit(G_JMP, inner)
    prog[jge_done] = w(G_JGE, len(prog))
    # i += 1; if i < N-1 -> outer
    emit(G_LOAD, I)
    emit(G_ADD, 98)
    emit(G_STORE, I)
    emit(G_SUB, 97)
    jge_halt = emit(G_JGE, 0)
    emit(G_JMP, outer)
    prog[jge_halt] = w(G_JGE, len(prog))
    emit(G_HALT)
    # The "indexed" access above is approximated: cells 93/94 are staged
    # by the host wrapper before each inner-loop pass (see main), which
    # keeps the guest ISA trivial while preserving the interpreter's
    # fetch-decode-execute control structure.
    return prog, patch_load_a, patch_sub_b


@register("m88ksim", "CPU simulator-in-simulator; tiny ~40-instruction "
          "iterations, shallow nesting", "int")
def build(scale=1):
    m = Module("m88ksim")
    guest_prog, _, _ = _guest_sort_program()
    m.array("gmem", 256, init=guest_prog
            + [0] * (GUEST_DATA - len(guest_prog))
            + table_init(N_ELEMS, seed=101, low=0, high=99))
    m.scalar("acc", 0)
    m.scalar("gpc", 0)
    m.scalar("steps", 0)

    op, arg = Var("op"), Var("arg")

    decode_execute = [
        Assign("word", Index("gmem", Var("gpc"))),
        Assign("op", Var("word") // 1000),
        Assign("arg", Var("word") % 1000),
        Assign("gpc", Var("gpc") + 1),
        Assign("steps", Var("steps") + 1),
        If(op.eq(G_LOAD), [Assign("acc", Index("gmem", arg))], [
            If(op.eq(G_STORE), [Store("gmem", arg, Var("acc"))], [
                If(op.eq(G_LOADI), [Assign("acc", arg)], [
                    If(op.eq(G_ADD),
                       [Assign("acc", Var("acc") + Index("gmem", arg))], [
                        If(op.eq(G_SUB),
                           [Assign("acc",
                                   Var("acc") - Index("gmem", arg))], [
                            If(op.eq(G_JMP), [Assign("gpc", arg)], [
                                If((op.eq(G_JGE))
                                   & (Var("acc") >= 0).ne(0),
                                   [Assign("gpc", arg)],
                                   [If(op.eq(G_HALT),
                                       [Assign("halted", 1)])]),
                            ]),
                        ]),
                    ]),
                ]),
            ]),
        ]),
    ]

    m.function("main", [], [
        # Constants the guest program expects.
        Store("gmem", 97, N_ELEMS - 1),
        Store("gmem", 98, 1),
        For("run", 0, 8 * scale, [
            # Stage the first two data cells for the simplified compare
            # (the guest itself rotates memory as it sorts).
            Store("gmem", 93, Index("gmem", GUEST_DATA
                                    + Var("run") % N_ELEMS)),
            Store("gmem", 94, Index("gmem", GUEST_DATA
                                    + (Var("run") + 1) % N_ELEMS)),
            Assign("gpc", 0),
            Assign("acc", 0),
            Assign("halted", 0),
            # The simulator timeslices the guest, as m88ksim does to
            # poll its debug console: the dispatch loop's executions
            # stay short (~8 guest instructions each).
            While(Var("halted").eq(0) & (Var("gpc") < 90), [
                Assign("slice_", 0),
                While((Var("slice_") < 8).ne(0)
                      & Var("halted").eq(0), decode_execute
                      + [Assign("slice_", Var("slice_") + 1)]),
            ]),
        ]),
        Return(Var("steps")),
    ])
    return m
