"""perl-analog: line-oriented text scanning and associative arrays.

SPEC95 ``perl``: the flattest profile in Table 1 -- nesting 1.35 (the
suite minimum), ~3.1 iterations per execution and tiny bodies (~47
instructions), giving the paper's lowest 4-TU TPC (1.17) with a modest
60% hit ratio.  The analog processes text line by line: per line a short
scan, short data-dependent word loops, a hash update per word and a
substitution pass -- lots of brief, flat loop executions.
"""

from repro.lang import (
    Assign,
    For,
    If,
    Index,
    Module,
    Return,
    Store,
    Var,
    While,
)
from repro.workloads.base import register
from repro.util.rng import Xorshift64

LINE_LEN = 14
NLINES = 40
TEXT_LEN = LINE_LEN * NLINES
HSIZE = 64
SPACE = 0


def _make_text():
    """Lines of short words (1-5 chars) separated by single spaces."""
    gen = Xorshift64(149)
    text = []
    for _ in range(NLINES):
        line = []
        while len(line) < LINE_LEN - 6:
            for _ in range(gen.randint(1, 5)):
                line.append(gen.randint(1, 25))
            line.append(SPACE)
        line.extend([SPACE] * (LINE_LEN - len(line)))
        text.extend(line[:LINE_LEN])
    return text


@register("perl", "line-oriented text processing; flat, short loops, "
          "tiny iteration bodies", "int")
def build(scale=1):
    m = Module("perl")
    m.array("text", TEXT_LEN, init=_make_text())
    m.array("counts", HSIZE)
    m.scalar("words", 0)
    m.scalar("subs", 0)

    ln, i = Var("ln"), Var("i")

    process_line = [
        Assign("base", ln * LINE_LEN),
        Assign("i", 0),
        # Word scan: one short, flat loop per word.
        While(Var("i") < LINE_LEN, [
            If(Index("text", Var("base") + Var("i")).eq(SPACE), [
                Assign("i", Var("i") + 1),
            ], [
                Assign("h", 0),
                While((Var("i") < LINE_LEN).ne(0)
                      & Index("text", Var("base") + Var("i")).ne(SPACE), [
                    Assign("h", (Var("h") * 31
                                 + Index("text", Var("base") + Var("i")))
                           % HSIZE),
                    Assign("i", Var("i") + 1),
                ]),
                Store("counts", Var("h"),
                      Index("counts", Var("h")) + 1),
                Assign("words", Var("words") + 1),
            ]),
        ]),
        # s/5/7/ within the line: another short flat loop.
        For("i", 0, LINE_LEN, [
            If(Index("text", Var("base") + i).eq(5), [
                Store("text", Var("base") + i, 7),
                Assign("subs", Var("subs") + 1),
            ]),
        ]),
    ]

    # Passes are laid out as straight-line repetitions (as perl's main
    # interpreter loop is spread over many distinct opcode handlers):
    # the loops stay shallow, matching perl's 1.35 average nesting.
    def one_pass(p):
        return [
            Assign("pass_", p),
            For("ln", 0, NLINES, process_line),
            For("i", 0, 16, [
                If(Index("counts", Var("i") + (p * 16) % HSIZE) > 100,
                   [Store("counts", Var("i") + (p * 16) % HSIZE, 0)]),
            ]),
            Store("text", (p * 13) % TEXT_LEN, (p % 20) + 1),
        ]

    body = []
    for p in range(5 * scale):
        body.extend(one_pass(p))
    body.append(Return(Var("words") + Var("subs")))
    m.function("main", [], body)
    return m
