"""apsi-analog: mesoscale atmospheric transport.

SPEC95 ``apsi``: ~10.8 iterations per execution at nesting ~3 (max 5).
The analog advects a scalar field over a (k, j, i) box with ~10-trip
loops per dimension plus a vertical diffusion pass.
"""

from repro.lang import Assign, For, Index, Module, Return, Store, Var
from repro.workloads.base import register
from repro.workloads.common import table_init

NK, NJ, NI = 8, 10, 10
SIZE = NK * NJ * NI


@register("apsi", "atmospheric transport; ~10 iterations/execution, "
          "nesting 3-4", "fp")
def build(scale=1):
    m = Module("apsi")
    m.array("q", SIZE, init=table_init(SIZE, seed=47, low=0, high=80))
    m.array("w", SIZE, init=table_init(SIZE, seed=53, low=1, high=9))

    k, j, i = Var("k"), Var("j"), Var("i")
    cell = (k * NJ + j) * NI + i

    advect = [
        Assign("up", Index("q", (cell - NI * NJ + SIZE) % SIZE)),
        Assign("dn", Index("q", (cell + NI * NJ) % SIZE)),
        Store("q", cell,
              (Index("q", cell) * 6 + Var("up") + Var("dn")
               + Index("w", cell)) // 8),
    ]
    diffuse = [
        Store("q", cell,
              (Index("q", cell) * 3
               + Index("q", (cell + 1) % SIZE)) // 4),
    ]

    m.function("main", [], [
        For("t", 0, 10 * scale, [
            For("k", 0, NK, [For("j", 0, NJ, [For("i", 0, NI, advect)])]),
            For("k", 1, NK - 1, [For("j", 0, NJ,
                                     [For("i", 0, NI, diffuse)])]),
        ]),
        Return(Index("q", SIZE // 2)),
    ])
    return m
