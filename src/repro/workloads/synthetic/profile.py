"""Workload profiles: the parameter space of the synthetic generator.

A :class:`WorkloadProfile` describes a *family* of programs by the
distributions that shaped the paper's Table 1 — nesting depth,
iteration (trip) counts, loop-exit irregularity, branch density,
call/recursion mix, and array working-set size.  The generator
(:mod:`repro.workloads.synthetic.generator`) draws one concrete program
from a family given a seed; ``synth-<profile>-<seed>`` therefore names
a reproducible workload, and sweeping seeds explores the family
(``runner characterize``).

Discrete distributions are tuples of ``(value, weight)`` pairs;
trip-count distributions use ``((low, high), weight)`` pairs sampled
uniformly inside the chosen range.  Everything is a plain frozen
dataclass so profiles hash, compare, and validate eagerly.
"""

from dataclasses import dataclass
from typing import Tuple


def _check_weighted(name, pairs):
    if not pairs:
        raise ValueError("%s must not be empty" % name)
    for value, weight in pairs:
        if not isinstance(weight, int) or weight <= 0:
            raise ValueError("%s weights must be positive ints, got %r"
                             % (name, weight))
    return pairs


def _check_probability(name, value):
    if not 0.0 <= value <= 1.0:
        raise ValueError("%s must be in [0, 1], got %r" % (name, value))
    return value


@dataclass(frozen=True)
class WorkloadProfile:
    """The knobs a synthetic workload family is drawn from.

    ``nesting_depth`` and ``trip_count`` are weighted distributions
    sampled per loop nest / per loop level; ``exit_irregularity`` is the
    probability a loop gets a data-dependent early exit (a ``rand()``
    guarded ``Break``); ``branch_density`` the probability a body slot
    becomes a data-dependent ``If``; ``call_mix`` the probability an
    innermost body calls a helper function; ``recursion_depth`` bounds
    the depth of the recursive helper (0 disables recursion entirely).
    ``working_set`` is the size in words of each global data array.
    ``target_instructions`` is the approximate dynamic instruction count
    of one repetition at ``scale=1``; the generator sizes trip counts so
    every generated program provably halts within its budget.
    """

    name: str
    description: str = ""
    #: weighted (depth, weight) choices, one draw per loop nest
    nesting_depth: Tuple = ((1, 3), (2, 4), (3, 2))
    #: weighted ((low, high), weight) ranges, one draw per loop level
    trip_count: Tuple = (((2, 4), 2), ((5, 16), 4), ((20, 64), 2))
    exit_irregularity: float = 0.2
    branch_density: float = 0.3
    call_mix: float = 0.25
    recursion_depth: int = 0
    working_set: int = 256
    num_arrays: int = 2
    #: top-level loop nests (one generated function each)
    num_nests: int = 4
    #: (low, high) arithmetic statements per loop body
    body_ops: Tuple[int, int] = (2, 6)
    #: approximate dynamic instructions per repetition (scale unit)
    target_instructions: int = 120_000
    default_max_instructions: int = 2_000_000
    category: str = "int"

    def __post_init__(self):
        if not self.name or any(c.isspace() for c in self.name):
            raise ValueError("profile name must be a non-empty token")
        _check_weighted("nesting_depth", self.nesting_depth)
        for depth, _weight in self.nesting_depth:
            if not isinstance(depth, int) or depth < 1:
                raise ValueError("nesting depths must be ints >= 1")
        _check_weighted("trip_count", self.trip_count)
        for (low, high), _weight in self.trip_count:
            if not 2 <= low <= high:
                raise ValueError("trip ranges need 2 <= low <= high, "
                                 "got (%r, %r)" % (low, high))
        _check_probability("exit_irregularity", self.exit_irregularity)
        _check_probability("branch_density", self.branch_density)
        _check_probability("call_mix", self.call_mix)
        if self.recursion_depth < 0:
            raise ValueError("recursion_depth must be >= 0")
        if self.working_set < 4:
            raise ValueError("working_set must be >= 4 words")
        if self.num_arrays < 1:
            raise ValueError("num_arrays must be >= 1")
        if self.num_nests < 1:
            raise ValueError("num_nests must be >= 1")
        low, high = self.body_ops
        if not 1 <= low <= high:
            raise ValueError("body_ops needs 1 <= low <= high")
        if self.target_instructions < 1_000:
            raise ValueError("target_instructions must be >= 1000")
        if self.default_max_instructions < 4 * self.target_instructions:
            raise ValueError(
                "default_max_instructions must be >= 4x "
                "target_instructions (headroom over the generator's "
                "expected-cost model)")
        if self.category not in ("int", "fp"):
            raise ValueError("category must be 'int' or 'fp'")

    @property
    def max_nesting(self):
        return max(depth for depth, _ in self.nesting_depth)


#: The built-in profile families; ``synth-<name>-<seed>`` resolves here.
PROFILES = {}


def _profile(**kwargs):
    profile = WorkloadProfile(**kwargs)
    if profile.name in PROFILES:
        raise ValueError("duplicate profile %r" % profile.name)
    PROFILES[profile.name] = profile
    return profile


_profile(
    name="baseline",
    description="moderate everything: the suite's centre of mass",
)

_profile(
    name="deep-nest",
    description="go/apsi-like: deep loop nests with short trips and "
                "bounded recursion",
    nesting_depth=((3, 2), (4, 4), (5, 3), (6, 1)),
    trip_count=(((2, 4), 4), ((5, 9), 3)),
    exit_irregularity=0.3,
    branch_density=0.35,
    call_mix=0.3,
    recursion_depth=4,
    num_nests=3,
    body_ops=(1, 4),
)

_profile(
    name="wide-flat",
    description="swim/tomcatv-like: shallow regular nests with long "
                "trips and dense array traffic",
    nesting_depth=((1, 3), (2, 5)),
    trip_count=(((24, 64), 4), ((80, 200), 2)),
    exit_irregularity=0.02,
    branch_density=0.1,
    call_mix=0.1,
    working_set=512,
    num_arrays=3,
    body_ops=(3, 8),
    category="fp",
)

_profile(
    name="irregular",
    description="gcc-like: branchy bodies, data-dependent early exits, "
                "unpredictable trip counts",
    nesting_depth=((1, 2), (2, 4), (3, 3)),
    trip_count=(((2, 6), 3), ((7, 24), 3), ((30, 90), 1)),
    exit_irregularity=0.6,
    branch_density=0.6,
    call_mix=0.3,
    num_nests=6,
)

_profile(
    name="call-heavy",
    description="li/perl-like: loops feeding helper calls and "
                "recursion; loops stack across frames",
    nesting_depth=((1, 3), (2, 4), (3, 2)),
    trip_count=(((2, 5), 3), ((6, 16), 4)),
    exit_irregularity=0.2,
    branch_density=0.3,
    call_mix=0.75,
    recursion_depth=5,
    num_nests=4,
    body_ops=(1, 4),
)

_profile(
    name="tiny-loops",
    description="m88ksim-like: many nests of tiny trip counts, mostly "
                "single-digit iterations",
    nesting_depth=((1, 4), (2, 4), (3, 1)),
    trip_count=(((2, 4), 5), ((5, 8), 2)),
    exit_irregularity=0.25,
    branch_density=0.4,
    call_mix=0.2,
    num_nests=8,
    body_ops=(1, 3),
)


def get_profile(name):
    """The built-in profile called *name*."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError("unknown profile %r (known: %s)"
                       % (name, ", ".join(sorted(PROFILES)))) from None


def profile_names():
    return sorted(PROFILES)
