"""Workload profiles: the parameter space of the synthetic generator.

A :class:`WorkloadProfile` describes a *family* of programs by the
distributions that shaped the paper's Table 1 — nesting depth,
iteration (trip) counts, loop-exit irregularity, branch density,
call/recursion mix, and array working-set size.  The generator
(:mod:`repro.workloads.synthetic.generator`) draws one concrete program
from a family given a seed; ``synth-<profile>-<seed>`` therefore names
a reproducible workload, and sweeping seeds explores the family
(``runner characterize``).

Discrete distributions are tuples of ``(value, weight)`` pairs;
trip-count distributions use ``((low, high), weight)`` pairs sampled
uniformly inside the chosen range.  Everything is a plain frozen
dataclass so profiles hash, compare, and validate eagerly.  Validation
failures always name the offending field *and* the offending value
(``nesting_depth[1]=(0, 4): ...``), so a rejected hand-written or
mutated profile is diagnosable from the message alone.

Profiles round-trip through plain dicts and canonical JSON
(:meth:`WorkloadProfile.to_json` / :meth:`WorkloadProfile.from_json`);
:func:`profile_digest` hashes that canonical form minus the name,
which is how the adversarial search (:mod:`repro.search`) derives
content-addressed names for mutated candidate profiles.
"""

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Tuple


class ProfileValidationError(ValueError):
    """A :class:`WorkloadProfile` field failed validation.

    Always carries the offending ``field`` name and ``value`` so
    callers (and error messages) can point at exactly what to fix.
    """

    def __init__(self, field, value, requirement):
        self.field = field
        self.value = value
        super().__init__("%s=%r: %s" % (field, value, requirement))


def _check_weighted(name, pairs):
    if not isinstance(pairs, tuple) or not pairs:
        raise ProfileValidationError(
            name, pairs, "must be a non-empty tuple of (value, weight) "
            "pairs")
    for i, pair in enumerate(pairs):
        if not isinstance(pair, tuple) or len(pair) != 2:
            raise ProfileValidationError(
                "%s[%d]" % (name, i), pair,
                "must be a (value, weight) pair")
        _value, weight = pair
        if not isinstance(weight, int) or weight <= 0:
            raise ProfileValidationError(
                "%s[%d]" % (name, i), pair,
                "weights must be positive ints")
    return pairs


def _check_probability(name, value):
    if not isinstance(value, (int, float)) \
            or not 0.0 <= value <= 1.0:
        raise ProfileValidationError(name, value, "must be in [0, 1]")
    return value


@dataclass(frozen=True)
class WorkloadProfile:
    """The knobs a synthetic workload family is drawn from.

    ``nesting_depth`` and ``trip_count`` are weighted distributions
    sampled per loop nest / per loop level; ``exit_irregularity`` is the
    probability a loop gets a data-dependent early exit (a ``rand()``
    guarded ``Break``); ``branch_density`` the probability a body slot
    becomes a data-dependent ``If``; ``call_mix`` the probability an
    innermost body calls a helper function; ``recursion_depth`` bounds
    the depth of the recursive helper (0 disables recursion entirely).
    ``working_set`` is the size in words of each global data array.
    ``target_instructions`` is the approximate dynamic instruction count
    of one repetition at ``scale=1``; the generator sizes trip counts so
    every generated program provably halts within its budget.
    """

    name: str
    description: str = ""
    #: weighted (depth, weight) choices, one draw per loop nest
    nesting_depth: Tuple = ((1, 3), (2, 4), (3, 2))
    #: weighted ((low, high), weight) ranges, one draw per loop level
    trip_count: Tuple = (((2, 4), 2), ((5, 16), 4), ((20, 64), 2))
    exit_irregularity: float = 0.2
    branch_density: float = 0.3
    call_mix: float = 0.25
    recursion_depth: int = 0
    working_set: int = 256
    num_arrays: int = 2
    #: top-level loop nests (one generated function each)
    num_nests: int = 4
    #: (low, high) arithmetic statements per loop body
    body_ops: Tuple[int, int] = (2, 6)
    #: approximate dynamic instructions per repetition (scale unit)
    target_instructions: int = 120_000
    default_max_instructions: int = 2_000_000
    category: str = "int"

    def __post_init__(self):
        if not isinstance(self.name, str) or not self.name \
                or any(c.isspace() for c in self.name):
            raise ProfileValidationError(
                "name", self.name, "must be a non-empty token without "
                "whitespace")
        _check_weighted("nesting_depth", self.nesting_depth)
        for i, (depth, _weight) in enumerate(self.nesting_depth):
            if not isinstance(depth, int) or depth < 1:
                raise ProfileValidationError(
                    "nesting_depth[%d]" % i, (depth, _weight),
                    "depths must be ints >= 1")
        _check_weighted("trip_count", self.trip_count)
        for i, (bounds, _weight) in enumerate(self.trip_count):
            if not isinstance(bounds, tuple) or len(bounds) != 2 \
                    or not all(isinstance(b, int) for b in bounds) \
                    or not 2 <= bounds[0] <= bounds[1]:
                raise ProfileValidationError(
                    "trip_count[%d]" % i, (bounds, _weight),
                    "ranges need ints 2 <= low <= high")
        _check_probability("exit_irregularity", self.exit_irregularity)
        _check_probability("branch_density", self.branch_density)
        _check_probability("call_mix", self.call_mix)
        if not isinstance(self.recursion_depth, int) \
                or self.recursion_depth < 0:
            raise ProfileValidationError(
                "recursion_depth", self.recursion_depth,
                "must be an int >= 0")
        if not isinstance(self.working_set, int) or self.working_set < 4:
            raise ProfileValidationError(
                "working_set", self.working_set,
                "must be an int >= 4 words")
        if not isinstance(self.num_arrays, int) or self.num_arrays < 1:
            raise ProfileValidationError(
                "num_arrays", self.num_arrays, "must be an int >= 1")
        if not isinstance(self.num_nests, int) or self.num_nests < 1:
            raise ProfileValidationError(
                "num_nests", self.num_nests, "must be an int >= 1")
        if not isinstance(self.body_ops, tuple) \
                or len(self.body_ops) != 2 \
                or not all(isinstance(b, int) for b in self.body_ops) \
                or not 1 <= self.body_ops[0] <= self.body_ops[1]:
            raise ProfileValidationError(
                "body_ops", self.body_ops,
                "needs ints 1 <= low <= high")
        if not isinstance(self.target_instructions, int) \
                or self.target_instructions < 1_000:
            raise ProfileValidationError(
                "target_instructions", self.target_instructions,
                "must be an int >= 1000")
        if not isinstance(self.default_max_instructions, int) \
                or self.default_max_instructions \
                < 4 * self.target_instructions:
            raise ProfileValidationError(
                "default_max_instructions", self.default_max_instructions,
                "must be an int >= 4x target_instructions (headroom "
                "over the generator's expected-cost model)")
        if self.category not in ("int", "fp"):
            raise ProfileValidationError(
                "category", self.category, "must be 'int' or 'fp'")

    @property
    def max_nesting(self):
        return max(depth for depth, _ in self.nesting_depth)

    # -- serialization -----------------------------------------------------

    def to_dict(self):
        """A plain-JSON-types dict that :meth:`from_dict` inverts.

        Weighted distributions become nested lists (JSON has no
        tuples); :meth:`from_dict` restores the tuple shapes, so the
        round trip is exact.
        """
        return {
            "name": self.name,
            "description": self.description,
            "nesting_depth": [[d, w] for d, w in self.nesting_depth],
            "trip_count": [[[lo, hi], w]
                           for (lo, hi), w in self.trip_count],
            "exit_irregularity": self.exit_irregularity,
            "branch_density": self.branch_density,
            "call_mix": self.call_mix,
            "recursion_depth": self.recursion_depth,
            "working_set": self.working_set,
            "num_arrays": self.num_arrays,
            "num_nests": self.num_nests,
            "body_ops": list(self.body_ops),
            "target_instructions": self.target_instructions,
            "default_max_instructions": self.default_max_instructions,
            "category": self.category,
        }

    @classmethod
    def from_dict(cls, payload):
        """The exact inverse of :meth:`to_dict` (validates eagerly);
        raises :class:`ValueError` on malformed payloads."""
        if not isinstance(payload, dict):
            raise ValueError("profile payload must be an object, got %r"
                             % type(payload).__name__)
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError("unknown profile field(s): %s"
                             % ", ".join(unknown))
        kwargs = dict(payload)
        try:
            if "nesting_depth" in kwargs:
                kwargs["nesting_depth"] = tuple(
                    (d, w) for d, w in kwargs["nesting_depth"])
            if "trip_count" in kwargs:
                kwargs["trip_count"] = tuple(
                    ((int(lo), int(hi)), w)
                    for (lo, hi), w in kwargs["trip_count"])
            if "body_ops" in kwargs:
                low, high = kwargs["body_ops"]
                kwargs["body_ops"] = (low, high)
        except (TypeError, ValueError) as exc:
            raise ValueError("malformed profile payload: %s" % exc) \
                from None
        return cls(**kwargs)

    def to_json(self):
        """Canonical JSON (sorted keys, no whitespace variance)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text):
        """The inverse of :meth:`to_json`; raises
        :class:`ValueError` on unreadable input."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError("unreadable profile JSON: %s" % exc) \
                from None
        return cls.from_dict(payload)


def profile_digest(profile):
    """Content digest of *profile*'s knobs, ignoring name and
    description.

    Two profiles that shape identical program families digest
    identically however they are labelled; the adversarial search
    names mutated candidates ``cand<digest>`` so every distinct knob
    setting gets exactly one registry name.
    """
    payload = profile.to_dict()
    del payload["name"]
    del payload["description"]
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("ascii")).hexdigest()[:12]


#: The built-in profile families; ``synth-<name>-<seed>`` resolves here.
PROFILES = {}


def _profile(**kwargs):
    profile = WorkloadProfile(**kwargs)
    if profile.name in PROFILES:
        raise ValueError("duplicate profile %r" % profile.name)
    PROFILES[profile.name] = profile
    return profile


_profile(
    name="baseline",
    description="moderate everything: the suite's centre of mass",
)

_profile(
    name="deep-nest",
    description="go/apsi-like: deep loop nests with short trips and "
                "bounded recursion",
    nesting_depth=((3, 2), (4, 4), (5, 3), (6, 1)),
    trip_count=(((2, 4), 4), ((5, 9), 3)),
    exit_irregularity=0.3,
    branch_density=0.35,
    call_mix=0.3,
    recursion_depth=4,
    num_nests=3,
    body_ops=(1, 4),
)

_profile(
    name="wide-flat",
    description="swim/tomcatv-like: shallow regular nests with long "
                "trips and dense array traffic",
    nesting_depth=((1, 3), (2, 5)),
    trip_count=(((24, 64), 4), ((80, 200), 2)),
    exit_irregularity=0.02,
    branch_density=0.1,
    call_mix=0.1,
    working_set=512,
    num_arrays=3,
    body_ops=(3, 8),
    category="fp",
)

_profile(
    name="irregular",
    description="gcc-like: branchy bodies, data-dependent early exits, "
                "unpredictable trip counts",
    nesting_depth=((1, 2), (2, 4), (3, 3)),
    trip_count=(((2, 6), 3), ((7, 24), 3), ((30, 90), 1)),
    exit_irregularity=0.6,
    branch_density=0.6,
    call_mix=0.3,
    num_nests=6,
)

_profile(
    name="call-heavy",
    description="li/perl-like: loops feeding helper calls and "
                "recursion; loops stack across frames",
    nesting_depth=((1, 3), (2, 4), (3, 2)),
    trip_count=(((2, 5), 3), ((6, 16), 4)),
    exit_irregularity=0.2,
    branch_density=0.3,
    call_mix=0.75,
    recursion_depth=5,
    num_nests=4,
    body_ops=(1, 4),
)

_profile(
    name="tiny-loops",
    description="m88ksim-like: many nests of tiny trip counts, mostly "
                "single-digit iterations",
    nesting_depth=((1, 4), (2, 4), (3, 1)),
    trip_count=(((2, 4), 5), ((5, 8), 2)),
    exit_irregularity=0.25,
    branch_density=0.4,
    call_mix=0.2,
    num_nests=8,
    body_ops=(1, 3),
)


def get_profile(name):
    """The built-in profile called *name*."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError("unknown profile %r (known: %s)"
                       % (name, ", ".join(sorted(PROFILES)))) from None


def profile_names():
    return sorted(PROFILES)
