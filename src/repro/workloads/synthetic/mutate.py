"""Profile perturbation: the move set of the adversarial search.

:func:`mutate_profile` applies one random knob perturbation to a
:class:`~repro.workloads.synthetic.profile.WorkloadProfile` and
:func:`random_profile` samples a fresh valid profile uniformly from
bounded knob ranges -- the restart points of the search's hill
climber and the sample source of the generator fuzz harness.  Both
draw every random number from a caller-supplied
:class:`~repro.util.rng.Xorshift64`, so a fixed seed fixes the whole
move sequence.

Mutations are *valid by construction*: every knob is clamped into the
bounds below before the profile is rebuilt, so a mutated profile never
fails validation.  The bounds also keep candidates cheap to evaluate
(``target_instructions`` stays within :data:`TARGET_BOUNDS`), which is
what lets a 200-candidate search run in seconds instead of hours.

Mutated profiles are renamed to their content digest
(``cand<digest12>``) so the workload registry, trace cache, and sweep
store all key candidates by what they *are*, not by where the search
found them.
"""

from repro.workloads.synthetic.profile import WorkloadProfile, \
    profile_digest

#: Inclusive bounds of each scalar knob a mutation may set.
DEPTH_BOUNDS = (1, 7)
TRIP_BOUNDS = (2, 200)
WEIGHT_BOUNDS = (1, 8)
RECURSION_BOUNDS = (0, 6)
WORKING_SET_BOUNDS = (16, 1024)
NUM_ARRAYS_BOUNDS = (1, 4)
NUM_NESTS_BOUNDS = (1, 10)
BODY_OPS_BOUNDS = (1, 8)
TARGET_BOUNDS = (20_000, 240_000)
#: Distribution knobs carry at most this many weighted entries.
MAX_DIST_ENTRIES = 4

#: Name prefix of digest-named candidate profiles.
CANDIDATE_PREFIX = "cand"


def _clamp(value, bounds):
    low, high = bounds
    return max(low, min(high, value))


def _jitter(draw, value, bounds, step):
    """*value* nudged by up to +-*step*, clamped into *bounds*."""
    return _clamp(value + draw.randint(-step, step), bounds)


def _jitter_prob(draw, value):
    """A probability nudged by up to +-0.15, clamped into [0, 1] and
    rounded so digests stay stable across float formatting."""
    nudged = value + draw.randint(-15, 15) / 100.0
    return round(max(0.0, min(1.0, nudged)), 2)


def _mutate_weighted_values(draw, pairs, value_fn):
    """Resample one entry's value (via *value_fn*) in a weighted
    distribution, possibly growing or shrinking the entry list."""
    pairs = [list(p) for p in pairs]
    roll = draw.randint(0, 9)
    if roll == 0 and len(pairs) < MAX_DIST_ENTRIES:
        pairs.append([value_fn(draw), draw.randint(*WEIGHT_BOUNDS)])
    elif roll == 1 and len(pairs) > 1:
        pairs.pop(draw.randint(0, len(pairs) - 1))
    elif roll <= 5:
        i = draw.randint(0, len(pairs) - 1)
        pairs[i][0] = value_fn(draw)
    else:
        i = draw.randint(0, len(pairs) - 1)
        pairs[i][1] = _jitter(draw, pairs[i][1], WEIGHT_BOUNDS, 3)
    return tuple((value, weight) for value, weight in pairs)


def _random_depth(draw):
    return draw.randint(*DEPTH_BOUNDS)


def _random_trip_range(draw):
    low = draw.randint(TRIP_BOUNDS[0], 64)
    high = draw.randint(low, min(TRIP_BOUNDS[1], low * 4))
    return (low, high)


def _mutate_nesting(draw, p):
    return {"nesting_depth":
            _mutate_weighted_values(draw, p.nesting_depth,
                                    _random_depth)}


def _mutate_trips(draw, p):
    return {"trip_count":
            _mutate_weighted_values(draw, p.trip_count,
                                    _random_trip_range)}


def _mutate_exit(draw, p):
    return {"exit_irregularity": _jitter_prob(draw,
                                              p.exit_irregularity)}


def _mutate_branches(draw, p):
    return {"branch_density": _jitter_prob(draw, p.branch_density)}


def _mutate_calls(draw, p):
    return {"call_mix": _jitter_prob(draw, p.call_mix)}


def _mutate_recursion(draw, p):
    return {"recursion_depth": _jitter(draw, p.recursion_depth,
                                       RECURSION_BOUNDS, 2)}


def _mutate_working_set(draw, p):
    return {"working_set": _jitter(draw, p.working_set,
                                   WORKING_SET_BOUNDS, 128)}


def _mutate_arrays(draw, p):
    return {"num_arrays": _jitter(draw, p.num_arrays,
                                  NUM_ARRAYS_BOUNDS, 1)}


def _mutate_nests(draw, p):
    return {"num_nests": _jitter(draw, p.num_nests,
                                 NUM_NESTS_BOUNDS, 2)}


def _mutate_body_ops(draw, p):
    low = _jitter(draw, p.body_ops[0], BODY_OPS_BOUNDS, 2)
    high = _clamp(_jitter(draw, p.body_ops[1], BODY_OPS_BOUNDS, 2),
                  (low, BODY_OPS_BOUNDS[1]))
    return {"body_ops": (low, high)}


def _mutate_target(draw, p):
    return {"target_instructions":
            _jitter(draw, p.target_instructions, TARGET_BOUNDS,
                    30_000)}


#: The move set, in a fixed order (determinism: a seed picks moves by
#: index).  Each entry maps a (draw, profile) to replacement fields.
MUTATORS = (
    _mutate_nesting,
    _mutate_trips,
    _mutate_exit,
    _mutate_branches,
    _mutate_calls,
    _mutate_recursion,
    _mutate_working_set,
    _mutate_arrays,
    _mutate_nests,
    _mutate_body_ops,
    _mutate_target,
)


class _Draw:
    """Minimal sampling facade over one Xorshift64."""

    def __init__(self, rng):
        self.rng = rng

    def randint(self, low, high):
        return self.rng.randint(low, high)


def _candidate(fields):
    """A digest-named candidate profile built from *fields* (a
    :meth:`~repro.workloads.synthetic.profile.WorkloadProfile.to_dict`
    style dict; tuples welcome where JSON would hold lists).

    The digest ignores name/description, so the name is computed from
    a throwaway labelling and then baked in.
    """
    fields = dict(fields)
    fields["name"] = CANDIDATE_PREFIX
    fields["description"] = "search candidate"
    digest = profile_digest(WorkloadProfile.from_dict(fields))
    fields["name"] = CANDIDATE_PREFIX + digest
    return WorkloadProfile.from_dict(fields)


def as_candidate(profile):
    """*profile* renamed to its content digest (idempotent)."""
    fields = profile.to_dict()
    return _candidate(fields)


def mutate_profile(profile, rng, moves=1):
    """*profile* with *moves* random knob perturbations applied.

    Draws come from *rng* (a :class:`~repro.util.rng.Xorshift64`) in a
    fixed order; the result is always valid (knobs are clamped into
    the module bounds, ``default_max_instructions`` is re-derived with
    16x headroom) and digest-named.
    """
    draw = _Draw(rng)
    fields = profile.to_dict()
    for _ in range(max(1, moves)):
        mutator = MUTATORS[draw.randint(0, len(MUTATORS) - 1)]
        base = WorkloadProfile.from_dict({
            **fields, "name": CANDIDATE_PREFIX,
            "description": "search candidate"})
        fields.update(mutator(draw, base))
        fields["default_max_instructions"] = \
            16 * fields["target_instructions"]
    return _candidate(fields)


def random_profile(rng):
    """A fresh valid profile sampled uniformly from the knob bounds.

    The hill climber's restart source and the fuzz harness's sample
    source; always digest-named and always cheap to trace
    (``target_instructions`` within :data:`TARGET_BOUNDS`).
    """
    draw = _Draw(rng)
    depth_entries = draw.randint(1, 3)
    trip_entries = draw.randint(1, 3)
    target = draw.randint(*TARGET_BOUNDS)
    low = draw.randint(*BODY_OPS_BOUNDS)
    fields = {
        "nesting_depth": tuple(
            (_random_depth(draw), draw.randint(*WEIGHT_BOUNDS))
            for _ in range(depth_entries)),
        "trip_count": tuple(
            (_random_trip_range(draw), draw.randint(*WEIGHT_BOUNDS))
            for _ in range(trip_entries)),
        "exit_irregularity": round(draw.randint(0, 100) / 100.0, 2),
        "branch_density": round(draw.randint(0, 100) / 100.0, 2),
        "call_mix": round(draw.randint(0, 100) / 100.0, 2),
        "recursion_depth": draw.randint(*RECURSION_BOUNDS),
        "working_set": draw.randint(*WORKING_SET_BOUNDS),
        "num_arrays": draw.randint(*NUM_ARRAYS_BOUNDS),
        "num_nests": draw.randint(*NUM_NESTS_BOUNDS),
        "body_ops": (low, draw.randint(low, BODY_OPS_BOUNDS[1])),
        "target_instructions": target,
        "default_max_instructions": 16 * target,
        "category": "int" if draw.randint(0, 1) else "fp",
    }
    return _candidate(fields)
