"""Deterministic random program generator over mini-language ASTs.

:func:`generate_module` draws one program from a
:class:`~repro.workloads.synthetic.profile.WorkloadProfile` given a
seed.  All randomness comes from one host-side
:class:`~repro.util.rng.Xorshift64` consumed in a fixed order, so the
same ``(profile, seed)`` pair always emits an identical module — and
therefore an identical compiled program, trace, and trace-cache key.
Run-time irregularity (data-dependent exits and branches) is
implemented *inside* the generated program through the usual in-language
LCG, exactly like the hand-written analogs.

Every generated program provably halts within its instruction budget:

* every loop has a constant trip count (early ``Break`` only shortens
  executions, recursion depth is a compile-time constant passed down a
  strictly decreasing parameter),
* induction/counter variables are never assignment targets (locals are
  split into a readable scope and a writable subset), and
* trip counts are sized against a calibrated *expected*-cost model
  (:meth:`_Generator._trim_trips`) so one repetition lands near
  ``profile.target_instructions``; the model can undershoot reality by
  a small factor on unlucky draws, which is why profile validation
  demands ``default_max_instructions >= 4 * target_instructions`` of
  headroom (the built-ins keep ~16x).

Generated values are masked to 31 bits on every assignment, keeping the
simulated integers bounded however long the program runs.
"""

from repro.lang import (
    Assign,
    Break,
    CallExpr,
    DoWhile,
    For,
    If,
    Index,
    Module,
    Return,
    Store,
    Var,
    as_expr,
    module_stats,
)
from repro.util.rng import Xorshift64
from repro.workloads.common import LCG_MASK, add_lcg, rand, table_init

#: Expected compiled-cost estimates (instructions per construct),
#: calibrated against the tracer: a plain masked assignment costs ~7,
#: loop close/test ~6 per iteration, a helper call ~30, ``rand()`` ~28.
#: ``_EST_STMT`` folds in the expected branch-wrapping overhead.
_EST_STMT = 10          # one generated body slot, branches amortized
_EST_LOOP_ITER = 6      # per-iteration close/test/increment overhead
_EST_LOOP_SETUP = 8     # guard + induction init
_EST_CALL = 30          # call/prologue/epilogue/arg shuffling
_EST_RAND = 28          # rand(): call overhead + LCG body

_MIN_TRIP = 2

_BIN_OPS = ("+", "+", "-", "*", "&", "|", "^", "min", "max")

_U64 = (1 << 64) - 1


def _mix_seed(profile_name, seed):
    """Decorrelate the same seed across profiles (FNV-1a over the
    profile name, folded into the user seed)."""
    h = 0xCBF29CE484222325
    for ch in profile_name.encode("utf-8"):
        h = ((h ^ ch) * 0x100000001B3) & _U64
    return ((h ^ (seed * 0x9E3779B97F4A7C15)) & _U64) or 1


class _Draw:
    """Sampling helpers over one Xorshift64 stream."""

    def __init__(self, seed):
        self.rng = Xorshift64(seed)

    def randint(self, low, high):
        return self.rng.randint(low, high)

    def prob(self, p):
        return self.rng.next_u64() % 1_000_000 < int(p * 1_000_000)

    def weighted(self, pairs):
        total = sum(weight for _value, weight in pairs)
        pick = self.rng.next_u64() % total
        for value, weight in pairs:
            if pick < weight:
                return value
            pick -= weight
        raise AssertionError("unreachable")

    def choice(self, seq):
        return seq[self.rng.next_u64() % len(seq)]


class _Scope:
    """Names visible to generated expressions.

    ``readable`` includes parameters and induction variables;
    ``writable`` only plain locals, so loop counters are never
    assignment targets (termination) and every local's *first*
    assignment is unconditional (no read-before-write).
    """

    def __init__(self, readable, writable):
        self.readable = list(readable)
        self.writable = list(writable)
        self._fresh = 0

    def new_local(self, prefix):
        name = "%s%d" % (prefix, self._fresh)
        self._fresh += 1
        return name

    def introduced(self, name):
        self.readable.append(name)
        self.writable.append(name)

    def child(self, extra_readable):
        scope = _Scope(self.readable + list(extra_readable),
                       self.writable)
        scope._fresh = self._fresh
        return scope


class _Generator:
    def __init__(self, profile, seed):
        self.profile = profile
        self.seed = seed
        self.draw = _Draw(_mix_seed(profile.name, seed))
        self.module = Module("synth-%s-%d" % (profile.name, seed))
        self.arrays = []
        self.helpers = []        # (name, arity, est_cost)
        self.realized_depths = []

    # -- expressions -------------------------------------------------------

    def _operand(self, scope):
        roll = self.draw.randint(0, 5)
        if roll <= 2:
            return Var(self.draw.choice(scope.readable))
        if roll <= 4:
            array = self.draw.choice(self.arrays)
            return Index(array,
                         Var(self.draw.choice(scope.readable))
                         % self.profile.working_set)
        return self.draw.randint(1, 61)

    def _expr(self, scope):
        left = as_expr(self._operand(scope))
        op = self.draw.choice(_BIN_OPS)
        right = self._operand(scope)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "min":
            return left.min_(right)
        return left.max_(right)

    # -- statement slots ---------------------------------------------------

    def _slot(self, scope):
        """One generated body slot: a masked assignment or array store,
        possibly wrapped in a data-dependent branch."""
        if self.draw.prob(0.25):
            array = self.draw.choice(self.arrays)
            stmt = Store(array,
                         Var(self.draw.choice(scope.readable))
                         % self.profile.working_set,
                         self._expr(scope) & LCG_MASK)
            fresh = None
        elif scope.writable and self.draw.prob(0.7):
            stmt = Assign(self.draw.choice(scope.writable),
                          self._expr(scope) & LCG_MASK)
            fresh = None
        else:
            fresh = scope.new_local("v")
            stmt = Assign(fresh, self._expr(scope) & LCG_MASK)

        # Only rewrites of already-live names may be conditional: a
        # fresh local's first assignment stays unconditional.
        if fresh is None and self.draw.prob(self.profile.branch_density):
            cond = (Var(self.draw.choice(scope.readable))
                    & self.draw.randint(1, 7))
            if scope.writable and self.draw.prob(0.5):
                other = Assign(self.draw.choice(scope.writable),
                               self._expr(scope) & LCG_MASK)
                stmt = If(cond, [stmt], [other])
            else:
                stmt = If(cond, [stmt])
        if fresh is not None:
            scope.introduced(fresh)
        return stmt

    def _slots(self, scope, count):
        return [self._slot(scope) for _ in range(count)]

    # -- helpers and recursion ---------------------------------------------

    def _make_helpers(self):
        profile = self.profile
        if profile.call_mix > 0:
            for j in range(2):
                name = "helper%d" % j
                trip = self.draw.randint(2, 6)
                scope = _Scope(readable=["a", "b", "h"],
                               writable=["acc_l"])
                body = self._slots(scope, self.draw.randint(1, 3))
                cost = (_EST_CALL + _EST_LOOP_SETUP + 2 * _EST_STMT
                        + trip * (_EST_LOOP_ITER
                                  + len(body) * _EST_STMT))
                self.module.function(name, ["a", "b"], [
                    Assign("acc_l", Var("a") & LCG_MASK),
                    For("h", 0, trip, body),
                    Return((Var("acc_l") + Var("b")) & LCG_MASK),
                ])
                self.helpers.append((name, 2, cost))
        if profile.recursion_depth > 0:
            trip = self.draw.randint(2, 5)
            branching = 2 if self.draw.prob(0.5) else 1
            scope = _Scope(readable=["n", "x", "r"], writable=["x"])
            body = self._slots(scope, self.draw.randint(1, 2))
            recur = [If(Var("n") > 0, [
                Assign("x", (Var("x")
                             + CallExpr("rec", Var("n") - 1,
                                        (Var("x") + 1) & LCG_MASK))
                       & LCG_MASK)])]
            if branching == 2:
                recur.append(If((Var("n") > 0) & (Var("x") & 1), [
                    Assign("x", (Var("x")
                                 ^ CallExpr("rec", Var("n") - 1,
                                            Var("x") & LCG_MASK))
                           & LCG_MASK)]))
            self.module.function("rec", ["n", "x"], [
                For("r", 0, trip, body),
                *recur,
                Return(Var("x") & LCG_MASK),
            ])
            base = (_EST_CALL + _EST_LOOP_SETUP + 4 * _EST_STMT
                    + trip * (_EST_LOOP_ITER + len(body) * _EST_STMT))
            cost = base
            for _ in range(profile.recursion_depth):
                cost = base + branching * cost
            self.helpers.append(("rec-root", 1, cost))

    def _call_slot(self, scope):
        """A helper (or recursion-root) call folded into a writable."""
        name, arity, _cost = self.draw.choice(self.helpers)
        if name == "rec-root":
            depth = self.draw.randint(1, self.profile.recursion_depth)
            call = CallExpr("rec", depth,
                            Var(self.draw.choice(scope.readable))
                            & LCG_MASK)
        else:
            call = CallExpr(name,
                            *[Var(self.draw.choice(scope.readable))
                              for _ in range(arity)])
        target = self.draw.choice(scope.writable)
        return Assign(target, (call + Var(target)) & LCG_MASK)

    # -- loop nests --------------------------------------------------------

    def _nest_cost(self, trips, pre_counts, inner_extra):
        """Expected dynamic cost of a nest, innermost-out.

        Early-exit guards both cost instructions (the ``rand()`` call)
        and shorten executions; both effects are folded in with their
        draw probability so the estimate tracks the average program.
        """
        irregularity = self.profile.exit_irregularity
        cost = inner_extra
        for trip, pre in zip(reversed(trips), reversed(pre_counts)):
            per_iter = (pre * _EST_STMT + cost + _EST_LOOP_ITER
                        + irregularity * _EST_RAND)
            effective_trip = max(_MIN_TRIP,
                                 trip * (1.0 - 0.45 * irregularity))
            cost = _EST_LOOP_SETUP + int(effective_trip * per_iter)
        return cost

    def _trim_trips(self, trips, pre_counts, inner_extra, budget):
        """Shrink trip counts (outermost first) until the worst-case
        cost fits *budget*; drop innermost levels as a last resort."""
        trips = list(trips)
        pre_counts = list(pre_counts)
        while self._nest_cost(trips, pre_counts, inner_extra) > budget:
            reducible = [i for i, t in enumerate(trips) if t > _MIN_TRIP]
            if reducible:
                i = reducible[0]
                trips[i] = max(_MIN_TRIP, trips[i] // 2)
            elif len(trips) > 1:
                trips.pop()
                pre_counts.pop()
            else:
                break
        return trips, pre_counts

    def _build_nest(self, index, budget):
        profile = self.profile
        depth = self.draw.weighted(profile.nesting_depth)
        trips = [self.draw.randint(low, high)
                 for low, high in (self.draw.weighted(profile.trip_count)
                                   for _ in range(depth))]
        pre_counts = [self.draw.randint(*profile.body_ops)
                      for _ in range(depth)]

        wants_call = bool(self.helpers) \
            and self.draw.prob(profile.call_mix)
        call_cost = max(cost for _n, _a, cost in self.helpers) \
            if wants_call else 0
        trips, pre_counts = self._trim_trips(
            trips, pre_counts, call_cost + _EST_STMT, budget)
        depth = len(trips)

        # A sampled nest is usually far cheaper than its budget share;
        # an outer time-step loop (like the analogs' outer repetition
        # loops) repeats it to fill the budget.  The LCG state persists
        # across steps, so repetitions are not identical.
        est = self._nest_cost(trips, pre_counts, call_cost + _EST_STMT)
        reps = max(1, min(512, budget // max(1, est)))
        self.realized_depths.append(depth + (1 if reps > 1 else 0))

        scope = _Scope(readable=["base"], writable=["acc_n"])

        def build_level(level, scope):
            var = "i%d" % (index * 16 + level)
            inner = scope.child([var])
            body = self._slots(inner, pre_counts[level])
            if level == depth - 1:
                if wants_call:
                    body.append(self._call_slot(inner))
            else:
                body.extend(build_level(level + 1, inner))
            if self.draw.prob(profile.exit_irregularity):
                body.append(If((rand()
                                % max(2, trips[level] * 2)).eq(0),
                               [Break()]))
            if self.draw.prob(0.25):
                # Counted-down DoWhile variant (body runs >= 1 time;
                # the counter is readable but never a write target).
                return [Assign(var, trips[level]),
                        DoWhile(body + [Assign(var, Var(var) - 1)],
                                Var(var) > 0)]
            return [For(var, 0, trips[level], body)]

        nest_body = build_level(0, scope)
        if reps > 1:
            nest_body = [For("step", 0, reps, nest_body)]
        name = "nest%d" % index
        self.module.function(name, ["base"], [
            Assign("acc_n", Var("base") & LCG_MASK),
            *nest_body,
            Return(Var("acc_n") & LCG_MASK),
        ])
        return name

    # -- module assembly ---------------------------------------------------

    def build(self, scale):
        profile = self.profile
        for a in range(profile.num_arrays):
            name = "data%d" % a
            self.module.array(
                name, profile.working_set,
                init=table_init(profile.working_set,
                                seed=_mix_seed(profile.name,
                                               self.seed * 31 + a),
                                low=0, high=255))
            self.arrays.append(name)
        add_lcg(self.module,
                seed=(_mix_seed(profile.name, self.seed)
                      & LCG_MASK) or 7)
        self.module.scalar("acc", 0)

        self._make_helpers()

        nest_budget = max(2_000,
                          profile.target_instructions
                          // profile.num_nests)
        nests = [self._build_nest(k, nest_budget)
                 for k in range(profile.num_nests)]

        calls = [Assign("acc",
                        (Var("acc")
                         + CallExpr(nest,
                                    (Var("rep") * 17 + k * 5)
                                    & LCG_MASK))
                        & LCG_MASK)
                 for k, nest in enumerate(nests)]
        self.module.function("main", [], [
            For("rep", 0, scale, calls),
            Return(Var("acc")),
        ])

        stats = module_stats(self.module)
        assert stats.loops >= profile.num_nests
        assert stats.max_syntactic_nesting == max(self.realized_depths)
        return self.module


def generate_module(profile, seed, scale=1):
    """Draw the ``(profile, seed)`` program as a compile-ready
    :class:`~repro.lang.ast.Module`; ``scale`` multiplies repetitions
    of the whole nest set without changing the program shape."""
    if scale < 1:
        raise ValueError("scale must be >= 1")
    return _Generator(profile, seed).build(scale)
