"""Parametric synthetic workloads: ``synth-<profile>-<seed>``.

The 18 hand-written analogs pin the paper's Table 1 rows; this package
*explores the space around them*.  A :class:`WorkloadProfile` describes
a family of loop behaviours (nesting, trip counts, irregularity,
branches, calls/recursion, working set) and the seeded generator draws
concrete deterministic programs from it.  Generated workloads are
ordinary :class:`~repro.workloads.base.Workload` objects registered
under ``synth-<profile>-<seed>``, so the pipeline, trace cache, and
analysis suite consume them unchanged::

    from repro.workloads import get
    w = get("synth-deep-nest-7")        # resolved + registered lazily
    index = w.loop_index()

Name resolution is deterministic and side-effect free beyond registry
insertion, so pooled tracer processes resolve the same names to
byte-identical programs (``--jobs`` works for synthetic sweeps too).
``runner characterize --profile P --seed S --count N`` sweeps the
family ``synth-P-S .. synth-P-(S+N-1)`` (see ``docs/WORKLOADS.md``).
"""

from repro.workloads.base import Workload, register_workload
from repro.workloads.synthetic.generator import generate_module
from repro.workloads.synthetic.mutate import (
    as_candidate,
    mutate_profile,
    random_profile,
)
from repro.workloads.synthetic.profile import (
    PROFILES,
    ProfileValidationError,
    WorkloadProfile,
    get_profile,
    profile_digest,
    profile_names,
)

#: Every synthetic workload name starts with this.
SYNTH_PREFIX = "synth-"


def synthetic_name(profile, seed):
    """The registry name of the ``(profile, seed)`` workload."""
    name = profile if isinstance(profile, str) else profile.name
    seed = int(seed)
    if seed < 0:
        raise ValueError("seed must be >= 0, got %d" % seed)
    return "%s%s-%d" % (SYNTH_PREFIX, name, seed)


def parse_synthetic_name(name):
    """``synth-<profile>-<seed>`` -> ``(profile_name, seed)``.

    Raises :class:`ValueError` when *name* is not a synthetic workload
    name (profile names may themselves contain dashes; the seed is the
    final dash-separated integer).
    """
    if not name.startswith(SYNTH_PREFIX):
        raise ValueError("not a synthetic workload name: %r" % name)
    rest = name[len(SYNTH_PREFIX):]
    profile_name, _, seed_text = rest.rpartition("-")
    if not profile_name or not seed_text.isdigit():
        raise ValueError(
            "synthetic names look like synth-<profile>-<seed>, got %r"
            % name)
    return profile_name, int(seed_text)


def make_workload(profile, seed):
    """An *unregistered* :class:`Workload` for ``(profile, seed)``."""
    if isinstance(profile, str):
        profile = get_profile(profile)
    name = synthetic_name(profile, seed)

    def builder(scale):
        return generate_module(profile, seed, scale)

    return Workload(
        name, builder,
        "generated from profile %r (seed %d): %s"
        % (profile.name, seed, profile.description),
        profile.category,
        default_max_instructions=profile.default_max_instructions)


def resolve_synthetic(name):
    """Resolve and register *name* (``synth-<profile>-<seed>``).

    The :func:`~repro.workloads.base.get` fallback: raises
    :class:`KeyError` for unknown profiles so lookup errors stay
    KeyErrors throughout the registry.
    """
    try:
        profile_name, seed = parse_synthetic_name(name)
    except ValueError as exc:
        raise KeyError(str(exc)) from None
    profile = get_profile(profile_name)     # KeyError on unknown profile
    return register_workload(make_workload(profile, seed))


def ensure_profile_workload(profile, seed):
    """Register (idempotently) the ``(profile, seed)`` workload and
    return its name.

    The adversarial search's registration path: candidate profiles are
    *not* in :data:`PROFILES`, so their ``synth-<name>-<seed>`` names
    only resolve inside a process that called this.  Re-registration
    under the same name hands back the already-registered workload --
    candidate names are content digests, so one name can only ever
    mean one program family.
    """
    from repro.workloads.base import get

    name = synthetic_name(profile, seed)
    try:
        return get(name).name
    except KeyError:
        pass
    register_workload(make_workload(profile, seed))
    return name


def sweep_names(profile_name, seed, count):
    """The *count* consecutive-seed names of one characterization
    sweep: ``synth-<profile>-<seed> .. synth-<profile>-<seed+count-1>``."""
    get_profile(profile_name)               # validate eagerly
    if seed < 0:
        raise ValueError("seed must be >= 0, got %d" % seed)
    if count < 1:
        raise ValueError("count must be >= 1")
    return [synthetic_name(profile_name, seed + i) for i in range(count)]


__all__ = [
    "PROFILES",
    "ProfileValidationError",
    "SYNTH_PREFIX",
    "WorkloadProfile",
    "as_candidate",
    "ensure_profile_workload",
    "generate_module",
    "get_profile",
    "make_workload",
    "mutate_profile",
    "parse_synthetic_name",
    "profile_digest",
    "profile_names",
    "random_profile",
    "resolve_synthetic",
    "sweep_names",
    "synthetic_name",
]
