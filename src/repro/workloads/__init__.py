"""Synthetic SPEC95-analog workload suite (see docs/WORKLOADS.md).

Two kinds of workloads live here: the 18 hand-written analogs that pin
the paper's Table 1 rows (``suite()``/``SUITE_ORDER``) and the
parametric ``synth-<profile>-<seed>`` programs drawn from
:mod:`repro.workloads.synthetic` profiles, resolved lazily through
:func:`get`.
"""

from repro.workloads.base import Workload, all_workloads, get, names, \
    register, register_workload
from repro.workloads.suite import SUITE_ORDER, fp_suite, integer_suite, \
    suite

__all__ = [
    "Workload",
    "all_workloads",
    "get",
    "names",
    "register",
    "register_workload",
    "SUITE_ORDER",
    "fp_suite",
    "integer_suite",
    "suite",
]
