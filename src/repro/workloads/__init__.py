"""Synthetic SPEC95-analog workload suite (see DESIGN.md section 2)."""

from repro.workloads.base import Workload, all_workloads, get, names, \
    register
from repro.workloads.suite import SUITE_ORDER, fp_suite, integer_suite, \
    suite

__all__ = [
    "Workload",
    "all_workloads",
    "get",
    "names",
    "register",
    "SUITE_ORDER",
    "fp_suite",
    "integer_suite",
    "suite",
]
