"""applu-analog: SSOR solver on a small 3D grid.

SPEC95 ``applu`` has the deep-and-narrow profile: only ~3.5 iterations
per execution but average nesting 5.16 (max 7) -- five-deep loop nests
over a tiny 3D grid with an unknowns dimension.  The analog performs
lower/upper SSOR-like sweeps with loop nests (step, k, j, i, m).
"""

from repro.lang import Assign, For, Index, Module, Return, Store, Var
from repro.workloads.base import register
from repro.workloads.common import table_init

NK, NJ, NI, NM = 4, 4, 4, 4        # tiny trips, deep nests
SIZE = NK * NJ * NI * NM


def _cell():
    k, j, i, mm = Var("k"), Var("j"), Var("i"), Var("m")
    return ((k * NJ + j) * NI + i) * NM + mm


@register("applu", "SSOR 3D sweeps; ~3-4 iterations/execution, nesting "
          "depth 5, tiny trip counts", "fp")
def build(scale=1):
    m = Module("applu")
    m.array("u", SIZE, init=table_init(SIZE, seed=41, low=1, high=60))
    m.array("rsd", SIZE, init=table_init(SIZE, seed=43, low=0, high=30))

    cell = _cell()
    lower = [
        Assign("acc", Index("rsd", cell)),
        For("l", 0, 3, [
            Assign("acc", Var("acc")
                   + Index("u", (cell + Var("l")) % SIZE) // 3),
        ]),
        Store("rsd", cell, Var("acc")),
    ]
    upper = [
        Assign("acc", Index("u", cell)),
        For("l", 0, 3, [
            Assign("acc", Var("acc")
                   + Index("rsd", (cell + Var("l") * NM) % SIZE) // 3),
        ]),
        Store("u", cell, (Var("acc") + Index("rsd", cell)) // 2),
    ]

    def nest(body):
        return For("k", 0, NK, [
            For("j", 0, NJ, [
                For("i", 0, NI, [
                    For("m", 0, NM, body),
                ]),
            ]),
        ])

    m.function("main", [], [
        For("step", 0, 12 * scale, [nest(lower), nest(upper)]),
        Return(Index("u", 0)),
    ])
    return m
