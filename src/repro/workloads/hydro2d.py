"""hydro2d-analog: 2D hydrodynamical Navier-Stokes-style sweeps.

SPEC95 ``hydro2d``: ~29 iterations per execution at nesting ~3.5/4 and a
99%+ control-speculation hit ratio in the paper's Table 2.  The analog
alternates row and column flux sweeps over a modest grid, giving two
distinct doubly nested loop systems per time step.
"""

from repro.lang import Assign, For, Index, Module, Return, Store, Var
from repro.workloads.base import register
from repro.workloads.common import table_init

N = 28


@register("hydro2d", "row/column flux sweeps; mid-high trip counts, "
          "nesting 3-4, regular control flow", "fp")
def build(scale=1):
    m = Module("hydro2d")
    m.array("rho", N * N, init=table_init(N * N, seed=23, low=1, high=99))
    m.array("mx", N * N, init=table_init(N * N, seed=29, low=0, high=50))
    m.array("my", N * N, init=table_init(N * N, seed=31, low=0, high=50))

    j, i = Var("j"), Var("i")
    cell = j * N + i

    row_sweep = [
        Assign("flux", (Index("mx", cell + 1) - Index("mx", cell - 1))
               // 2),
        Store("rho", cell, Index("rho", cell) + Var("flux")),
        Store("mx", cell,
              (Index("mx", cell) * 7 + Index("rho", cell)) // 8),
    ]
    col_sweep = [
        Assign("flux", (Index("my", cell + N) - Index("my", cell - N))
               // 2),
        Store("rho", cell, Index("rho", cell) - Var("flux")),
        Store("my", cell,
              (Index("my", cell) * 7 + Index("rho", cell)) // 8),
    ]

    m.function("main", [], [
        For("t", 0, 8 * scale, [
            For("j", 1, N - 1, [For("i", 1, N - 1, row_sweep)]),
            For("i", 1, N - 1, [For("j", 1, N - 1, col_sweep)]),
        ]),
        Return(Index("rho", N * N // 2)),
    ])
    return m
