"""gcc-analog: optimizing-compiler passes over a synthetic IR.

SPEC95 ``gcc`` dominates Table 1's *static* loop count (1229 loops) with
short executions (~5.3 iterations) and branchy bodies, and it is one of
the harder programs for the paper's speculation (76% hit ratio).  The
analog runs a pipeline of passes (lexer, constant folding, dead-code
elimination, common-subexpression scan, register allocation, emission)
over pseudo-random three-address IR, each pass containing several small
data-dependent loops -- many distinct static loops, each short-lived.
"""

from repro.lang import (
    Assign,
    Break,
    CallExpr,
    ExprStmt,
    For,
    If,
    Index,
    Module,
    Return,
    Store,
    Var,
    While,
)
from repro.workloads.base import register
from repro.workloads.common import table_init

NIR = 64            # IR instructions per function
NFUNCS = 5          # functions compiled per pass-pipeline run
NREGS = 8


@register("gcc", "compiler pass pipeline; many static loops, short "
          "executions, branchy bodies", "int")
def build(scale=1):
    m = Module("gcc")
    # IR: op in [0,6), dst/src1/src2 registers, plus a constant flag.
    m.array("ir_op", NIR, init=table_init(NIR, seed=103, low=0, high=5))
    m.array("ir_dst", NIR, init=table_init(NIR, seed=107, low=0,
                                           high=NREGS - 1))
    m.array("ir_s1", NIR, init=table_init(NIR, seed=109, low=0,
                                          high=NREGS - 1))
    m.array("ir_s2", NIR, init=table_init(NIR, seed=113, low=0,
                                          high=NREGS - 1))
    m.array("ir_const", NIR, init=table_init(NIR, seed=127, low=0,
                                             high=1))
    m.array("live", NREGS)
    m.array("value", NREGS)
    m.array("emitted", NIR)
    m.scalar("work", 0)

    i, r = Var("i"), Var("r")

    m.function("lex", ["length"], [
        # Token scan: short inner loop per token (identifier length).
        Assign("tokens", 0),
        Assign("ii", 0),
        While(Var("ii") < Var("length"), [
            Assign("tlen", Index("ir_op", Var("ii") % NIR) + 1),
            Assign("k", 0),
            While(Var("k") < Var("tlen"), [
                Assign("work", Var("work") + 1),
                Assign("k", Var("k") + 1),
            ]),
            Assign("ii", Var("ii") + Var("tlen")),
            Assign("tokens", Var("tokens") + 1),
        ]),
        Return(Var("tokens")),
    ])

    m.function("fold_constants", [], [
        Assign("folds", 0),
        For("i", 0, NIR, [
            If(Index("ir_const", i).eq(1), [
                If(Index("ir_op", i) < 3, [
                    Store("ir_op", i, 0),
                    Assign("folds", Var("folds") + 1),
                ]),
            ]),
        ]),
        Return(Var("folds")),
    ])

    m.function("eliminate_dead", [], [
        For("r", 0, NREGS, [Store("live", r, 0)]),
        Assign("removed", 0),
        # Backward liveness scan.
        For("i", NIR - 1, -1, [
            If(Index("live", Index("ir_dst", i)).eq(0)
               & Index("ir_op", i).ne(5), [
                Assign("removed", Var("removed") + 1),
            ], [
                Store("live", Index("ir_s1", i), 1),
                Store("live", Index("ir_s2", i), 1),
            ]),
        ], step=-1),
        Return(Var("removed")),
    ])

    m.function("scan_cse", [], [
        Assign("hits", 0),
        For("i", 0, NIR, [
            Assign("sig", Index("ir_op", i) * 64
                   + Index("ir_s1", i) * 8 + Index("ir_s2", i)),
            # Short window scan for a matching earlier expression.
            Assign("j", i - 6),
            If(Var("j") < 0, [Assign("j", 0)]),
            While(Var("j") < i, [
                Assign("sig2", Index("ir_op", Var("j")) * 64
                       + Index("ir_s1", Var("j")) * 8
                       + Index("ir_s2", Var("j"))),
                If(Var("sig2").eq(Var("sig")), [
                    Assign("hits", Var("hits") + 1),
                    Break(),
                ]),
                Assign("j", Var("j") + 1),
            ]),
        ]),
        Return(Var("hits")),
    ])

    m.function("allocate_registers", [], [
        Assign("spills", 0),
        For("i", 0, NIR, [
            Assign("want", Index("ir_dst", i)),
            # Probe for a free value slot, spilling on conflict.
            Assign("tries", 0),
            While(Index("value", (Var("want") + Var("tries")) % NREGS)
                  > Var("want"), [
                Assign("tries", Var("tries") + 1),
                If(Var("tries") >= NREGS, [
                    Assign("spills", Var("spills") + 1),
                    Break(),
                ]),
            ]),
            Store("value", (Var("want") + Var("tries")) % NREGS,
                  Index("ir_op", i)),
        ]),
        Return(Var("spills")),
    ])

    m.function("emit", [], [
        Assign("n", 0),
        For("i", 0, NIR, [
            If(Index("ir_op", i).ne(0), [
                Store("emitted", Var("n"), Index("ir_op", i) * 1000
                      + Index("ir_dst", i)),
                Assign("n", Var("n") + 1),
            ]),
        ]),
        Return(Var("n")),
    ])

    m.function("compile_function", ["f"], [
        Assign("work", Var("work")
               + CallExpr("lex", 40 + Var("f") * 9)),
        Assign("work", Var("work") + CallExpr("fold_constants")),
        Assign("work", Var("work") + CallExpr("eliminate_dead")),
        Assign("work", Var("work") + CallExpr("scan_cse")),
        Assign("work", Var("work") + CallExpr("allocate_registers")),
        Assign("work", Var("work") + CallExpr("emit")),
        Return(Var("work")),
    ])

    m.function("main", [], [
        For("pass_", 0, 7 * scale, [
            For("f", 0, NFUNCS, [
                ExprStmt(CallExpr("compile_function", Var("f"))),
                # Mutate the IR between functions so loops see varied,
                # data-dependent trip counts.
                Store("ir_op", (Var("f") * 17 + Var("pass_")) % NIR,
                      (Var("f") + Var("pass_")) % 6),
                Store("ir_const", (Var("f") * 31) % NIR,
                      Var("pass_") % 2),
            ]),
        ]),
        Return(Var("work")),
    ])
    return m
