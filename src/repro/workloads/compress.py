"""compress-analog: LZW-style dictionary compression.

SPEC95 ``compress``: ~6.3 iterations per execution at nesting ~2.5, with
data-dependent hash-probe loops -- and, remarkably, a 100% control
speculation hit ratio in the paper's Table 2 (its dominant loops have
very stable trip behaviour).  The analog scans a pseudo-random byte
stream, maintaining a (prefix, char) hash dictionary with linear-probe
collision loops.
"""

from repro.lang import (
    Assign,
    Break,
    For,
    If,
    Index,
    Module,
    Return,
    Store,
    Var,
    While,
)
from repro.workloads.base import register
from repro.workloads.common import table_init

INPUT_LEN = 700
HSIZE = 512          # power of two for cheap masking
FIRST_FREE = 257


@register("compress", "LZW dictionary compression; data-dependent probe "
          "loops, ~6 iterations/execution, nesting 2-3", "int")
def build(scale=1):
    m = Module("compress")
    # A byte stream with repeated digraphs so the dictionary gets hits.
    stream = table_init(INPUT_LEN, seed=97, low=0, high=30)
    m.array("input", INPUT_LEN, init=stream)
    m.array("hkey", HSIZE)        # 0 = empty, else key + 1
    m.array("hcode", HSIZE)
    m.scalar("next_code", FIRST_FREE)
    m.scalar("out_count", 0)

    i = Var("i")

    scan_body = [
        Assign("c", Index("input", i)),
        Assign("key", Var("prefix") * 256 + Var("c") + 1),
        Assign("h", (Var("key") * 2654435761) % HSIZE),
        Assign("found", 0 - 1),
        # Linear-probe collision loop: trips depend on table pressure.
        While(Index("hkey", Var("h")) > 0, [
            If(Index("hkey", Var("h")).eq(Var("key")), [
                Assign("found", Index("hcode", Var("h"))),
                Break(),
            ]),
            Assign("h", (Var("h") + 1) % HSIZE),
        ]),
        If(Var("found") >= 0, [
            Assign("prefix", Var("found")),
        ], [
            Assign("out_count", Var("out_count") + 1),
            If(Var("next_code") < FIRST_FREE + HSIZE // 2, [
                Store("hkey", Var("h"), Var("key")),
                Store("hcode", Var("h"), Var("next_code")),
                Assign("next_code", Var("next_code") + 1),
            ]),
            Assign("prefix", Var("c")),
        ]),
    ]

    reset_tables = [
        For("r", 0, HSIZE, [Store("hkey", Var("r"), 0)]),
        Assign("next_code", FIRST_FREE),
    ]

    m.function("main", [], [
        For("pass_", 0, 6 * scale, reset_tables + [
            Assign("prefix", Index("input", 0)),
            For("i", 1, INPUT_LEN, scan_body),
            Assign("out_count", Var("out_count") + 1),
        ]),
        Return(Var("out_count")),
    ])
    return m
