"""su2cor-analog: quark-gluon lattice Monte Carlo sweeps.

SPEC95 ``su2cor``: very high trip counts (~51 iterations per execution)
at nesting ~3.5, with in-loop randomness.  The analog sweeps a 1D
lattice of links with an in-language LCG supplying update noise, plus a
correlation-measurement pass.
"""

from repro.lang import Assign, For, Index, Module, Return, Store, Var
from repro.workloads.base import register
from repro.workloads.common import LCG_ADD, LCG_MASK, LCG_MUL, table_init

SITES = 56
MU = 4              # link directions per site


@register("su2cor", "lattice Monte Carlo; ~50 iterations/execution, "
          "nesting 3, embedded PRNG", "fp")
def build(scale=1):
    m = Module("su2cor")
    m.array("links", SITES * MU,
            init=table_init(SITES * MU, seed=71, low=1, high=255))
    m.array("corr", SITES)
    m.scalar("rng", 991)

    s = Var("s")

    def link(d):
        return s * MU + d

    # The MU direction dimension is unrolled, as a vectorizing Fortran
    # compiler would leave only the long site loops: high trip counts
    # per execution, the su2cor signature.
    update = [
        Assign("rng", (Var("rng") * LCG_MUL + LCG_ADD) & LCG_MASK),
        Assign("noise", Var("rng") % 17),
    ]
    for d in range(MU):
        update.append(Store(
            "links", link(d),
            ((Index("links", link(d)) * 15
              + Var("noise") + d) // 16) | 1))

    measure = [Assign("acc", 0)]
    for d in range(MU):
        measure.append(Assign(
            "acc", Var("acc") + Index("links", link(d))
            * Index("links", ((s + 1) % SITES) * MU + d)))
    measure.append(Store("corr", s, Var("acc") % 65521))

    m.function("main", [], [
        For("sweep", 0, 12 * scale, [
            For("s", 0, SITES, update),
            For("s", 0, SITES, measure),
        ]),
        Return(Index("corr", 7)),
    ])
    return m
