"""fpppp-analog: quantum-chemistry two-electron integrals.

SPEC95 ``fpppp`` is the suite's giant-basic-block program: only ~3
iterations per execution but ~3200 instructions per iteration (Table 1),
with deep nesting (6.7 avg / 9 max).  The paper's Table 2 shows its
speculated threads take ~190k instructions to verify -- a direct
consequence of those enormous iteration bodies.

The analog generates a very long straight-line arithmetic block (built
programmatically) inside few-trip nested loops over shell quadruples.
"""

from repro.lang import Assign, For, Index, Module, Return, Store, Var
from repro.workloads.base import register
from repro.workloads.common import table_init

NSHELL = 3          # trips per shell loop: few iterations per execution
BLOCK = 100         # statements in the generated integral block


def _integral_block():
    """A long dependence chain mimicking unrolled integral evaluation."""
    stmts = [Assign("g0", Var("base") + 1), Assign("g1", Var("base") * 2)]
    for k in range(BLOCK):
        a = Var("g%d" % (k % 16)) if k >= 16 else Var("g%d" % (k % 2))
        b = Var("g%d" % ((k + 7) % 16)) if k >= 16 else Var("g0")
        target = "g%d" % ((k + 2) % 16)
        stmts.append(Assign(target, (a * 3 + b) % 65521))
    total = Var("g0")
    for r in range(1, 16):
        total = total + Var("g%d" % r)
    stmts.append(Assign("fock", Var("fock") + total))
    return stmts


@register("fpppp", "two-electron integrals; ~3 iterations/execution with "
          "huge straight-line bodies, deep nesting", "fp",
          default_max_instructions=3_000_000)
def build(scale=1):
    m = Module("fpppp")
    m.array("basis", 64, init=table_init(64, seed=59, low=1, high=200))
    m.scalar("fock", 0)

    si, sj, sk, sl, sm = (Var("si"), Var("sj"), Var("sk"), Var("sl"),
                          Var("sm"))
    inner = ([Assign("base",
                     Index("basis",
                           (si * 81 + sj * 27 + sk * 9 + sl * 3 + sm)
                           % 64))]
             + _integral_block())

    m.function("main", [], [
        For("pass_", 0, 6 * scale, [
            For("si", 0, NSHELL - 1, [
                For("sj", 0, NSHELL, [
                    For("sk", 0, NSHELL, [
                        For("sl", 0, NSHELL, [
                            For("sm", 0, NSHELL, inner),
                        ]),
                    ]),
                ]),
            ]),
            Store("basis", Var("pass_") % 64, Var("fock") % 251),
        ]),
        Return(Var("fock")),
    ])
    return m
