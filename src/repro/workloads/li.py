"""li-analog: a Lisp interpreter over cons cells.

SPEC95 ``li`` (xlisp): recursion-dominated with short loops (~3.5
iterations per execution) but deep dynamic nesting (5.2 avg, 10 max) --
loops inside recursive evaluator activations stack up in the CLS.  The
analog builds cons-cell lists in a heap (car/cdr arrays) and runs
recursive list routines (sum, map, reverse-append, deep tree fold) whose
activations contain small walking loops.
"""

from repro.lang import (
    Assign,
    CallExpr,
    ExprStmt,
    For,
    If,
    Index,
    Module,
    Return,
    Store,
    Var,
    While,
)
from repro.workloads.base import register
from repro.workloads.common import table_init

HEAP = 4096          # cons cells
NIL = 0              # cell 0 is reserved as nil


@register("li", "Lisp interpreter; recursion with embedded short loops, "
          "deep CLS nesting", "int")
def build(scale=1):
    m = Module("li")
    m.array("car", HEAP)
    m.array("cdr", HEAP)
    m.array("seeds", 64, init=table_init(64, seed=139, low=1, high=50))
    m.scalar("hp", 1)            # heap pointer (0 = nil)
    m.scalar("allocs", 0)

    m.function("cons", ["a", "d"], [
        If(Var("hp") >= HEAP, [Assign("hp", 1)]),   # crude wraparound GC
        Store("car", Var("hp"), Var("a")),
        Store("cdr", Var("hp"), Var("d")),
        Assign("hp", Var("hp") + 1),
        Assign("allocs", Var("allocs") + 1),
        Return(Var("hp") - 1),
    ])

    # build_list(n, seed): list of n pseudo-random ints.
    m.function("build_list", ["n", "seed"], [
        Assign("lst", NIL),
        Assign("k", 0),
        While(Var("k") < Var("n"), [
            Assign("lst", CallExpr(
                "cons", Index("seeds", (Var("seed") + Var("k")) % 64),
                Var("lst"))),
            Assign("k", Var("k") + 1),
        ]),
        Return(Var("lst")),
    ])

    # Recursive sum over a list.
    m.function("sum_list", ["lst"], [
        If(Var("lst").eq(NIL), [Return(0)]),
        Return(Index("car", Var("lst"))
               + CallExpr("sum_list", Index("cdr", Var("lst")))),
    ])

    # Recursive map (x -> x*x % 97), building a fresh list.
    m.function("map_square", ["lst"], [
        If(Var("lst").eq(NIL), [Return(NIL)]),
        Return(CallExpr(
            "cons",
            (Index("car", Var("lst")) * Index("car", Var("lst"))) % 97,
            CallExpr("map_square", Index("cdr", Var("lst"))))),
    ])

    # Iterative length (a small loop inside recursive callers).
    m.function("length", ["lst"], [
        Assign("n", 0),
        While(Var("lst").ne(NIL), [
            Assign("n", Var("n") + 1),
            Assign("lst", Index("cdr", Var("lst"))),
        ]),
        Return(Var("n")),
    ])

    # Deep fold over a tree of lists: each evaluator level is a distinct
    # routine (as xlisp's eval/evlist/apply tower is), so each level's
    # walking loop is a distinct static loop and the levels *stack* in
    # the CLS while the recursion is live -- li's deep-nesting signature.
    FOLD_DEPTH = 4

    def fold_body(level):
        if level >= FOLD_DEPTH:
            return [Return(CallExpr("sum_list",
                                    CallExpr("build_list", 3,
                                             Var("seed"))))]
        return [
            Assign("lst", CallExpr("build_list", 2 + Var("seed") % 2,
                                   Var("seed"))),
            Assign("acc", 0),
            While(Var("lst").ne(NIL), [
                # Recursing *inside* the walking loop keeps this level's
                # loop open in the CLS while deeper levels run.
                Assign("acc", Var("acc") + Index("car", Var("lst"))
                       + CallExpr("fold%d" % (level + 1),
                                  Var("seed") * 3 + Var("acc") % 5)),
                Assign("lst", Index("cdr", Var("lst"))),
            ]),
            Return(Var("acc") % 99991),
        ]

    for level in range(FOLD_DEPTH, -1, -1):
        m.function("fold%d" % level, ["seed"], fold_body(level))

    # Mark-sweep-style pass: a mark scan and a sweep with an inner
    # free-chain compaction loop (xlisp's GC shape).
    m.function("gc", [], [
        Assign("marked", 0),
        For("c", 1, HEAP // 8, [
            If(Index("cdr", Var("c")).ne(NIL),
               [Assign("marked", Var("marked") + 1)]),
        ]),
        Assign("freed", 0),
        Assign("c", 1),
        While(Var("c") < HEAP // 8, [
            If(Index("cdr", Var("c")).eq(NIL), [
                # Chain of consecutive free cells.
                While((Var("c") < HEAP // 8).ne(0)
                      & Index("cdr", Var("c")).eq(NIL), [
                    Assign("freed", Var("freed") + 1),
                    Assign("c", Var("c") + 1),
                ]),
            ], [Assign("c", Var("c") + 1)]),
        ]),
        Return(Var("marked") + Var("freed")),
    ])

    m.function("main", [], [
        Assign("total", 0),
        For("round_", 0, 10 * scale, [
            Assign("lst", CallExpr("build_list", 12, Var("round_"))),
            Assign("sq", CallExpr("map_square", Var("lst"))),
            Assign("total", Var("total") + CallExpr("sum_list", Var("sq"))
                   + CallExpr("length", Var("sq"))),
            Assign("total", Var("total")
                   + CallExpr("fold0", Var("round_") + 1)),
            Assign("total", Var("total") + CallExpr("gc")),
        ]),
        Return(Var("total") % 100003),
    ])
    return m
