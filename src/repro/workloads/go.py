"""go-analog: game-tree search with board evaluation.

SPEC95 ``go`` has the deepest nesting in Table 1 (max 11) from loops
inside recursive search, short executions (~3.8 iterations) and highly
irregular branching -- the paper's hardest program for speculation (go's
TPC is the suite minimum).  The analog runs depth-limited negamax over a
small board: a move loop per recursion level, a neighbour-evaluation
loop per move, and alpha-beta-style pruning breaks.
"""

from repro.lang import (
    Assign,
    Break,
    CallExpr,
    For,
    If,
    Index,
    Module,
    Return,
    Store,
    Var,
)
from repro.workloads.base import register
from repro.workloads.common import LCG_ADD, LCG_MASK, LCG_MUL, table_init

BOARD = 36           # 6x6 board
MOVES = 5            # branching factor
DEPTH = 4


@register("go", "negamax game-tree search; loops inside recursion, deep "
          "CLS nesting, irregular branching", "int")
def build(scale=1):
    m = Module("go")
    m.array("board", BOARD, init=table_init(BOARD, seed=131, low=0,
                                            high=2))
    m.scalar("rng", 4099)
    m.scalar("nodes", 0)

    mv, nb = Var("mv"), Var("nb")

    m.function("evaluate", ["cell"], [
        # Score a cell by its 4-neighbourhood (wrapping).
        Assign("score", 0),
        For("nb", 0, 4, [
            Assign("other",
                   (Var("cell") + Index("board",
                                        (Var("cell") + Var("nb") * 7)
                                        % BOARD)
                    + Var("nb")) % BOARD),
            Assign("score", Var("score")
                   + Index("board", Var("other"))),
        ]),
        Return(Var("score") - 2),
    ])

    def ply_body(ply):
        """Move loop for one search ply.  Each ply is a *distinct*
        routine (as in go's staged move generators), so each recursion
        level contributes its own static loop and the loops stack in the
        CLS -- the source of go's record nesting depth in Table 1."""
        if ply >= DEPTH:
            return [Assign("nodes", Var("nodes") + 1),
                    Return(CallExpr("evaluate", Var("cell")))]
        recurse = CallExpr("ply%d" % (ply + 1), Var("target"),
                           0 - Var("best"))
        return [
            Assign("nodes", Var("nodes") + 1),
            Assign("best", -9999),
            For("mv", 0, MOVES, [
                Assign("rng", (Var("rng") * LCG_MUL + LCG_ADD)
                       & LCG_MASK),
                Assign("target", (Var("cell") + Var("mv") * 5
                                  + Var("rng") % 3) % BOARD),
                # Occupied cells are skipped: irregular per-move control.
                If(Index("board", Var("target")) > 1, [
                    If(Var("mv") % 2, [Break()]),
                ], [
                    Store("board", Var("target"),
                          Index("board", Var("target")) + 1),
                    Assign("sc", 0 - recurse),
                    Store("board", Var("target"),
                          Index("board", Var("target")) - 1),
                    If(Var("sc") > Var("best"),
                       [Assign("best", Var("sc"))]),
                    If(Var("best") >= Var("alpha") + 6, [Break()]),
                ]),
            ]),
            Return(Var("best")),
        ]

    for ply in range(DEPTH, -1, -1):
        m.function("ply%d" % ply, ["cell", "alpha"], ply_body(ply))

    m.function("main", [], [
        Assign("total", 0),
        For("game", 0, 8 * scale, [
            For("root", 0, 4, [
                Assign("total", Var("total")
                       + CallExpr("ply0",
                                  (Var("root") * 9 + Var("game"))
                                  % BOARD, -9999)),
            ]),
        ]),
        Return(Var("nodes")),
    ])
    return m
