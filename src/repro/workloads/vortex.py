"""vortex-analog: an object-oriented in-memory database.

SPEC95 ``vortex`` manages persistent object stores: moderate iteration
counts (~12 per execution), mid-size bodies (~216 instructions) and
mixed regular/irregular control.  The analog maintains a record store
(id, key, payload fields) with hash-probe lookups, insertions with
collision chains, field-validation loops per transaction, and periodic
range scans.
"""

from repro.lang import (
    Assign,
    CallExpr,
    For,
    If,
    Index,
    Module,
    Return,
    Store,
    Var,
    While,
)
from repro.workloads.base import register
from repro.workloads.common import LCG_ADD, LCG_MASK, LCG_MUL

NSLOTS = 256
NFIELDS = 12         # payload words validated per touched record


@register("vortex", "object database transactions; probe loops and "
          "per-record validation, nesting 2-3", "int")
def build(scale=1):
    m = Module("vortex")
    m.array("ids", NSLOTS)           # 0 = empty
    m.array("keys", NSLOTS)
    m.array("payload", NSLOTS * NFIELDS)
    m.scalar("rng", 7321)
    m.scalar("stored", 0)
    m.scalar("found", 0)
    m.scalar("checksum", 0)

    f = Var("f")

    m.function("probe", ["key"], [
        # Returns slot holding key, or -(first free slot) - 1.
        Assign("h", (Var("key") * 2654435761) % NSLOTS),
        Assign("steps", 0),
        While(Var("steps") < NSLOTS, [
            If(Index("ids", Var("h")).eq(0), [
                Return(0 - Var("h") - 1),
            ]),
            If(Index("keys", Var("h")).eq(Var("key")), [
                Return(Var("h")),
            ]),
            Assign("h", (Var("h") + 1) % NSLOTS),
            Assign("steps", Var("steps") + 1),
        ]),
        Return(0 - 1),
    ])

    m.function("validate", ["slot"], [
        # Walk every payload field of the record with a fat body: field
        # decode, range check and running checksum (vortex's per-object
        # integrity checks).
        Assign("sum", 0),
        Assign("prev", 0),
        For("f", 0, NFIELDS, [
            Assign("w", Index("payload", Var("slot") * NFIELDS + f)),
            Assign("lo", Var("w") & 255),
            Assign("hi", (Var("w") >> 8) & 255),
            If(Var("lo") > Var("hi"),
               [Assign("w", Var("hi") * 256 + Var("lo"))]),
            Assign("sum", (Var("sum") * 33 + Var("w") + Var("prev") * (f + 1))
                   % 1000003),
            Assign("prev", Var("w")),
        ]),
        Return(Var("sum") % 65521),
    ])

    m.function("insert", ["key"], [
        Assign("slot", CallExpr("probe", Var("key"))),
        If(Var("slot") < 0, [
            Assign("slot", 0 - Var("slot") - 1),
            Store("ids", Var("slot"), 1),
            Store("keys", Var("slot"), Var("key")),
            For("f", 0, NFIELDS, [
                Store("payload", Var("slot") * NFIELDS + f,
                      Var("key") * 3 + f),
            ]),
            Assign("stored", Var("stored") + 1),
        ]),
        Return(Var("slot")),
    ])

    m.function("main", [], [
        For("txn", 0, 60 * scale, [
            Assign("rng", (Var("rng") * LCG_MUL + LCG_ADD) & LCG_MASK),
            Assign("key", Var("rng") % 180 + 1),
            Assign("slot", CallExpr("insert", Var("key"))),
            If(Var("slot") >= 0, [
                Assign("checksum", Var("checksum")
                       + CallExpr("validate", Var("slot"))),
                Assign("found", Var("found") + 1),
            ]),
            # Periodic short range scan over a window of the store.
            If((Var("txn") % 8).eq(0), [
                Assign("live", 0),
                Assign("w0", (Var("txn") * 7) % (NSLOTS - 16)),
                For("s", 0, 16, [
                    If(Index("ids", Var("w0") + Var("s")).ne(0), [
                        Assign("live", Var("live") + 1),
                    ]),
                ]),
            ]),
        ]),
        Return(Var("checksum") + Var("found")),
    ])
    return m
