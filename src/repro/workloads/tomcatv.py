"""tomcatv-analog: vectorized mesh generation.

SPEC95 ``tomcatv`` iteratively relaxes mesh coordinates: ~57 iterations
per execution, nesting ~3, near-perfect control regularity (the paper
singles it out as almost reaching the maximum TPC).  The analog relaxes
two coordinate planes and accumulates a residual per sweep.
"""

from repro.lang import Assign, For, Index, Module, Return, Store, Var
from repro.workloads.base import register
from repro.workloads.common import ramp_init

N = 42


@register("tomcatv", "mesh relaxation; high trip counts, nesting 3, "
          "regular control with a residual reduction", "fp")
def build(scale=1):
    m = Module("tomcatv")
    m.array("x", N * N, init=ramp_init(N * N, start=5, step=3))
    m.array("y", N * N, init=ramp_init(N * N, start=9, step=7))
    m.scalar("residual", 0)

    j, i = Var("j"), Var("i")
    cell = j * N + i

    relax = [
        Assign("nx", (Index("x", cell - 1) + Index("x", cell + 1)
                      + Index("x", cell - N) + Index("x", cell + N)) // 4),
        Assign("ny", (Index("y", cell - 1) + Index("y", cell + 1)
                      + Index("y", cell - N) + Index("y", cell + N)) // 4),
        Assign("rx", Var("nx") - Index("x", cell)),
        Assign("ry", Var("ny") - Index("y", cell)),
        Assign("residual",
               Var("residual") + Var("rx") * Var("rx")
               + Var("ry") * Var("ry")),
        Store("x", cell, Var("nx")),
        Store("y", cell, Var("ny")),
    ]

    m.function("main", [], [
        For("it", 0, 7 * scale, [
            Assign("residual", 0),
            For("j", 1, N - 1, [For("i", 1, N - 1, relax)]),
        ]),
        Return(Var("residual")),
    ])
    return m
