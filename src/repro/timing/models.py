"""Built-in timing models.

* :class:`IdealTiming` -- the paper's machine, verbatim; simulations
  under it are bit-for-bit identical to the pre-timing-layer engine.
* :class:`OverheadTiming` -- ideal rates plus per-event costs: a
  *spawn* charge per forked thread, a *promote* charge per
  verification, a *squash* charge per discarded thread.
* :class:`WidthTiming` -- every TU fetches/retires *width* instructions
  per cycle instead of one (the superscalar-TU variant).
* :class:`ClassCostTiming` -- a per-instruction-class cost table fed
  from the workload's control-flow records: control transfers cost
  their class's cycles, straight-line instructions cost ``other``.

Factories canonicalize no-op configurations (all-zero overheads,
width 1, an all-ones cost table) to :class:`IdealTiming`, so sweeps
that include the zero point share its simulations with every
ideal-model pass.
"""

from bisect import bisect_left

from repro.isa.instructions import InstrKind
from repro.timing.base import TimingModel
from repro.timing.registry import register_timing
from repro.trace import kernels


class IdealTiming(TimingModel):
    """One instruction per cycle per TU, free speculation events."""


@register_timing("ideal")
def _make_ideal():
    return IdealTiming()


def _check_cost(name, value, minimum=0):
    if not isinstance(value, int) or value < minimum:
        raise ValueError("timing parameter %s must be an integer >= %d, "
                         "got %r" % (name, minimum, value))
    return value


class OverheadTiming(TimingModel):
    """Ideal rates with non-zero speculation-event costs."""

    def __init__(self, spawn=0, squash=0, promote=0):
        self.spawn = _check_cost("spawn", spawn)
        self.squash = _check_cost("squash", squash)
        self.promote = _check_cost("promote", promote)
        self.name = ("overhead(spawn=%d,squash=%d,promote=%d)"
                     % (self.spawn, self.squash, self.promote))

    def key(self):
        return ("overhead", self.spawn, self.squash, self.promote)

    def spawn_cost(self, count):
        return self.spawn * count

    def promote_cost(self):
        return self.promote

    def squash_cost(self, count):
        return self.squash * count


@register_timing("overhead", params=("spawn", "squash", "promote"))
def _make_overhead(spawn=0, squash=0, promote=0):
    if spawn == squash == promote == 0:
        return IdealTiming()
    return OverheadTiming(spawn=spawn, squash=squash, promote=promote)


class WidthTiming(TimingModel):
    """Width-limited TUs: *width* instructions per cycle each.

    Retire groups are aligned to the stream: reaching position ``p``
    costs ``ceil(p / width)`` cycles, so an advance is priced as the
    difference of two aligned clocks.  The telescoping form keeps
    totals independent of how the engine segments the walk (pricing
    each inter-event stretch with its own ``ceil`` would overcharge
    loop-event-dense regions, exactly where speculation happens).
    :meth:`progress` is the exact inverse of the same clock.
    """

    def __init__(self, width=1):
        self.width = _check_cost("width", width, minimum=1)
        self.name = "width(%d)" % self.width

    def key(self):
        return ("width", self.width)

    def cycles(self, pos, distance):
        width = self.width
        return -(-(pos + distance) // width) - (-(-pos // width))

    def progress(self, elapsed, start_seq, cap):
        width = self.width
        done = width * (elapsed + -(-start_seq // width)) - start_seq
        if done < 0:
            return 0
        return done if done < cap else cap


@register_timing("width", params=("width",))
def _make_width(width=1):
    if width == 1:
        return IdealTiming()
    return WidthTiming(width=width)


#: ``classcost`` parameter name -> :class:`InstrKind` it prices.
_CLASS_PARAMS = (
    ("branch", InstrKind.BRANCH),
    ("jump", InstrKind.JUMP),
    ("ijump", InstrKind.IJUMP),
    ("call", InstrKind.CALL),
    ("ret", InstrKind.RET),
    ("halt", InstrKind.HALT),
    ("other", InstrKind.OTHER),
)


class ClassCostTiming(TimingModel):
    """Position-dependent rates from a per-instruction-class cost table.

    The model is fed every control-flow record of the workload before
    any simulation runs (the session does this when ``wants_records``
    is set); straight-line instructions -- implicit in the ``seq`` gaps
    between records -- cost ``other`` cycles each.  Advance costs are
    answered from a prefix-sum over the fed records, so the engine
    keeps its O(#events) walk with an O(log #records) lookup per
    event.
    """

    wants_records = True

    def __init__(self, **costs):
        self._costs = {}
        for param, kind in _CLASS_PARAMS:
            self._costs[int(kind)] = _check_cost(
                param, costs.pop(param, 1))
        if costs:
            raise ValueError("unknown classcost parameter(s): %s"
                             % ", ".join(sorted(costs)))
        self.other = self._costs[int(InstrKind.OTHER)]
        shown = ["%s=%d" % (param, self._costs[int(kind)])
                 for param, kind in _CLASS_PARAMS
                 if self._costs[int(kind)] != 1]
        self.name = "classcost(%s)" % ",".join(shown)
        # Record seqs and the cumulative extra cost (class cost minus
        # the straight-line rate) of all records up to and including
        # each; cost(0..p) = other*p + extra of records with seq < p.
        self._seqs = []
        self._extra = []
        self._total_extra = 0

    def key(self):
        return ("classcost",) + tuple(
            self._costs[int(kind)] for _, kind in _CLASS_PARAMS)

    def feed_record(self, record):
        delta = self._costs[record.kind] - self.other
        if delta:
            self._total_extra += delta
            self._seqs.append(record.seq)
            self._extra.append(self._total_extra)

    def feed_batch(self, batch):
        # Columnar fast path: only the seq and kind columns matter, and
        # the kernel turns them into the prefix-sum increments in bulk
        # (a table gather + cumsum under numpy).
        seqs, extras, total = kernels.classcost_extras(
            batch, self._costs, self.other, self._total_extra)
        if seqs:
            self._seqs.extend(seqs)
            self._extra.extend(extras)
            self._total_extra = total

    def _cost_to(self, pos):
        """Cycles to execute stream positions ``[0, pos)``."""
        i = bisect_left(self._seqs, pos)
        return self.other * pos + (self._extra[i - 1] if i else 0)

    def cycles(self, pos, distance):
        return self._cost_to(pos + distance) - self._cost_to(pos)

    def progress(self, elapsed, start_seq, cap):
        base = self._cost_to(start_seq)
        if self._cost_to(start_seq + cap) - base <= elapsed:
            return cap
        lo, hi = 0, cap
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._cost_to(start_seq + mid) - base <= elapsed:
                lo = mid
            else:
                hi = mid - 1
        return lo


@register_timing("classcost",
                 params=tuple(param for param, _ in _CLASS_PARAMS))
def _make_classcost(**costs):
    model = ClassCostTiming(**costs)
    if all(cost == 1 for cost in model._costs.values()):
        return IdealTiming()
    return model
