"""Registry mapping timing-model names to factories.

Mirrors :mod:`repro.analysis.registry`: built-ins register at import
time, third-party models plug into the runner CLI by registering a
factory -- no engine or runner changes needed::

    @register_timing("mymodel", params=("latency",))
    def make_mymodel(latency=0):
        return MyModel(latency)

:func:`make_timing` resolves a CLI-style spec string
(``name[:k=v,...]``, e.g. ``overhead:spawn=8,squash=4``) or passes an
existing :class:`~repro.timing.base.TimingModel` through unchanged.
Every error raised for a bad spec is a :class:`ValueError` with a
human-readable message, so callers (the runner) can surface it as a
clean CLI error rather than a traceback.
"""

from repro.timing.base import TimingModel

_REGISTRY = {}      # name -> (factory, valid param names)


def register_timing(name, params=()):
    """Decorator registering a timing-model factory under *name*.

    *params* lists the keyword arguments the factory accepts; specs
    naming any other parameter are rejected up front.  Re-registering
    the same factory is allowed; a different one under a taken name
    raises.
    """
    def wrap(factory):
        existing = _REGISTRY.get(name)
        if existing is not None \
                and existing[0].__qualname__ != factory.__qualname__:
            raise ValueError("timing model %r already registered" % name)
        _REGISTRY[name] = (factory, tuple(params))
        return factory
    return wrap


def timing_names():
    """Registered model names, in registration order."""
    return list(_REGISTRY)


def parse_timing_spec(spec):
    """Split ``name[:k=v,...]`` into ``(name, {param: int})``."""
    name, _, rest = spec.strip().partition(":")
    name = name.strip()
    if not name:
        raise ValueError("empty timing-model name in %r" % spec)
    params = {}
    if rest:
        for item in rest.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, value = item.partition("=")
            key = key.strip()
            if not sep or not key:
                raise ValueError(
                    "malformed timing parameter %r in %r "
                    "(expected k=v)" % (item, spec))
            try:
                params[key] = int(value.strip())
            except ValueError:
                raise ValueError(
                    "timing parameter %r in %r is not an integer"
                    % (item, spec)) from None
    return name, params


def make_timing(spec):
    """A :class:`TimingModel` from *spec*.

    *spec* is ``None`` (the ideal model), an existing model instance
    (returned as-is), or a ``name[:k=v,...]`` string resolved through
    the registry.
    """
    if spec is None:
        from repro.timing.models import IdealTiming
        return IdealTiming()
    if isinstance(spec, TimingModel):
        return spec
    name, params = parse_timing_spec(spec)
    try:
        factory, valid = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            "unknown timing model %r (known: %s)"
            % (name, ", ".join(timing_names()))) from None
    unknown = sorted(set(params) - set(valid))
    if unknown:
        raise ValueError(
            "unknown parameter(s) %s for timing model %r (valid: %s)"
            % (", ".join(unknown), name,
               ", ".join(valid) if valid else "none"))
    return factory(**params)
