"""The timing-model protocol.

The paper evaluates an idealized multithreaded machine: every thread
unit retires one instruction per cycle, spawning a thread is free,
promotion is instantaneous, squashes cost nothing.  A
:class:`TimingModel` makes each of those assumptions explicit and
replaceable: the speculation engine routes *every* time advance and
overhead charge through the model it was constructed with, so asking
"does control speculation still pay off when forks cost 32 cycles?" is
a model swap, not an engine fork (see ``docs/TIMING.md``).

A model answers two kinds of questions:

* **Rates** — how many cycles the non-speculative thread needs to cover
  a stretch of the dynamic instruction stream (:meth:`cycles`), and how
  many instructions a speculative thread gets through in a given number
  of cycles (:meth:`progress`).  The engine keeps its O(#events) walk
  as long as these only depend on the distance covered; a model whose
  rates vary along the stream (the per-instruction-class cost table)
  sets :attr:`wants_records` and is fed every control-flow record of
  the replay before the simulation runs.
* **Overheads** — extra cycles charged at speculation events:
  :meth:`spawn_cost` when threads fork, :meth:`promote_cost` when a
  speculated thread is verified and promoted, :meth:`squash_cost` when
  threads are discarded.  The engine accumulates these into
  ``SpeculationResult.overhead_cycles``.

Models must be **read-only during a simulation**: the engine may run
many simulations (different TU counts, policies) against one model
instance, and ``ctx.shared`` memoization relies on a model being fully
described by :meth:`key`.  Per-run state is not allowed; per-*workload*
state (the record-fed cost table) is set up before any simulation via
:meth:`feed_record`.
"""


class TimingModel:
    """Base timing model; the defaults ARE the paper's ideal machine.

    Subclasses override the hooks they need.  All cycle values are
    integers; costs must be non-negative.
    """

    #: Model name as reported in ``SpeculationResult.timing_name``.
    name = "ideal"

    #: True when the model must see every CF record of the workload's
    #: replay (via :meth:`feed_record`) before simulations run.
    wants_records = False

    def key(self):
        """Hashable canonical configuration, for memoization.  Two
        models with equal keys must produce identical simulations."""
        return ("ideal",)

    def feed_record(self, record):
        """One control-flow record of the workload being replayed
        (only called when :attr:`wants_records`)."""

    def feed_batch(self, batch):
        """One :class:`~repro.trace.batch.RecordBatch` of the replay
        (only called when :attr:`wants_records`).  The default decodes
        to :meth:`feed_record`; record-fed models override it with a
        columnar loop."""
        feed_record = self.feed_record
        for record in batch.iter_records():
            feed_record(record)

    # -- rates ---------------------------------------------------------------

    def cycles(self, pos, distance):
        """Cycles the non-speculative thread needs to advance
        *distance* instructions starting at stream position *pos*."""
        return distance

    def progress(self, elapsed, start_seq, cap):
        """Instructions a speculative thread starting at *start_seq*
        executes in *elapsed* cycles, never more than *cap*."""
        return elapsed if elapsed < cap else cap

    # -- overheads -----------------------------------------------------------

    def spawn_cost(self, count):
        """Cycles charged when *count* threads are forked at once."""
        return 0

    def promote_cost(self):
        """Cycles charged when a speculated thread is verified correct
        and promoted to non-speculative."""
        return 0

    def squash_cost(self, count):
        """Cycles charged when *count* threads are squashed at once."""
        return 0

    def __repr__(self):
        return "%s(%s)" % (type(self).__name__, self.name)
