"""Pluggable timing models for the speculation engine.

The public surface (see ``docs/TIMING.md``): a :class:`TimingModel`
supplies the cycle costs the paper idealizes away -- thread-spawn,
promotion/verification and squash overheads, per-TU fetch/retire
width, and optionally a per-instruction-class cost table fed from
trace records.  :func:`make_timing` resolves a CLI-style spec string
(``overhead:spawn=8``), :func:`register_timing` plugs third-party
models into the same registry the built-ins use.
"""

from repro.timing.base import TimingModel
from repro.timing.models import (
    ClassCostTiming,
    IdealTiming,
    OverheadTiming,
    WidthTiming,
)
from repro.timing.registry import (
    make_timing,
    parse_timing_spec,
    register_timing,
    timing_names,
)

__all__ = [
    "ClassCostTiming",
    "IdealTiming",
    "OverheadTiming",
    "TimingModel",
    "WidthTiming",
    "make_timing",
    "parse_timing_spec",
    "register_timing",
    "timing_names",
]
