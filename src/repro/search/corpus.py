"""The committed frontier corpus: search winners as named workloads.

A search winner is promoted by writing one JSON *case file* under
``tests/frontier/``: the full profile, the generator seed, the
evaluation settings, and the pinned metrics the candidate scored.
Committed cases are first-class workloads -- ``frontier-<objective>-<k>``
resolves through the ordinary registry
(:func:`~repro.workloads.base.get` falls back to
:func:`resolve_frontier`), so ``runner characterize --workloads
frontier-tpc-inversion-1`` or a sweep over the corpus just works.

The golden regression tests (``tests/test_frontier.py``) re-evaluate
every committed case from scratch and assert (a) the pinned metrics
reproduce exactly and (b) the case still satisfies its objective's
frontier property.  A generator or simulator change that shifts a
frontier workload's behaviour fails those tests loudly -- the corpus
is the search's lasting artifact, the way the trace cache is the
pipeline's.
"""

import json
import os
from dataclasses import dataclass

from repro.search.evaluate import CandidateMetrics
from repro.search.objectives import EvalSettings, get_objective

#: Committed case files (and their workload names) start with this.
FRONTIER_PREFIX = "frontier-"

#: Environment variable overriding :func:`frontier_dir`.
FRONTIER_ENV_VAR = "REPRO_FRONTIER_DIR"

#: Bump when the case file layout changes.
CASE_FORMAT = 1


def frontier_dir():
    """The corpus directory: ``$REPRO_FRONTIER_DIR`` when set, the
    repository's ``tests/frontier`` otherwise."""
    override = os.environ.get(FRONTIER_ENV_VAR)
    if override:
        return override
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "tests", "frontier")


@dataclass(frozen=True)
class FrontierCase:
    """One committed frontier workload, fully pinned."""

    name: str
    objective: str
    property_text: str
    score: float
    profile: object             # WorkloadProfile
    gen_seed: int
    settings: EvalSettings
    metrics: CandidateMetrics
    provenance: dict

    def to_payload(self):
        return {
            "format": CASE_FORMAT,
            "name": self.name,
            "objective": self.objective,
            "property": self.property_text,
            "score": self.score,
            "profile": self.profile.to_dict(),
            "generator_seed": self.gen_seed,
            "settings": self.settings.to_dict(),
            "metrics": self.metrics.to_dict(),
            "provenance": dict(self.provenance),
        }

    @classmethod
    def from_payload(cls, payload):
        from repro.workloads.synthetic import WorkloadProfile

        if not isinstance(payload, dict) \
                or payload.get("format") != CASE_FORMAT:
            raise ValueError(
                "not a frontier case file (format %r, expected %d)"
                % (payload.get("format") if isinstance(payload, dict)
                   else None, CASE_FORMAT))
        try:
            return cls(
                name=payload["name"],
                objective=payload["objective"],
                property_text=payload["property"],
                score=payload["score"],
                profile=WorkloadProfile.from_dict(payload["profile"]),
                gen_seed=payload["generator_seed"],
                settings=EvalSettings.from_dict(payload["settings"]),
                metrics=CandidateMetrics.from_dict(
                    payload["name"], payload["metrics"]),
                provenance=payload.get("provenance", {}),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError("unreadable frontier case: %s" % exc) \
                from None


def case_path(name, directory=None):
    """Where *name*'s case file lives (whether or not it exists)."""
    return os.path.join(directory or frontier_dir(), name + ".json")


def load_case(name, directory=None):
    """The committed :class:`FrontierCase` called *name* (a frontier
    workload name or a path to a case file)."""
    path = name if os.sep in name or name.endswith(".json") \
        else case_path(name, directory)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise KeyError("no frontier case %r (looked at %s)"
                       % (name, path)) from None
    except json.JSONDecodeError as exc:
        raise ValueError("unreadable frontier case %s: %s"
                         % (path, exc)) from None
    return FrontierCase.from_payload(payload)


def frontier_names(directory=None):
    """Sorted names of every committed case."""
    directory = directory or frontier_dir()
    try:
        entries = os.listdir(directory)
    except FileNotFoundError:
        return []
    return sorted(os.path.splitext(entry)[0] for entry in entries
                  if entry.startswith(FRONTIER_PREFIX)
                  and entry.endswith(".json"))


def resolve_frontier(name, directory=None):
    """Resolve and register the frontier workload *name*.

    The :func:`~repro.workloads.base.get` fallback for ``frontier-``
    names: loads the committed case and registers a workload *under
    the frontier name itself* whose builder regenerates the pinned
    profile at the pinned seed.  Raises :class:`KeyError` when no such
    case is committed, keeping registry lookup errors KeyErrors.
    """
    from repro.workloads.base import Workload, register_workload
    from repro.workloads.synthetic import generate_module

    case = load_case(name, directory)
    profile, seed = case.profile, case.gen_seed

    def builder(scale):
        return generate_module(profile, seed, scale)

    workload = Workload(
        name, builder,
        "frontier corpus case (%s): %s"
        % (case.objective, case.property_text),
        profile.category,
        default_max_instructions=profile.default_max_instructions)
    return register_workload(workload)


def export_winners(spec, winners, directory=None, limit=None):
    """Write the frontier-satisfying *winners* of *spec*'s search as
    case files; returns the written paths (best score first).

    Only winners whose metrics satisfy the objective's frontier
    property are exported -- a search that never crossed the frontier
    exports nothing rather than committing a weak case.  Files are
    named ``frontier-<objective>-<k>.json`` (k = 1-based rank) and
    overwrite any previous export of the same rank.
    """
    objective = get_objective(spec.objective)
    keep = [w for w in winners if w.frontier]
    if limit is not None:
        keep = keep[:limit]
    directory = directory or frontier_dir()
    os.makedirs(directory, exist_ok=True)
    paths = []
    for rank, winner in enumerate(keep, start=1):
        name = "%s%s-%d" % (FRONTIER_PREFIX, spec.objective, rank)
        case = FrontierCase(
            name=name,
            objective=spec.objective,
            property_text=objective.property_text,
            score=winner.score,
            profile=winner.profile,
            gen_seed=winner.gen_seed,
            settings=spec.settings,
            metrics=winner.metrics,
            provenance={
                "search_id": spec.sweep_id,
                "search_spec": json.loads(spec.to_json()),
                "synthetic_name": winner.name,
                "eval_index": winner.eval_index,
            },
        )
        path = case_path(name, directory)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(case.to_payload(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        paths.append(path)
    return paths
