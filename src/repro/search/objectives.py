"""Search objectives: what "adversarial" means, as a score.

An :class:`Objective` turns one candidate's
:class:`~repro.search.evaluate.CandidateMetrics` into a scalar score
(higher = deeper into the frontier) for the hill climber, plus a
boolean *frontier property* -- the pinned claim a promoted workload
must keep satisfying forever (the golden regression tests in
``tests/test_frontier.py`` assert exactly this predicate).

Built-ins:

``tpc-inversion``
    Speculation pays on the paper's ideal machine but *loses* once
    spawns cost real cycles: ideal speedup > 1.0 while the overhead
    model's speedup < 1.0 at the same policy/TU configuration.  Score
    is the smaller of the two margins, so climbing improves both sides
    of the inversion at once.

``coverage-collapse``
    The loop detector's coverage (fraction of dynamic instructions
    inside detected loops) collapses far below the paper's 57-99%
    band.  Score is ``1 - coverage``.

``policy-divergence``
    The spawning policies disagree maximally: score is the TPC spread
    (max - min) across the evaluated policies on the ideal machine at
    the fixed TU count.  The paper's policy *ranking* claims are
    weakest exactly where this spread peaks.

Third-party objectives register with :func:`register_objective`; the
``runner search --objective`` flag accepts any registered name.
"""

from dataclasses import dataclass
from typing import Optional, Tuple

#: Frontier property thresholds (see each objective's docstring).
COVERAGE_COLLAPSE_BELOW = 0.55
POLICY_SPREAD_AT_LEAST = 0.20


@dataclass(frozen=True)
class EvalSettings:
    """The fixed evaluation coordinates every candidate is scored at.

    ``timing`` is the realistic-overhead model of the ``tpc-inversion``
    objective (any :func:`repro.timing.make_timing` spec that does not
    canonicalize to ideal); ``policy`` is the single policy that
    objective compares across timings, while ``policies`` is the set
    the divergence objective spreads over (every policy is simulated
    under both timings regardless, so all objectives read from one
    shared metrics bundle).
    """

    tus: int = 4
    policy: str = "str"
    policies: Tuple[str, ...] = ("idle", "str", "str(3)")
    timing: str = "overhead:spawn=8,squash=0,promote=0"
    scale: int = 1
    max_instructions: Optional[int] = None
    cls_capacity: int = 16

    def __post_init__(self):
        from repro.core.speculation import make_policy
        from repro.timing import make_timing

        if not isinstance(self.tus, int) or self.tus < 1:
            raise ValueError("tus must be an integer >= 1")
        if self.scale < 1:
            raise ValueError("scale must be >= 1")
        if self.cls_capacity < 1:
            raise ValueError("cls_capacity must be >= 1")
        if self.max_instructions is not None \
                and self.max_instructions < 1:
            raise ValueError("max_instructions must be >= 1")
        policies = tuple(self.policies)
        if not policies:
            raise ValueError("policies must name at least one policy")
        for policy in policies:
            make_policy(policy)     # ValueError on unknown policies
        object.__setattr__(self, "policies", policies)
        if self.policy not in policies:
            raise ValueError("policy %r must be one of the evaluated "
                             "policies (%s)"
                             % (self.policy, ", ".join(policies)))
        make_timing(self.timing)    # ValueError on a bad spec

    def to_dict(self):
        return {
            "tus": self.tus,
            "policy": self.policy,
            "policies": list(self.policies),
            "timing": self.timing,
            "scale": self.scale,
            "max_instructions": self.max_instructions,
            "cls_capacity": self.cls_capacity,
        }

    @classmethod
    def from_dict(cls, payload):
        try:
            return cls(
                tus=payload["tus"],
                policy=payload["policy"],
                policies=tuple(payload["policies"]),
                timing=payload["timing"],
                scale=payload["scale"],
                max_instructions=payload["max_instructions"],
                cls_capacity=payload["cls_capacity"],
            )
        except (KeyError, TypeError) as exc:
            raise ValueError("unreadable eval settings: %s" % exc) \
                from None


class Objective:
    """One way of scoring how adversarial a candidate workload is.

    Subclasses (or instances built with the constructor hooks) define
    :meth:`score` and :meth:`frontier`; ``property_text`` is the
    human-readable statement of the frontier property, rendered into
    reports, corpus files, and docs.
    """

    def __init__(self, name, description, score_fn, frontier_fn,
                 property_text):
        self.name = name
        self.description = description
        self._score = score_fn
        self._frontier = frontier_fn
        self.property_text = property_text

    def validate(self, settings):
        """Reject *settings* this objective cannot be computed under;
        the default accepts everything."""

    def score(self, metrics, settings):
        """Scalar score of *metrics*; higher = more adversarial."""
        return self._score(metrics, settings)

    def frontier(self, metrics, settings):
        """Whether *metrics* satisfy the pinned frontier property."""
        return self._frontier(metrics, settings)

    def __repr__(self):
        return "Objective(%r)" % self.name


class _InversionObjective(Objective):
    def __init__(self):
        super().__init__(
            "tpc-inversion",
            "speculation pays on the ideal machine but loses under "
            "the overhead timing model",
            None, None,
            "ideal speedup > 1.0 and overhead speedup < 1.0 at the "
            "evaluated policy/TU configuration")

    def validate(self, settings):
        from repro.timing import make_timing

        if make_timing(settings.timing).key() == ("ideal",):
            raise ValueError(
                "tpc-inversion needs a non-ideal --timing model to "
                "invert against (got %r)" % settings.timing)

    def score(self, metrics, settings):
        ideal = metrics.sim(settings.policy, "ideal")["speedup"]
        overhead = metrics.sim(settings.policy, "overhead")["speedup"]
        return min(ideal - 1.0, 1.0 - overhead)

    def frontier(self, metrics, settings):
        ideal = metrics.sim(settings.policy, "ideal")["speedup"]
        overhead = metrics.sim(settings.policy, "overhead")["speedup"]
        return ideal > 1.0 and overhead < 1.0


class _CoverageObjective(Objective):
    def __init__(self):
        super().__init__(
            "coverage-collapse",
            "loop detector coverage collapses below the paper's "
            "57-99% band",
            None, None,
            "loop coverage < %.2f" % COVERAGE_COLLAPSE_BELOW)

    def score(self, metrics, settings):
        return 1.0 - metrics.coverage

    def frontier(self, metrics, settings):
        return metrics.coverage < COVERAGE_COLLAPSE_BELOW


class _DivergenceObjective(Objective):
    def __init__(self):
        super().__init__(
            "policy-divergence",
            "spawning policies disagree maximally (ideal-machine TPC "
            "spread at fixed TUs)",
            None, None,
            "TPC spread across policies >= %.2f on the ideal machine"
            % POLICY_SPREAD_AT_LEAST)

    def validate(self, settings):
        if len(settings.policies) < 2:
            raise ValueError("policy-divergence needs at least two "
                             "policies to disagree")

    def score(self, metrics, settings):
        tpcs = [metrics.sim(policy, "ideal")["tpc"]
                for policy in settings.policies]
        return max(tpcs) - min(tpcs)

    def frontier(self, metrics, settings):
        return self.score(metrics, settings) >= POLICY_SPREAD_AT_LEAST


#: Registered objectives by name (``runner search --objective``).
OBJECTIVES = {}


def register_objective(objective):
    """Register *objective*; raises on duplicate names."""
    if objective.name in OBJECTIVES:
        raise ValueError("objective %r already registered"
                         % objective.name)
    OBJECTIVES[objective.name] = objective
    return objective


register_objective(_InversionObjective())
register_objective(_CoverageObjective())
register_objective(_DivergenceObjective())


def get_objective(name):
    """The registered objective called *name*."""
    try:
        return OBJECTIVES[name]
    except KeyError:
        raise KeyError("unknown objective %r (known: %s)"
                       % (name, ", ".join(sorted(OBJECTIVES)))) \
            from None


def objective_names():
    return sorted(OBJECTIVES)
