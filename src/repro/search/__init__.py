"""Adversarial workload search over the synthetic profile space.

The paper's claims (loop coverage, speculation TPC, policy ranking)
were established on a hand-picked suite; this package actively hunts
the *scenario frontier* instead: workloads where speculation inverts
under realistic overheads (``tpc-inversion``), where the detector's
coverage collapses (``coverage-collapse``), or where the spawning
policies disagree maximally (``policy-divergence``).

The search (:mod:`repro.search.loop`) is a deterministic
random-restart hill climber over :class:`~repro.workloads.synthetic.
profile.WorkloadProfile` knobs and generator seeds -- every mutation
comes from one seeded stream, so ``runner search --seed 7`` walks the
same trajectory on every run.  Candidate evaluation reuses the
pipeline end-to-end: candidates register as ordinary synthetic
workloads, traces go through the trace cache, simulations through the
derived store, and every evaluated metric is checkpointed into the PR 7
sweep store under the *same content keys* as ``runner sweep`` cells --
interrupting a search and resubmitting it recomputes only the missing
candidates.

Winners are promoted into the committed frontier corpus
(``tests/frontier/``, see :mod:`repro.search.corpus`): profile JSON +
generator seed + pinned metrics, each loadable as a named workload
(``frontier-<objective>-<k>``) and pinned by golden regression tests.

See ``docs/SEARCH.md``.
"""

from repro.search.objectives import (
    EvalSettings,
    Objective,
    get_objective,
    objective_names,
    register_objective,
)
from repro.search.spec import SearchSpec
from repro.search.evaluate import CandidateMetrics, evaluate_candidate
from repro.search.loop import SearchStats, Winner, run_search
from repro.search.corpus import (
    FRONTIER_PREFIX,
    FrontierCase,
    export_winners,
    frontier_dir,
    frontier_names,
    load_case,
    resolve_frontier,
)

__all__ = [
    "CandidateMetrics",
    "EvalSettings",
    "FRONTIER_PREFIX",
    "FrontierCase",
    "Objective",
    "SearchSpec",
    "SearchStats",
    "Winner",
    "evaluate_candidate",
    "export_winners",
    "frontier_dir",
    "frontier_names",
    "get_objective",
    "load_case",
    "objective_names",
    "register_objective",
    "resolve_frontier",
    "run_search",
]
