"""``runner search``: the adversarial-search front end.

Submits one :class:`~repro.search.spec.SearchSpec` to the hill climber
(:func:`~repro.search.loop.run_search`) and renders the winner table.
The search checkpoints into the sweep store, so an interrupted run is
resumed by *resubmitting the same command line* -- the trajectory is a
pure function of the flags, and the store hands back every cell the
interrupted run finished.  See ``docs/SEARCH.md``::

    runner search --objective tpc-inversion --budget 200 --seed 7 \\
        --timing overhead:spawn=8
    runner search --objective coverage-collapse --budget 100
    runner search --objective policy-divergence --export-dir tests/frontier
    runner search --list
"""

import argparse
import sys

from repro.search.corpus import export_winners, frontier_names
from repro.search.loop import run_search
from repro.search.objectives import OBJECTIVES, EvalSettings, \
    objective_names
from repro.search.spec import SearchSpec
from repro.sweep.store import SweepStore, SweepStoreError, \
    default_store_dir


def _build_settings(args, parser):
    kwargs = {
        "tus": args.tus,
        "timing": args.timing,
        "scale": args.scale,
        "max_instructions": args.max_instructions,
        "cls_capacity": args.cls_capacity,
    }
    if args.policies is not None:
        policies = tuple(p.strip() for p in args.policies.split(",")
                         if p.strip())
        if not policies:
            parser.error("--policies selected nothing")
        kwargs["policies"] = policies
    if args.policy is not None:
        kwargs["policy"] = args.policy
    elif args.policies is not None:
        # A custom policy set needs an in-set comparison policy.
        kwargs["policy"] = kwargs["policies"][0]
    try:
        return EvalSettings(**kwargs)
    except ValueError as exc:
        parser.error(str(exc))


def _winner_table(spec, winners, stats):
    """The deterministic winner table (stats stay out of it, so two
    cold runs of the same spec render byte-identical tables even when
    one restored cells from the store)."""
    from repro.experiments.report import ExperimentResult

    headers = ("rank", "workload", "score", "frontier", "coverage",
               "ideal speedup", "overhead speedup")
    rows = []
    for rank, w in enumerate(winners, start=1):
        ideal = w.metrics.sim(spec.settings.policy, "ideal")
        overhead = w.metrics.sim(spec.settings.policy, "overhead")
        rows.append((rank, w.name, "%.4f" % w.score,
                     "yes" if w.frontier else "no",
                     "%.3f" % w.metrics.coverage,
                     "%.3f" % ideal["speedup"],
                     "%.3f" % overhead["speedup"]))
    return ExperimentResult(
        "search: %s" % spec.objective, headers, rows,
        notes=[OBJECTIVES[spec.objective].description,
               "frontier property: %s"
               % OBJECTIVES[spec.objective].property_text],
        meta={"search_id": spec.sweep_id, "budget": spec.budget,
              "seed": spec.seed})


def search_main(argv=None):
    """Entry point of ``runner search ...``."""
    from repro.experiments.runner import _emit
    from repro.pipeline import default_cache_dir

    parser = argparse.ArgumentParser(
        prog="runner search",
        description="Hunt adversarial synthetic workloads with a "
                    "deterministic, store-checkpointed hill climber.")
    parser.add_argument("--objective", choices=objective_names(),
                        default=None,
                        help="what to maximize (required unless "
                             "--list)")
    parser.add_argument("--budget", type=int, default=200,
                        help="candidate evaluations (default 200)")
    parser.add_argument("--seed", type=int, default=1,
                        help="search trajectory seed (default 1)")
    parser.add_argument("--top", type=int, default=5, metavar="K",
                        help="winners to report (default 5)")
    parser.add_argument("--stall", type=int, default=6, metavar="N",
                        help="rejections before a random restart "
                             "(default 6)")
    parser.add_argument("--tus", type=int, default=4,
                        help="TU count candidates are evaluated at "
                             "(default 4)")
    parser.add_argument("--policy", default=None, metavar="P",
                        help="policy the inversion objective compares "
                             "across timings (default str)")
    parser.add_argument("--policies", default=None, metavar="P,...",
                        help="policies evaluated per candidate "
                             "(default idle,str,str(3))")
    parser.add_argument("--timing", metavar="SPEC",
                        default="overhead:spawn=8,squash=0,promote=0",
                        help="overhead timing model candidates are "
                             "scored under (default %(default)s)")
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--cls-capacity", type=int, default=16)
    parser.add_argument("--max-instructions", type=int, default=None)
    parser.add_argument("--store", default=default_store_dir(),
                        metavar="DIR",
                        help="sweep store used as checkpoint + result "
                             "cache (default %(default)s)")
    parser.add_argument("--no-store", action="store_true",
                        help="run without checkpointing (every cell "
                             "recomputes; resume disabled)")
    parser.add_argument("--cache-dir", default=default_cache_dir())
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the trace/derived caches")
    parser.add_argument("--export-dir", default=None, metavar="DIR",
                        help="export frontier-satisfying winners as "
                             "corpus case files into DIR")
    parser.add_argument("--format", choices=("text", "csv", "json"),
                        default="text")
    parser.add_argument("--output-dir", default=None, metavar="DIR")
    parser.add_argument("--metrics", default=None, metavar="PATH",
                        help="write a run manifest to PATH (summary "
                             "JSON + .jsonl event stream)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for candidate "
                             "evaluation; the trajectory and winner "
                             "table are identical to --jobs 1 "
                             "(default 1)")
    parser.add_argument("--list", action="store_true",
                        help="list objectives and the committed "
                             "frontier corpus")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    if args.list:
        print("objectives (--objective):")
        for name in objective_names():
            print("  %-18s %s" % (name, OBJECTIVES[name].description))
        committed = frontier_names()
        print("committed frontier corpus (%d case%s):"
              % (len(committed), "" if len(committed) == 1 else "s"))
        for name in committed:
            print("  %s" % name)
        return 0
    if args.objective is None:
        parser.error("name an --objective (or use --list)")

    settings = _build_settings(args, parser)
    try:
        spec = SearchSpec(objective=args.objective, budget=args.budget,
                          seed=args.seed, top_k=args.top,
                          stall_limit=args.stall, settings=settings)
    except (KeyError, ValueError) as exc:
        parser.error(str(exc))

    from repro.obs import RunObserver

    store = None if args.no_store else SweepStore(args.store)
    cache_dir = None if args.no_cache else args.cache_dir
    observer = RunObserver(
        metrics_path=args.metrics,
        argv=["runner", "search"]
        + list(sys.argv[1:] if argv is None else argv),
        command="search",
        copy_dirs=(None if args.no_store else args.store, cache_dir))

    def progress(index, outcome, score):
        print("[%d/%d] %s score=%s cells: %d run, %d restored"
              % (index + 1, spec.budget, outcome.name,
                 "failed" if score is None else "%.4f" % score,
                 outcome.executed, outcome.restored),
              file=sys.stderr)

    try:
        with observer:
            winners, stats = run_search(spec, store=store,
                                        cache_dir=cache_dir,
                                        progress=progress,
                                        jobs=args.jobs)
    except SweepStoreError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    finally:
        if store is not None:
            store.close()

    print("search %s: %d evaluated (%d memo hits, %d failures), "
          "%d accepted, %d restarts, cells: %d executed, %d restored"
          % (spec.sweep_id, stats.evaluated, stats.memo_hits,
             stats.failures, stats.accepted, stats.restarts,
             stats.executed_cells, stats.restored_cells),
          file=sys.stderr)

    observer.finalize(extra_meta={
        "search_id": spec.sweep_id, "objective": spec.objective,
        "evaluated": stats.evaluated, "memo_hits": stats.memo_hits,
        "failures": stats.failures, "accepted": stats.accepted,
        "restarts": stats.restarts,
        "best_score": stats.best_score})

    _emit("search-%s" % spec.objective, [_winner_table(spec, winners,
                                                       stats)],
          args.format, args.output_dir)

    if args.export_dir is not None:
        paths = export_winners(spec, winners, directory=args.export_dir)
        for path in paths:
            print("exported %s" % path)
        if not paths:
            print("no winners satisfied the frontier property; "
                  "nothing exported")
    return 0
