"""Search run specifications: the grid analog for adversarial search.

A :class:`SearchSpec` pins one search completely -- the objective, the
evaluation settings, the candidate budget, the RNG seed, and the hill
climber's shape parameters.  Like a sweep grid
(:class:`~repro.sweep.spec.SweepSpec`) it serializes to canonical JSON
whose digest is the **search id**: resubmitting the same command line
maps onto the same stored run, which is what makes
resume-by-resubmission work -- the trajectory is a pure function of
the spec, so a rerun revisits the same candidates and the sweep store
hands back every cell it already holds.

Search runs are recorded in the sweep store's ``sweeps`` table under
``experiment = "search"`` so their cells are never pruned as orphans;
:meth:`~repro.sweep.store.SweepStore.spec_for` refuses to hand them to
``runner sweep --resume`` (resume a search by resubmitting ``runner
search`` with the same flags instead).
"""

import hashlib
import json
from dataclasses import dataclass, field

from repro.search.objectives import EvalSettings, get_objective

#: The ``sweeps``-table experiment tag of search runs.
SEARCH_EXPERIMENT = "search"


@dataclass(frozen=True)
class SearchSpec:
    """One fully pinned search run."""

    objective: str
    budget: int = 200
    seed: int = 1
    top_k: int = 5
    #: consecutive rejected moves before a random restart
    stall_limit: int = 6
    settings: EvalSettings = field(default_factory=EvalSettings)

    def __post_init__(self):
        objective = get_objective(self.objective)   # KeyError if unknown
        if not isinstance(self.budget, int) or self.budget < 1:
            raise ValueError("budget must be an integer >= 1")
        if self.seed < 0:
            raise ValueError("seed must be >= 0")
        if not isinstance(self.top_k, int) or self.top_k < 1:
            raise ValueError("top_k must be an integer >= 1")
        if not isinstance(self.stall_limit, int) or self.stall_limit < 1:
            raise ValueError("stall_limit must be an integer >= 1")
        objective.validate(self.settings)

    #: duck-compat with SweepSpec for SweepStore.record_sweep
    @property
    def experiment(self):
        return SEARCH_EXPERIMENT

    def to_json(self):
        """Canonical JSON (sorted keys, no whitespace variance)."""
        payload = {
            "experiment": SEARCH_EXPERIMENT,
            "objective": self.objective,
            "budget": self.budget,
            "seed": self.seed,
            "top_k": self.top_k,
            "stall_limit": self.stall_limit,
            "settings": self.settings.to_dict(),
        }
        return json.dumps(payload, sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text):
        """The exact inverse of :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError("unreadable search spec: %s" % exc) \
                from None
        if not isinstance(payload, dict) \
                or payload.get("experiment") != SEARCH_EXPERIMENT:
            raise ValueError("not a search spec")
        try:
            return cls(
                objective=payload["objective"],
                budget=payload["budget"],
                seed=payload["seed"],
                top_k=payload["top_k"],
                stall_limit=payload["stall_limit"],
                settings=EvalSettings.from_dict(payload["settings"]),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError("unreadable search spec: %s" % exc) \
                from None

    @property
    def sweep_id(self):
        """Content digest of the run: same spec, same id, always."""
        digest = hashlib.sha256(self.to_json().encode("ascii"))
        return digest.hexdigest()[:16]
