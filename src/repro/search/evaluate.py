"""Candidate evaluation: one profile+seed through the whole pipeline.

:func:`evaluate_candidate` registers the candidate as an ordinary
synthetic workload, expands the evaluation into content-keyed cells
with the sweep subsystem's key discipline
(:func:`~repro.sweep.spec.workload_trace_key` +
:func:`~repro.sweep.spec.sim_cell_suffix` /
:func:`~repro.sweep.spec.loopstats_cell_suffix`), restores whatever
the sweep store already holds, and executes only the missing cells
through the sweep orchestrator's own per-workload worker
(:func:`~repro.sweep.orchestrator.run_workload_cells`) -- trace cache
and derived store included.  The search is therefore a new *front end*
on the PR 1-7 machinery, not a parallel evaluation stack: a candidate
the store has seen (in a previous search, a sweep, or a direct run
whose keys overlap) costs zero simulation work.

Every candidate is priced into one uniform metrics bundle
(:class:`CandidateMetrics`): loop statistics + coverage, and one
simulation per evaluated policy under both the ideal machine and the
settings' overhead timing model.  All objectives read from that bundle,
so cells are shared across objectives too.
"""

import json

from repro.sweep.spec import (
    Cell,
    KIND_LOOPSTATS,
    KIND_SIM,
    canonical_timing,
    loopstats_cell_suffix,
    sim_cell_suffix,
    workload_trace_key,
)

#: The two timing legs every policy is simulated under.
LEG_IDEAL = "ideal"
LEG_OVERHEAD = "overhead"

#: The sim-metric fields pinned per (policy, leg).
SIM_FIELDS = ("tpc", "speedup", "hit_ratio", "overhead_cycles")


class CandidateMetrics:
    """The uniform metrics bundle of one evaluated candidate.

    ``coverage`` is the detector's loop coverage; ``sims`` maps
    ``(policy, leg)`` -- leg :data:`LEG_IDEAL` or :data:`LEG_OVERHEAD`
    -- to a dict of :data:`SIM_FIELDS`.  When the settings' timing
    model canonicalizes to ideal both legs alias the same simulation.
    """

    __slots__ = ("name", "coverage", "total_instructions", "sims")

    def __init__(self, name, coverage, total_instructions, sims):
        self.name = name
        self.coverage = coverage
        self.total_instructions = total_instructions
        self.sims = sims

    def sim(self, policy, leg):
        """The :data:`SIM_FIELDS` dict of one ``(policy, leg)``."""
        return self.sims[(policy, leg)]

    def to_dict(self):
        """JSON-ready form (corpus pinning); keys become
        ``"<policy>@<leg>"`` strings."""
        return {
            "coverage": self.coverage,
            "total_instructions": self.total_instructions,
            "sims": {"%s@%s" % key: dict(value)
                     for key, value in sorted(self.sims.items())},
        }

    @classmethod
    def from_dict(cls, name, payload):
        """The inverse of :meth:`to_dict`."""
        try:
            sims = {}
            for label, value in payload["sims"].items():
                policy, _, leg = label.rpartition("@")
                sims[(policy, leg)] = {f: value[f] for f in SIM_FIELDS}
            return cls(name, payload["coverage"],
                       payload["total_instructions"], sims)
        except (KeyError, TypeError) as exc:
            raise ValueError("unreadable metrics payload: %s" % exc) \
                from None


class EvalOutcome:
    """What evaluating one candidate produced.

    ``metrics`` is ``None`` when any cell failed (``error`` says why);
    ``executed``/``restored`` count cells computed this call vs handed
    back by the store -- the resume tests assert on exactly these.
    """

    __slots__ = ("name", "metrics", "executed", "restored", "error",
                 "cell_keys")

    def __init__(self, name, metrics, executed, restored, error,
                 cell_keys):
        self.name = name
        self.metrics = metrics
        self.executed = executed
        self.restored = restored
        self.error = error
        self.cell_keys = cell_keys


def candidate_cells(name, settings):
    """The candidate's cell list: loopstats + per-policy sims under
    the ideal and overhead legs, deduplicated by content key."""
    trace_key, limit = workload_trace_key(
        name, settings.scale, settings.max_instructions)
    overhead_timing, _, overhead_key = canonical_timing(settings.timing)

    cells = []
    seen = set()

    def add(kind, suffix, timing=None, policy=None, tus=None):
        key = "%s/%s" % (trace_key, suffix)
        if key in seen:
            return
        seen.add(key)
        cells.append(Cell(
            key=key, workload=name, trace_key=trace_key,
            scale=settings.scale, max_instructions=limit,
            cls_capacity=settings.cls_capacity, kind=kind,
            timing=timing, policy=policy, tus=tus))

    add(KIND_LOOPSTATS, loopstats_cell_suffix(settings.cls_capacity))
    for policy in settings.policies:
        add(KIND_SIM,
            sim_cell_suffix(settings.tus, policy, None,
                            settings.cls_capacity),
            timing="ideal", policy=policy, tus=settings.tus)
        add(KIND_SIM,
            sim_cell_suffix(settings.tus, policy, overhead_key,
                            settings.cls_capacity),
            timing=overhead_timing, policy=policy, tus=settings.tus)
    return cells


def _row_facts(status, tpc, speedup, hit_ratio, overhead_cycles,
               detail, error):
    return {"status": status, "tpc": tpc, "speedup": speedup,
            "hit_ratio": hit_ratio, "overhead_cycles": overhead_cycles,
            "detail": detail, "error": error}


def _decode_detail(detail):
    if not detail:
        return {}
    try:
        payload = json.loads(detail)
    except (TypeError, ValueError):
        return {}
    return payload if isinstance(payload, dict) else {}


class CandidatePlan:
    """The parent-side half of one evaluation: the candidate's cell
    list, the facts the store already held, and the cells still to
    compute.

    :func:`plan_candidate` builds it, a worker (or the caller inline)
    computes ``missing`` through :func:`~repro.sweep.orchestrator.
    run_workload_cells`, and :func:`finish_candidate` merges the rows
    back, commits them, and assembles the :class:`EvalOutcome` --
    splitting the store I/O (parent only) from the simulation work
    (poolable) so ``runner search --jobs N`` can evaluate speculated
    candidates concurrently.
    """

    __slots__ = ("name", "settings", "cells", "keys", "facts",
                 "missing", "restored")

    def __init__(self, name, settings, cells, facts, missing,
                 restored):
        self.name = name
        self.settings = settings
        self.cells = cells
        self.keys = [cell.key for cell in cells]
        self.facts = facts
        self.missing = missing
        self.restored = restored

    def descriptors(self):
        """The picklable per-cell work list of ``missing``."""
        return [(c.key, c.kind, c.timing, c.policy, c.tus)
                for c in self.missing]


def plan_candidate(name, settings, store=None):
    """Expand candidate *name* into cells and restore what *store*
    already holds; returns a :class:`CandidatePlan`."""
    cells = candidate_cells(name, settings)
    keys = [cell.key for cell in cells]
    done = store.done_keys(keys) if store is not None else set()
    facts = {}
    if done:
        for row in store.get_cells(cell_keys=sorted(done)):
            facts[row.cell_key] = _row_facts(
                row.status, row.tpc, row.speedup, row.hit_ratio,
                row.overhead_cycles, row.detail, row.error)
    missing = [cell for cell in cells if cell.key not in done]
    return CandidatePlan(name, settings, cells, facts, missing,
                         len(done))


def run_candidate_cells(profile_payload, gen_seed, scale,
                        max_instructions, cls_capacity, cache_dir,
                        descriptors):
    """Compute one candidate's missing cells; the pool-worker entry
    point of ``runner search --jobs N``.

    Module-level and by-value: *profile_payload* is
    :meth:`~repro.workloads.synthetic.WorkloadProfile.to_dict` output,
    so a fresh worker process -- whose registry has never seen the
    candidate -- can register it itself and resolve the synthetic name
    exactly like the parent did.
    """
    from repro.sweep.orchestrator import run_workload_cells
    from repro.workloads.synthetic import WorkloadProfile, \
        ensure_profile_workload

    profile = WorkloadProfile.from_dict(profile_payload)
    name = ensure_profile_workload(profile, gen_seed)
    return run_workload_cells(name, scale, max_instructions,
                              cls_capacity, cache_dir, descriptors)


def finish_candidate(plan, rows, store=None):
    """Merge the computed *rows* of ``plan.missing`` into the plan's
    facts, commit them, and price the metrics bundle; returns the
    :class:`EvalOutcome`."""
    from repro.sweep.orchestrator import _base_row

    name = plan.name
    settings = plan.settings
    facts = plan.facts
    by_key = {cell.key: cell for cell in plan.cells}
    if rows:
        stored = []
        for partial in rows:
            base = _base_row(by_key[partial["cell_key"]])
            base.update(partial)
            stored.append(base)
            facts[partial["cell_key"]] = _row_facts(
                partial["status"], partial["tpc"], partial["speedup"],
                partial["hit_ratio"], partial["overhead_cycles"],
                partial["detail"], partial["error"])
        if store is not None:
            store.put_cells(stored)

    failed = [key for key in plan.keys
              if facts.get(key, {}).get("status") != "done"]
    if failed:
        first = facts.get(failed[0], {})
        return EvalOutcome(name, None, len(plan.missing),
                           plan.restored,
                           first.get("error") or "cell missing",
                           plan.keys)

    overhead_timing, _, _ = canonical_timing(settings.timing)
    coverage = None
    total_instructions = None
    sims = {}
    for cell in plan.cells:
        fact = facts[cell.key]
        if cell.kind == KIND_LOOPSTATS:
            detail = _decode_detail(fact["detail"])
            coverage = detail.get("coverage")
            stats = detail.get("stats")
            if isinstance(stats, dict):
                total_instructions = stats.get("total_instructions")
        else:
            value = {f: fact[f] for f in ("tpc", "speedup",
                                          "hit_ratio")}
            value["overhead_cycles"] = fact["overhead_cycles"]
            if cell.timing == "ideal":
                sims[(cell.policy, LEG_IDEAL)] = value
            if cell.timing == overhead_timing:
                sims[(cell.policy, LEG_OVERHEAD)] = value
    if coverage is None:
        return EvalOutcome(name, None, len(plan.missing),
                           plan.restored,
                           "loopstats cell has no coverage", plan.keys)
    metrics = CandidateMetrics(name, coverage, total_instructions,
                               sims)
    return EvalOutcome(name, metrics, len(plan.missing),
                       plan.restored, None, plan.keys)


def evaluate_candidate(profile, gen_seed, settings, store=None,
                       cache_dir=None):
    """Evaluate ``(profile, gen_seed)`` at *settings*; returns an
    :class:`EvalOutcome`.

    With a *store*, already-done cells are restored instead of
    recomputed and fresh results are checkpointed back (one committed
    transaction) before this returns -- interrupting a search after
    any candidate loses nothing.  Without one, every cell computes
    fresh (the golden frontier tests run this way).
    """
    from repro.sweep.orchestrator import run_workload_cells
    from repro.workloads.synthetic import ensure_profile_workload

    name = ensure_profile_workload(profile, gen_seed)
    plan = plan_candidate(name, settings, store)
    rows = []
    if plan.missing:
        _, rows = run_workload_cells(
            name, settings.scale, settings.max_instructions,
            settings.cls_capacity, cache_dir, plan.descriptors())
    return finish_candidate(plan, rows, store)
