"""The search loop: deterministic random-restart hill climbing.

The climber walks the synthetic profile space one candidate at a time:
mutate the current ``(profile, generator seed)`` state, evaluate the
candidate through the pipeline (:func:`~repro.search.evaluate.
evaluate_candidate`), accept on strict score improvement, and restart
from a fresh random point after :attr:`~repro.search.spec.SearchSpec.
stall_limit` consecutive rejections.  Every random draw -- restart
point, move choice, knob jitter, seed perturbation -- comes from one
:class:`~repro.util.rng.Xorshift64` seeded from the spec, and every
score is a deterministic function of the candidate, so the whole
trajectory is a pure function of the spec: two cold runs of the same
``runner search`` command produce identical winner lists.

That purity is also the resume story.  A rerun of an interrupted
search revisits the same candidates in the same order; the sweep store
hands back every cell the interrupted run checkpointed, so only the
missing candidates execute (:class:`SearchStats` counts restored vs
executed cells -- the resume tests assert the second run's
``executed_cells`` is exactly the shortfall).
"""

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.obs import collector as obs
from repro.search.evaluate import evaluate_candidate
from repro.search.objectives import get_objective
from repro.util.rng import Xorshift64

#: Probability weights of the move kinds, in tenths: a move perturbs
#: the generator seed with probability 2/10, otherwise the profile.
SEED_MOVE_TENTHS = 2

#: Generator seeds are drawn from this inclusive range.
SEED_RANGE = (1, 1 << 30)


@dataclass(frozen=True)
class Winner:
    """One promoted candidate: everything the corpus needs to pin."""

    name: str
    profile: object
    gen_seed: int
    score: float
    frontier: bool
    metrics: object
    eval_index: int


@dataclass
class SearchStats:
    """Bookkeeping of one :func:`run_search` run."""

    evaluated: int = 0
    memo_hits: int = 0
    failures: int = 0
    accepted: int = 0
    restarts: int = 0
    executed_cells: int = 0
    restored_cells: int = 0
    best_score: Optional[float] = None


def _loop_seed(spec):
    """The RNG seed of *spec*'s trajectory: the user seed mixed with
    the objective name, so ``--seed 7`` walks *different* trajectories
    under different objectives (they hunt different frontiers) while
    staying a pure function of the spec."""
    tag = hashlib.sha256(spec.objective.encode("ascii")).digest()
    return (spec.seed + 1) * 0x9E3779B97F4A7C15 \
        ^ int.from_bytes(tag[:8], "big")


def _restart(rng):
    """A fresh starting point: a uniformly sampled profile most of the
    time, a mutated built-in profile otherwise (keeps the walk
    anchored near the paper's suite without depending on it)."""
    from repro.workloads.synthetic import PROFILES, as_candidate, \
        mutate_profile, random_profile

    gen_seed = rng.randint(*SEED_RANGE)
    if rng.randint(0, 3) == 0:
        names = sorted(PROFILES)
        base = PROFILES[names[rng.randint(0, len(names) - 1)]]
        return mutate_profile(as_candidate(base), rng, moves=2), \
            gen_seed
    return random_profile(rng), gen_seed


def _move(rng, profile, gen_seed):
    """One neighbourhood step from ``(profile, gen_seed)``."""
    from repro.workloads.synthetic import mutate_profile

    if rng.randint(0, 9) < SEED_MOVE_TENTHS:
        return profile, rng.randint(*SEED_RANGE)
    return mutate_profile(profile, rng), gen_seed


def run_search(spec, store=None, cache_dir=None, progress=None):
    """Run *spec*'s search; returns ``(winners, stats)``.

    ``winners`` is the deduplicated top-``spec.top_k`` candidate list,
    best first (ties broken by discovery order).  *store* is a
    :class:`~repro.sweep.store.SweepStore` used both as the resume
    checkpoint and as a cross-run result cache; *progress*, when
    given, is called as ``progress(index, outcome, score)`` after
    every evaluation (an exception it raises aborts the search --
    the fault-injection tests interrupt runs this way).
    """
    objective = get_objective(spec.objective)
    rng = Xorshift64(_loop_seed(spec))
    stats = SearchStats()
    memo = {}       # (profile name, gen seed) -> (score, Winner)
    best = {}       # candidate name -> Winner
    if store is not None:
        store.record_sweep(spec, ())

    profile, gen_seed = _restart(rng)
    accepted = None     # the state moves are proposed from
    current_score = None
    stall = 0

    for index in range(spec.budget):
        memo_key = (profile.name, gen_seed)
        if memo_key in memo:
            stats.memo_hits += 1
            obs.add("search.memo_hits")
            score, winner = memo[memo_key]
        else:
            with obs.span("search.evaluate", candidate=profile.name,
                          index=index):
                outcome = evaluate_candidate(profile, gen_seed,
                                             spec.settings, store=store,
                                             cache_dir=cache_dir)
            stats.evaluated += 1
            stats.executed_cells += outcome.executed
            stats.restored_cells += outcome.restored
            collector = obs.active()
            if collector is not None:
                collector.add("search.candidates")
                collector.add("search.cells_executed", outcome.executed)
                collector.add("search.cells_restored", outcome.restored)
            if store is not None:
                store.record_sweep(spec, outcome.cell_keys)
            if outcome.metrics is None:
                stats.failures += 1
                obs.add("search.failures")
                score, winner = None, None
            else:
                score = objective.score(outcome.metrics,
                                        spec.settings)
                winner = Winner(
                    name=outcome.name, profile=profile,
                    gen_seed=gen_seed, score=score,
                    frontier=objective.frontier(outcome.metrics,
                                                spec.settings),
                    metrics=outcome.metrics, eval_index=index)
                obs.point("search.score", score,
                          candidate=outcome.name, index=index)
            memo[memo_key] = (score, winner)
            if progress is not None:
                progress(index, outcome, score)

        if winner is not None:
            kept = best.get(winner.name)
            if kept is None or winner.eval_index < kept.eval_index:
                best[winner.name] = winner
            if stats.best_score is None \
                    or score > stats.best_score:
                stats.best_score = score

        improved = score is not None and (current_score is None
                                          or score > current_score)
        if improved:
            accepted = (profile, gen_seed)
            current_score = score
            stats.accepted += 1
            stall = 0
        else:
            stall += 1

        if stall >= spec.stall_limit or accepted is None:
            profile, gen_seed = _restart(rng)
            accepted = None
            current_score = None
            stall = 0
            stats.restarts += 1
        else:
            # Propose the next neighbour from the *accepted* state
            # (the rejected candidate is abandoned); the draws still
            # advance the RNG, so repeated rejections explore
            # different neighbours of the same point.
            profile, gen_seed = _move(rng, *accepted)

    winners = sorted(best.values(),
                     key=lambda w: (-w.score, w.eval_index))
    return winners[:spec.top_k], stats
