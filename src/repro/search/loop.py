"""The search loop: deterministic random-restart hill climbing.

The climber walks the synthetic profile space one candidate at a time:
mutate the current ``(profile, generator seed)`` state, evaluate the
candidate through the pipeline (:func:`~repro.search.evaluate.
evaluate_candidate`), accept on strict score improvement, and restart
from a fresh random point after :attr:`~repro.search.spec.SearchSpec.
stall_limit` consecutive rejections.  Every random draw -- restart
point, move choice, knob jitter, seed perturbation -- comes from one
:class:`~repro.util.rng.Xorshift64` seeded from the spec, and every
score is a deterministic function of the candidate, so the whole
trajectory is a pure function of the spec: two cold runs of the same
``runner search`` command produce identical winner lists.

That purity is also the resume story.  A rerun of an interrupted
search revisits the same candidates in the same order; the sweep store
hands back every cell the interrupted run checkpointed, so only the
missing candidates execute (:class:`SearchStats` counts restored vs
executed cells -- the resume tests assert the second run's
``executed_cells`` is exactly the shortfall).

``jobs > 1`` keeps that exact trajectory while evaluating candidates
concurrently: the loop speculates down the rejection chain (see
:func:`run_search`), pricing the candidates the walk would visit if
upcoming evaluations reject while the head of the chain is decided.
Decisions replay strictly in index order, so winners and resume
semantics are bit-identical to the serial walk.
"""

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.obs import collector as obs
from repro.search.evaluate import evaluate_candidate
from repro.search.objectives import get_objective
from repro.util.rng import Xorshift64

#: Probability weights of the move kinds, in tenths: a move perturbs
#: the generator seed with probability 2/10, otherwise the profile.
SEED_MOVE_TENTHS = 2

#: Generator seeds are drawn from this inclusive range.
SEED_RANGE = (1, 1 << 30)


@dataclass(frozen=True)
class Winner:
    """One promoted candidate: everything the corpus needs to pin."""

    name: str
    profile: object
    gen_seed: int
    score: float
    frontier: bool
    metrics: object
    eval_index: int


@dataclass
class SearchStats:
    """Bookkeeping of one :func:`run_search` run."""

    evaluated: int = 0
    memo_hits: int = 0
    failures: int = 0
    accepted: int = 0
    restarts: int = 0
    executed_cells: int = 0
    restored_cells: int = 0
    best_score: Optional[float] = None


def _loop_seed(spec):
    """The RNG seed of *spec*'s trajectory: the user seed mixed with
    the objective name, so ``--seed 7`` walks *different* trajectories
    under different objectives (they hunt different frontiers) while
    staying a pure function of the spec."""
    tag = hashlib.sha256(spec.objective.encode("ascii")).digest()
    return (spec.seed + 1) * 0x9E3779B97F4A7C15 \
        ^ int.from_bytes(tag[:8], "big")


def _restart(rng):
    """A fresh starting point: a uniformly sampled profile most of the
    time, a mutated built-in profile otherwise (keeps the walk
    anchored near the paper's suite without depending on it)."""
    from repro.workloads.synthetic import PROFILES, as_candidate, \
        mutate_profile, random_profile

    gen_seed = rng.randint(*SEED_RANGE)
    if rng.randint(0, 3) == 0:
        names = sorted(PROFILES)
        base = PROFILES[names[rng.randint(0, len(names) - 1)]]
        return mutate_profile(as_candidate(base), rng, moves=2), \
            gen_seed
    return random_profile(rng), gen_seed


def _move(rng, profile, gen_seed):
    """One neighbourhood step from ``(profile, gen_seed)``."""
    from repro.workloads.synthetic import mutate_profile

    if rng.randint(0, 9) < SEED_MOVE_TENTHS:
        return profile, rng.randint(*SEED_RANGE)
    return mutate_profile(profile, rng), gen_seed


def run_search(spec, store=None, cache_dir=None, progress=None,
               jobs=1):
    """Run *spec*'s search; returns ``(winners, stats)``.

    ``winners`` is the deduplicated top-``spec.top_k`` candidate list,
    best first (ties broken by discovery order).  *store* is a
    :class:`~repro.sweep.store.SweepStore` used both as the resume
    checkpoint and as a cross-run result cache; *progress*, when
    given, is called as ``progress(index, outcome, score)`` after
    every evaluation (an exception it raises aborts the search --
    the fault-injection tests interrupt runs this way).

    *jobs* > 1 evaluates candidates concurrently across a process
    pool by *speculating down the rejection chain*: the trajectory is
    sequential (candidate ``i+1`` depends on whether candidate ``i``
    was accepted), but rejections dominate a hill climb, so the loop
    clones the RNG, generates the candidates the walk *would* visit
    if upcoming evaluations reject (memoized scores branch exactly),
    and prices them in parallel while the head of the chain is being
    decided.  A candidate that improves invalidates the speculated
    tail -- those futures are cancelled (or their content-keyed
    results kept for later reuse) and speculation restarts from the
    accepted state.  Decisions, store commits, memo updates, and
    *progress* calls all replay strictly in index order, so winners,
    scores, and resume semantics are identical to ``jobs=1``.
    """
    if jobs > 1:
        return _run_parallel(spec, store, cache_dir, progress, jobs)
    return _run_serial(spec, store, cache_dir, progress)


def _run_serial(spec, store, cache_dir, progress):
    objective = get_objective(spec.objective)
    rng = Xorshift64(_loop_seed(spec))
    stats = SearchStats()
    memo = {}       # (profile name, gen seed) -> (score, Winner)
    best = {}       # candidate name -> Winner
    if store is not None:
        store.record_sweep(spec, ())

    profile, gen_seed = _restart(rng)
    accepted = None     # the state moves are proposed from
    current_score = None
    stall = 0

    for index in range(spec.budget):
        memo_key = (profile.name, gen_seed)
        if memo_key in memo:
            stats.memo_hits += 1
            obs.add("search.memo_hits")
            score, winner = memo[memo_key]
        else:
            with obs.span("search.evaluate", candidate=profile.name,
                          index=index):
                outcome = evaluate_candidate(profile, gen_seed,
                                             spec.settings, store=store,
                                             cache_dir=cache_dir)
            stats.evaluated += 1
            stats.executed_cells += outcome.executed
            stats.restored_cells += outcome.restored
            collector = obs.active()
            if collector is not None:
                collector.add("search.candidates")
                collector.add("search.cells_executed", outcome.executed)
                collector.add("search.cells_restored", outcome.restored)
            if store is not None:
                store.record_sweep(spec, outcome.cell_keys)
            if outcome.metrics is None:
                stats.failures += 1
                obs.add("search.failures")
                score, winner = None, None
            else:
                score = objective.score(outcome.metrics,
                                        spec.settings)
                winner = Winner(
                    name=outcome.name, profile=profile,
                    gen_seed=gen_seed, score=score,
                    frontier=objective.frontier(outcome.metrics,
                                                spec.settings),
                    metrics=outcome.metrics, eval_index=index)
                obs.point("search.score", score,
                          candidate=outcome.name, index=index)
            memo[memo_key] = (score, winner)
            if progress is not None:
                progress(index, outcome, score)

        if winner is not None:
            kept = best.get(winner.name)
            if kept is None or winner.eval_index < kept.eval_index:
                best[winner.name] = winner
            if stats.best_score is None \
                    or score > stats.best_score:
                stats.best_score = score

        improved = score is not None and (current_score is None
                                          or score > current_score)
        if improved:
            accepted = (profile, gen_seed)
            current_score = score
            stats.accepted += 1
            stall = 0
        else:
            stall += 1

        if stall >= spec.stall_limit or accepted is None:
            profile, gen_seed = _restart(rng)
            accepted = None
            current_score = None
            stall = 0
            stats.restarts += 1
        else:
            # Propose the next neighbour from the *accepted* state
            # (the rejected candidate is abandoned); the draws still
            # advance the RNG, so repeated rejections explore
            # different neighbours of the same point.
            profile, gen_seed = _move(rng, *accepted)

    winners = sorted(best.values(),
                     key=lambda w: (-w.score, w.eval_index))
    return winners[:spec.top_k], stats


def _run_parallel(spec, store, cache_dir, progress, jobs):
    """The ``jobs > 1`` trajectory: identical decisions, speculated
    evaluations.

    The replay body below mirrors :func:`_run_serial` statement for
    statement -- only the *source* of an evaluation differs (a
    speculated pool result instead of an inline call).  Store reads
    happen at submission time and writes at replay time, both in the
    parent: cell keys embed the candidate's program fingerprint, so
    distinct in-flight candidates never share cells and plan-time
    ``done_keys`` answers match what the serial walk would have seen.
    """
    from concurrent.futures import ProcessPoolExecutor

    from repro.search.evaluate import finish_candidate, \
        plan_candidate, run_candidate_cells
    from repro.workloads.synthetic import ensure_profile_workload

    objective = get_objective(spec.objective)
    rng = Xorshift64(_loop_seed(spec))
    stats = SearchStats()
    memo = {}       # (profile name, gen seed) -> (score, Winner)
    best = {}       # candidate name -> Winner
    if store is not None:
        store.record_sweep(spec, ())

    profile, gen_seed = _restart(rng)
    accepted = None
    current_score = None
    stall = 0

    lookahead = 2 * jobs
    inflight = {}   # memo key -> (future, plan)
    ready = {}      # memo key -> (plan, rows): done, not yet replayed

    pool = ProcessPoolExecutor(max_workers=jobs)
    try:
        def speculate():
            """The next ``lookahead`` (key, profile, seed) states the
            walk visits assuming unevaluated candidates reject;
            memoized scores branch the chain exactly."""
            srng = Xorshift64(rng.state)
            sprof, sseed = profile, gen_seed
            sacc, sscore, sstall = accepted, current_score, stall
            chain = []
            for _ in range(lookahead):
                key = (sprof.name, sseed)
                chain.append((key, sprof, sseed))
                entry = memo.get(key)
                score = entry[0] if entry is not None else None
                if score is not None and (sscore is None
                                          or score > sscore):
                    sacc = (sprof, sseed)
                    sscore = score
                    sstall = 0
                else:
                    sstall += 1
                if sstall >= spec.stall_limit or sacc is None:
                    sprof, sseed = _restart(srng)
                    sacc, sscore, sstall = None, None, 0
                else:
                    sprof, sseed = _move(srng, *sacc)
            return chain

        def submit(key, prof, seed):
            if key in memo or key in inflight or key in ready:
                return
            try:
                name = ensure_profile_workload(prof, seed)
                plan = plan_candidate(name, spec.settings, store)
            except Exception:
                # Leave it unsubmitted; if the walk really reaches
                # this candidate, the inline fallback below raises at
                # the exact index the serial run would have.
                return
            if not plan.missing:
                ready[key] = (plan, [])
                return
            inflight[key] = (pool.submit(
                run_candidate_cells, prof.to_dict(), seed,
                spec.settings.scale, spec.settings.max_instructions,
                spec.settings.cls_capacity, cache_dir,
                plan.descriptors()), plan)
            obs.add("search.pooled_submits")

        peak_inflight = 0
        for index in range(spec.budget):
            chain = speculate()
            live = set()
            for key, prof, seed in chain:
                live.add(key)
                submit(key, prof, seed)
            peak_inflight = max(peak_inflight, len(inflight))
            # Drop speculations the last acceptance invalidated; ones
            # already running finish into `inflight` and are reused if
            # the walk ever reaches their (content-keyed) candidate.
            for key in [k for k in inflight if k not in live]:
                if inflight[key][0].cancel():
                    del inflight[key]

            memo_key = (profile.name, gen_seed)
            if memo_key in memo:
                stats.memo_hits += 1
                obs.add("search.memo_hits")
                score, winner = memo[memo_key]
            else:
                with obs.span("search.evaluate", candidate=profile.name,
                              index=index, pooled=True):
                    if memo_key in ready:
                        plan, rows = ready.pop(memo_key)
                        outcome = finish_candidate(plan, rows, store)
                        obs.add("search.speculation_hits")
                    elif memo_key in inflight:
                        future, plan = inflight.pop(memo_key)
                        _, rows = future.result()
                        outcome = finish_candidate(plan, rows, store)
                        obs.add("search.speculation_hits")
                    else:
                        outcome = evaluate_candidate(
                            profile, gen_seed, spec.settings,
                            store=store, cache_dir=cache_dir)
                        obs.add("search.inline_fallbacks")
                stats.evaluated += 1
                stats.executed_cells += outcome.executed
                stats.restored_cells += outcome.restored
                collector = obs.active()
                if collector is not None:
                    collector.add("search.candidates")
                    collector.add("search.cells_executed",
                                  outcome.executed)
                    collector.add("search.cells_restored",
                                  outcome.restored)
                if store is not None:
                    store.record_sweep(spec, outcome.cell_keys)
                if outcome.metrics is None:
                    stats.failures += 1
                    obs.add("search.failures")
                    score, winner = None, None
                else:
                    score = objective.score(outcome.metrics,
                                            spec.settings)
                    winner = Winner(
                        name=outcome.name, profile=profile,
                        gen_seed=gen_seed, score=score,
                        frontier=objective.frontier(outcome.metrics,
                                                    spec.settings),
                        metrics=outcome.metrics, eval_index=index)
                    obs.point("search.score", score,
                              candidate=outcome.name, index=index)
                memo[memo_key] = (score, winner)
                if progress is not None:
                    progress(index, outcome, score)

            if winner is not None:
                kept = best.get(winner.name)
                if kept is None or winner.eval_index < kept.eval_index:
                    best[winner.name] = winner
                if stats.best_score is None \
                        or score > stats.best_score:
                    stats.best_score = score

            improved = score is not None and (current_score is None
                                              or score > current_score)
            if improved:
                accepted = (profile, gen_seed)
                current_score = score
                stats.accepted += 1
                stall = 0
            else:
                stall += 1

            if stall >= spec.stall_limit or accepted is None:
                profile, gen_seed = _restart(rng)
                accepted = None
                current_score = None
                stall = 0
                stats.restarts += 1
            else:
                profile, gen_seed = _move(rng, *accepted)
    except BaseException:
        # Don't block an abort (Ctrl-C, a progress interrupt) on
        # stragglers; cancelled-or-orphaned speculation is recomputed
        # on resume.
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=True, cancel_futures=True)
    obs.gauge("search.peak_inflight", peak_inflight)

    winners = sorted(best.values(),
                     key=lambda w: (-w.score, w.eval_index))
    return winners[:spec.top_k], stats
