"""Baseline: conventional branch prediction over the suite.

Supports the paper's premise that loop-closing branches are highly
predictable -- the reason loops anchor thread speculation.  Reports
bimodal (Smith-style, the paper's reference [8]) and gshare (two-level,
reference [13]) accuracy split into closing vs other branches.
"""

from repro.core.branchpred import (
    BimodalPredictor,
    GSharePredictor,
    measure_branch_prediction,
)
from repro.experiments.report import ExperimentResult


def run(runner):
    rows = []
    reports = {}
    totals = {"closing_c": 0, "closing_t": 0, "other_c": 0, "other_t": 0,
              "gshare_c": 0, "gshare_t": 0}
    for name, _index in runner.indexes():
        trace = runner.trace(name)
        bimodal = measure_branch_prediction(trace, BimodalPredictor(),
                                            name)
        gshare = measure_branch_prediction(trace, GSharePredictor(), name)
        reports[name] = {"bimodal": bimodal, "gshare": gshare}
        rows.append((name,
                     round(100 * bimodal.closing_accuracy, 2),
                     round(100 * bimodal.other_accuracy, 2),
                     round(100 * bimodal.overall_accuracy, 2),
                     round(100 * gshare.overall_accuracy, 2)))
        totals["closing_c"] += bimodal.closing_correct
        totals["closing_t"] += bimodal.closing_total
        totals["other_c"] += bimodal.other_correct
        totals["other_t"] += bimodal.other_total
        totals["gshare_c"] += (gshare.closing_correct
                               + gshare.other_correct)
        totals["gshare_t"] += gshare.closing_total + gshare.other_total
    suite_row = (
        "SUITE",
        round(100 * totals["closing_c"] / max(1, totals["closing_t"]), 2),
        round(100 * totals["other_c"] / max(1, totals["other_t"]), 2),
        round(100 * (totals["closing_c"] + totals["other_c"])
              / max(1, totals["closing_t"] + totals["other_t"]), 2),
        round(100 * totals["gshare_c"] / max(1, totals["gshare_t"]), 2),
    )
    rows.insert(0, suite_row)
    return ExperimentResult(
        "Baseline: branch prediction accuracy (bimodal / gshare)",
        ("program", "closing %", "other %", "bimodal all %",
         "gshare all %"),
        rows,
        notes=["the paper's premise: loop-closing branches are highly "
               "predictable"],
        extra={"reports": reports},
    )


if __name__ == "__main__":
    import sys

    from repro.experiments.runner import experiment_main
    sys.exit(experiment_main("baselines"))
