"""Baseline: conventional branch prediction over the suite.

Supports the paper's premise that loop-closing branches are highly
predictable -- the reason loops anchor thread speculation.  Reports
bimodal (Smith-style, the paper's reference [8]) and gshare (two-level,
reference [13]) accuracy split into closing vs other branches.

Both predictors ride the shared record stream through one
:class:`~repro.core.branchpred.BranchPredictionStream` per workload --
one pass instead of the former two-passes-per-predictor replay.
"""

from repro.analysis import Analysis, register_analysis
from repro.core.branchpred import (
    BimodalPredictor,
    BranchPredictionStream,
    GSharePredictor,
)
from repro.experiments.report import ExperimentResult


@register_analysis("baselines")
class BaselinesAnalysis(Analysis):
    wants_records = True

    def __init__(self):
        self._rows = []
        self._reports = {}
        self._totals = {"closing_c": 0, "closing_t": 0, "other_c": 0,
                        "other_t": 0, "gshare_c": 0, "gshare_t": 0}
        self._stream = None

    def begin(self, ctx):
        self._stream = BranchPredictionStream(
            [BimodalPredictor(), GSharePredictor()])

    def feed_record(self, record):
        self._stream.feed(record)

    def feed_batch(self, batch):
        self._stream.feed_batch(batch)

    def abort(self, ctx):
        self._stream = None

    def finish(self, ctx):
        bimodal, gshare = self._stream.reports(ctx.name)
        self._stream = None
        self._reports[ctx.name] = {"bimodal": bimodal, "gshare": gshare}
        self._rows.append((ctx.name,
                           round(100 * bimodal.closing_accuracy, 2),
                           round(100 * bimodal.other_accuracy, 2),
                           round(100 * bimodal.overall_accuracy, 2),
                           round(100 * gshare.overall_accuracy, 2)))
        totals = self._totals
        totals["closing_c"] += bimodal.closing_correct
        totals["closing_t"] += bimodal.closing_total
        totals["other_c"] += bimodal.other_correct
        totals["other_t"] += bimodal.other_total
        totals["gshare_c"] += (gshare.closing_correct
                               + gshare.other_correct)
        totals["gshare_t"] += gshare.closing_total + gshare.other_total

    def result(self):
        totals = self._totals
        suite_row = (
            "SUITE",
            round(100 * totals["closing_c"]
                  / max(1, totals["closing_t"]), 2),
            round(100 * totals["other_c"] / max(1, totals["other_t"]), 2),
            round(100 * (totals["closing_c"] + totals["other_c"])
                  / max(1, totals["closing_t"] + totals["other_t"]), 2),
            round(100 * totals["gshare_c"]
                  / max(1, totals["gshare_t"]), 2),
        )
        rows = list(self._rows)
        rows.insert(0, suite_row)
        return ExperimentResult(
            "Baseline: branch prediction accuracy (bimodal / gshare)",
            ("program", "closing %", "other %", "bimodal all %",
             "gshare all %"),
            rows,
            notes=["the paper's premise: loop-closing branches are "
                   "highly predictable"],
            extra={"reports": self._reports},
        )


def run(runner):
    from repro.experiments.runner import run_experiment
    return run_experiment("baselines", runner)


if __name__ == "__main__":
    import sys

    from repro.experiments.runner import experiment_main
    sys.exit(experiment_main("baselines"))
