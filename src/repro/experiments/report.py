"""Shared result container and rendering for experiments."""

from repro.util.fmt import format_table


class ExperimentResult:
    """A named table of results with optional notes.

    ``rows`` is a list of tuples matching ``headers``; ``extra`` carries
    experiment-specific structured data (e.g. per-series dictionaries)
    for programmatic consumers and tests.
    """

    def __init__(self, name, headers, rows, notes=None, extra=None):
        self.name = name
        self.headers = tuple(headers)
        self.rows = [tuple(r) for r in rows]
        self.notes = notes or []
        self.extra = extra or {}

    def render(self):
        text = format_table(self.headers, self.rows, title=self.name)
        if self.notes:
            text += "\n" + "\n".join("note: %s" % n for n in self.notes)
        return text

    def row_for(self, key):
        """First row whose first column equals *key*."""
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError("no row %r in %s" % (key, self.name))

    def column(self, header):
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def to_csv(self):
        """Render as CSV (for spreadsheets / plotting scripts)."""
        def cell(value):
            text = str(value)
            if "," in text or '"' in text:
                text = '"%s"' % text.replace('"', '""')
            return text

        lines = [",".join(cell(h) for h in self.headers)]
        for row in self.rows:
            lines.append(",".join(cell(v) for v in row))
        return "\n".join(lines) + "\n"

    def save_csv(self, path):
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_csv())
        return path

    def to_json(self, indent=2):
        """Render name/headers/rows/notes as a JSON object.

        ``extra`` is deliberately excluded: it carries arbitrary
        analysis objects for programmatic consumers, not serializable
        table data.
        """
        import json

        return json.dumps(
            {"name": self.name, "headers": list(self.headers),
             "rows": [list(row) for row in self.rows],
             "notes": list(self.notes)},
            indent=indent)

    def save_json(self, path):
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")
        return path

    def __repr__(self):
        return "ExperimentResult(%r, %d rows)" % (self.name,
                                                  len(self.rows))
