"""Shared result container and rendering for experiments."""

from repro.util.fmt import format_table


class ExperimentResult:
    """A named table of results with optional notes.

    ``rows`` is a list of tuples matching ``headers``; ``extra`` carries
    experiment-specific structured data (e.g. per-series dictionaries)
    for programmatic consumers and tests.  ``meta`` is a small flat
    mapping of run-level facts that belong in *serialized* output too
    (e.g. the non-default timing model a speculation experiment ran
    under -- see the schema note in docs/ANALYSIS.md); it renders as a
    trailing line in text, ``#``-comment lines in CSV, and a ``"meta"``
    object in JSON, and is omitted everywhere when empty, keeping
    default-model output byte-identical to the meta-free format.
    """

    def __init__(self, name, headers, rows, notes=None, extra=None,
                 meta=None):
        self.name = name
        self.headers = tuple(headers)
        self.rows = [tuple(r) for r in rows]
        self.notes = notes or []
        self.extra = extra or {}
        self.meta = dict(meta) if meta else {}

    def render(self):
        text = format_table(self.headers, self.rows, title=self.name)
        if self.notes:
            text += "\n" + "\n".join("note: %s" % n for n in self.notes)
        if self.meta:
            text += "\nmeta: " + " ".join(
                "%s=%s" % (k, v) for k, v in self.meta.items())
        return text

    def row_for(self, key):
        """First row whose first column equals *key*."""
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError("no row %r in %s" % (key, self.name))

    def column(self, header):
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]

    def to_csv(self):
        """Render as CSV (for spreadsheets / plotting scripts)."""
        def cell(value):
            text = str(value)
            if "," in text or '"' in text:
                text = '"%s"' % text.replace('"', '""')
            return text

        lines = [",".join(cell(h) for h in self.headers)]
        for row in self.rows:
            lines.append(",".join(cell(v) for v in row))
        for key, value in self.meta.items():
            lines.append("# %s=%s" % (key, value))
        return "\n".join(lines) + "\n"

    def save_csv(self, path):
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_csv())
        return path

    def to_json(self, indent=2):
        """Render name/headers/rows/notes (and ``meta``, when present)
        as a JSON object.

        ``extra`` is deliberately excluded: it carries arbitrary
        analysis objects for programmatic consumers, not serializable
        table data.
        """
        import json

        payload = {"name": self.name, "headers": list(self.headers),
                   "rows": [list(row) for row in self.rows],
                   "notes": list(self.notes)}
        if self.meta:
            payload["meta"] = dict(self.meta)
        return json.dumps(payload, indent=indent)

    def save_json(self, path):
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")
        return path

    def __repr__(self):
        return "ExperimentResult(%r, %d rows)" % (self.name,
                                                  len(self.rows))


class TimingMeta:
    """Folds speculation runs into :class:`ExperimentResult` ``meta``.

    Speculation-consuming experiments :meth:`fold` every
    :class:`~repro.core.speculation.metrics.SpeculationResult` they
    render (in ``finish``, like any cross-workload accumulator) and
    attach :meth:`as_meta` to their result tables.  Under the default
    ideal model this yields ``{}`` — output stays byte-identical to the
    pre-timing format; under any other model the table carries
    ``timing_name`` and the total ``overhead_cycles`` of the runs
    behind it.
    """

    __slots__ = ("timing_name", "overhead_cycles")

    def __init__(self):
        self.timing_name = None
        self.overhead_cycles = 0

    def fold(self, result):
        self.timing_name = result.timing_name
        self.overhead_cycles += result.overhead_cycles
        return result

    def as_meta(self):
        if self.timing_name is None or self.timing_name == "ideal":
            return {}
        return {"timing_name": self.timing_name,
                "overhead_cycles": self.overhead_cycles}
