"""Ablations for the design choices the paper discusses in passing.

1. **Replacement policy** (section 2.3.2): LRU vs the nesting-aware
   insertion inhibit.  The paper found the improvement negligible.
2. **TPC accounting**: counting a correct thread's waiting-for-
   confirmation cycles vs only its executing cycles (DESIGN.md choice).
3. **CLS capacity** (section 2.2): how small a CLS starts dropping
   live loops (the paper argues 16 entries never overflow on SPEC95).
"""

from repro.core.detector import LoopDetector
from repro.core.speculation import simulate
from repro.core.tables import (
    POLICY_LRU,
    POLICY_NESTING_AWARE,
    TableHitRatioSimulator,
)
from repro.experiments.report import ExperimentResult


def replacement_policy_ablation(runner, sizes=(2, 4)):
    rows = []
    for size in sizes:
        ratios = {}
        for policy in (POLICY_LRU, POLICY_NESTING_AWARE):
            let_h = let_a = lit_h = lit_a = 0
            for _name, index in runner.indexes():
                sim = TableHitRatioSimulator(size, size, policy)
                sim.replay(index.events)
                let_h += sim.let_hits
                let_a += sim.let_accesses
                lit_h += sim.lit_hits
                lit_a += sim.lit_accesses
            ratios[policy] = (let_h / let_a if let_a else 0.0,
                              lit_h / lit_a if lit_a else 0.0)
        lru = ratios[POLICY_LRU]
        aware = ratios[POLICY_NESTING_AWARE]
        rows.append((size, round(100 * lru[0], 2),
                     round(100 * aware[0], 2),
                     round(100 * lru[1], 2), round(100 * aware[1], 2)))
    return ExperimentResult(
        "Ablation: LRU vs nesting-aware replacement",
        ("#entries", "LET lru %", "LET aware %", "LIT lru %",
         "LIT aware %"),
        rows,
        notes=["paper section 2.3.2: improvement is negligible"],
    )


def waiting_accounting_ablation(runner, num_tus=4):
    rows = []
    for name, index in runner.indexes():
        incl = simulate(index, num_tus=num_tus, policy="str", name=name,
                        count_waiting=True)
        excl = simulate(index, num_tus=num_tus, policy="str", name=name,
                        count_waiting=False)
        rows.append((name, round(incl.tpc, 2), round(excl.tpc, 2)))
    avg_incl = sum(r[1] for r in rows) / len(rows)
    avg_excl = sum(r[2] for r in rows) / len(rows)
    rows.insert(0, ("AVG", round(avg_incl, 2), round(avg_excl, 2)))
    return ExperimentResult(
        "Ablation: TPC accounting of waiting threads (STR, %d TUs)"
        % num_tus,
        ("program", "TPC incl. waiting", "TPC executing only"),
        rows,
        notes=["DESIGN.md counts waiting cycles; this bounds the effect"],
    )


def cls_capacity_ablation(runner, capacities=(2, 4, 8, 16)):
    rows = []
    for capacity in capacities:
        overflowed = 0
        executions = 0
        for workload in runner.workloads:
            detector = LoopDetector(cls_capacity=capacity)
            index = detector.run(runner.trace(workload.name))
            overflowed += detector.cls.overflow_count
            executions += len(index.executions)
        rows.append((capacity, overflowed,
                     round(100.0 * overflowed / executions, 3)
                     if executions else 0.0))
    return ExperimentResult(
        "Ablation: CLS capacity vs dropped live loops",
        ("CLS entries", "overflow drops", "% of executions"),
        rows,
        notes=["paper: 16 entries never overflow on SPEC95 (max "
               "nesting 11)"],
    )


def run(runner):
    return [
        replacement_policy_ablation(runner),
        waiting_accounting_ablation(runner),
        cls_capacity_ablation(runner),
    ]


if __name__ == "__main__":
    import sys

    from repro.experiments.runner import experiment_main
    sys.exit(experiment_main("ablations"))
