"""Ablations for the design choices the paper discusses in passing.

1. **Replacement policy** (section 2.3.2): LRU vs the nesting-aware
   insertion inhibit.  The paper found the improvement negligible.
2. **TPC accounting**: counting a correct thread's waiting-for-
   confirmation cycles vs only its executing cycles (see the
   modelling notes in docs/ARCHITECTURE.md).
3. **CLS capacity** (section 2.2): how small a CLS starts dropping
   live loops (the paper argues 16 entries never overflow on SPEC95).

All three ride the shared replay: the replacement sweep replays one
table-simulator pair per (size, policy) over the finished loop index
(a columnar walk, shared with figure4), and the CLS sweep feeds one
detector per capacity with each record batch -- no per-ablation trace
re-replays.
"""

from repro.analysis import Analysis, register_analysis, \
    shared_simulate, shared_table_sim
from repro.core.cls import CurrentLoopStack
from repro.core.events import ExecutionStart, SingleIteration
from repro.core.tables import POLICY_LRU, POLICY_NESTING_AWARE
from repro.experiments.report import ExperimentResult, TimingMeta

REPLACEMENT_SIZES = (2, 4)
REPLACEMENT_POLICIES = (POLICY_LRU, POLICY_NESTING_AWARE)
CLS_CAPACITIES = (2, 4, 8, 16)
WAITING_NUM_TUS = 4


ALL_PARTS = ("replacement", "waiting", "cls")


@register_analysis("ablations")
class AblationsAnalysis(Analysis):
    def __init__(self, sizes=REPLACEMENT_SIZES,
                 capacities=CLS_CAPACITIES, num_tus=WAITING_NUM_TUS,
                 parts=ALL_PARTS):
        unknown = set(parts) - set(ALL_PARTS)
        if unknown:
            raise ValueError("unknown ablation parts: %s"
                             % ", ".join(sorted(unknown)))
        self.parts = tuple(parts)
        self.sizes = sizes
        self.capacities = capacities
        self.num_tus = num_tus
        # Records are only needed for the CLS capacity sweep.
        self.wants_records = "cls" in self.parts
        # replacement sweep: (size, policy) -> [let_h, let_a, lit_h, lit_a]
        self._replacement = {(size, policy): [0, 0, 0, 0]
                             for size in sizes
                             for policy in REPLACEMENT_POLICIES}
        self._waiting_rows = []
        self._waiting_timing = TimingMeta()
        # CLS sweep: capacity -> [overflow drops, executions]
        self._cls = {capacity: [0, 0] for capacity in capacities}
        self._sims = None
        self._stacks = None
        self._stack_list = ()
        self._cls_cached = {}

    def begin(self, ctx):
        if "replacement" in self.parts:
            # Table simulators are shared per configuration across the
            # suite (figure4 sweeps the same LRU sizes); each replays
            # the finished index once, at the first consumer's finish.
            self._sims = {}
            for size, policy in self._replacement:
                sim, _ = shared_table_sim(ctx, size, size, policy)
                self._sims[(size, policy)] = sim
        if "cls" in self.parts:
            # The sweep only asks how often each CLS size drops a live
            # loop, so it feeds bare CurrentLoopStacks (no event list,
            # no execution records) and counts execution starts.  The
            # entry matching the session's own capacity is exactly the
            # canonical detector; it is read from the context at
            # finish.  Counts already in the derived store skip their
            # stack's record walk entirely.
            self._canonical_capacity = ctx.cls_capacity
            self._cls_cached = {}
            if ctx.derived is not None:
                for capacity in self.capacities:
                    if capacity == self._canonical_capacity:
                        continue
                    counts = ctx.derived.get(self._cls_key(capacity))
                    if (isinstance(counts, list) and len(counts) == 2
                            and all(isinstance(c, int)
                                    for c in counts)):
                        self._cls_cached[capacity] = counts
            self._stacks = {
                capacity: [CurrentLoopStack(capacity=capacity), 0]
                for capacity in self.capacities
                if capacity != self._canonical_capacity
                and capacity not in self._cls_cached}
            self._stack_list = tuple(self._stacks.values())

    @staticmethod
    def _cls_key(capacity):
        return "cls-sweep/cap%d" % capacity

    def feed_record(self, record):
        seq = record.seq
        pc = record.pc
        kind = record.kind
        taken = record.taken
        target = record.target
        for entry in self._stack_list:
            events = entry[0].process(seq, pc, kind, taken, target)
            if events:
                entry[1] += sum(
                    1 for event in events
                    if type(event) is ExecutionStart
                    or type(event) is SingleIteration)

    def feed_batch(self, batch):
        # Columnar path: one process_batch call per sweep stack; only
        # execution starts are counted, so event order within the
        # batch is irrelevant.
        for entry in self._stack_list:
            events = entry[0].process_batch(batch)
            if events:
                entry[1] += sum(
                    1 for event in events
                    if type(event) is ExecutionStart
                    or type(event) is SingleIteration)

    def abort(self, ctx):
        self._sims = None
        self._stacks = None
        self._stack_list = ()
        self._cls_cached = {}

    def finish(self, ctx):
        if "replacement" in self.parts:
            for key, sim in self._sims.items():
                sim.ensure_replayed(ctx.index)
                totals = self._replacement[key]
                totals[0] += sim.let_hits
                totals[1] += sim.let_accesses
                totals[2] += sim.lit_hits
                totals[3] += sim.lit_accesses
        if "waiting" in self.parts:
            # One run answers both accountings: with count_waiting=False
            # the engine reports tpc == tpc_executing of the same run.
            incl = self._waiting_timing.fold(
                shared_simulate(ctx, self.num_tus, "str"))
            self._waiting_rows.append((ctx.name, round(incl.tpc, 2),
                                       round(incl.tpc_executing, 2)))
        if "cls" in self.parts:
            for capacity in self.capacities:
                entry = self._stacks.get(capacity)
                cached = self._cls_cached.get(capacity)
                if entry is not None:
                    # flush() emits only ExecutionEnds: neither count
                    # moves.
                    overflowed = entry[0].overflow_count
                    executions = entry[1]
                    if ctx.derived is not None:
                        ctx.derived.put(self._cls_key(capacity),
                                        [overflowed, executions])
                elif cached is not None:
                    overflowed, executions = cached
                else:
                    overflowed = ctx.detector.cls.overflow_count
                    executions = len(ctx.index.executions)
                totals = self._cls[capacity]
                totals[0] += overflowed
                totals[1] += executions
        self._sims = None
        self._stacks = None
        self._stack_list = ()
        self._cls_cached = {}

    # -- the three tables ---------------------------------------------------

    def replacement_result(self):
        rows = []
        for size in self.sizes:
            ratios = {}
            for policy in REPLACEMENT_POLICIES:
                let_h, let_a, lit_h, lit_a = \
                    self._replacement[(size, policy)]
                ratios[policy] = (let_h / let_a if let_a else 0.0,
                                  lit_h / lit_a if lit_a else 0.0)
            lru = ratios[POLICY_LRU]
            aware = ratios[POLICY_NESTING_AWARE]
            rows.append((size, round(100 * lru[0], 2),
                         round(100 * aware[0], 2),
                         round(100 * lru[1], 2),
                         round(100 * aware[1], 2)))
        return ExperimentResult(
            "Ablation: LRU vs nesting-aware replacement",
            ("#entries", "LET lru %", "LET aware %", "LIT lru %",
             "LIT aware %"),
            rows,
            notes=["paper section 2.3.2: improvement is negligible"],
        )

    def waiting_result(self):
        rows = list(self._waiting_rows)
        avg_incl = sum(r[1] for r in rows) / len(rows)
        avg_excl = sum(r[2] for r in rows) / len(rows)
        rows.insert(0, ("AVG", round(avg_incl, 2), round(avg_excl, 2)))
        return ExperimentResult(
            "Ablation: TPC accounting of waiting threads (STR, %d TUs)"
            % self.num_tus,
            ("program", "TPC incl. waiting", "TPC executing only"),
            rows,
            notes=["the model counts waiting cycles (see "
                   "docs/ARCHITECTURE.md); this bounds the effect"],
            meta=self._waiting_timing.as_meta(),
        )

    def cls_capacity_result(self):
        rows = []
        for capacity in self.capacities:
            overflowed, executions = self._cls[capacity]
            rows.append((capacity, overflowed,
                         round(100.0 * overflowed / executions, 3)
                         if executions else 0.0))
        return ExperimentResult(
            "Ablation: CLS capacity vs dropped live loops",
            ("CLS entries", "overflow drops", "% of executions"),
            rows,
            notes=["paper: 16 entries never overflow on SPEC95 (max "
                   "nesting 11)"],
        )

    def result(self):
        tables = {
            "replacement": self.replacement_result,
            "waiting": self.waiting_result,
            "cls": self.cls_capacity_result,
        }
        return [tables[part]() for part in ALL_PARTS
                if part in self.parts]


def run(runner):
    from repro.experiments.runner import run_experiment
    return run_experiment("ablations", runner)


# -- single-table conveniences (tests, notebooks) ---------------------------

def _run_one(runner, analysis, picker):
    from repro.analysis import AnalysisSuite
    runner.analyze(AnalysisSuite([analysis]))
    return picker(analysis)


def replacement_policy_ablation(runner, sizes=REPLACEMENT_SIZES):
    return _run_one(runner,
                    AblationsAnalysis(sizes=sizes,
                                      parts=("replacement",)),
                    AblationsAnalysis.replacement_result)


def waiting_accounting_ablation(runner, num_tus=WAITING_NUM_TUS):
    return _run_one(runner,
                    AblationsAnalysis(num_tus=num_tus,
                                      parts=("waiting",)),
                    AblationsAnalysis.waiting_result)


def cls_capacity_ablation(runner, capacities=CLS_CAPACITIES):
    return _run_one(runner,
                    AblationsAnalysis(capacities=capacities,
                                      parts=("cls",)),
                    AblationsAnalysis.cls_capacity_result)


if __name__ == "__main__":
    import sys

    from repro.experiments.runner import experiment_main
    sys.exit(experiment_main("ablations"))
