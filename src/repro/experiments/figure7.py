"""Figure 7: suite-average TPC per policy (IDLE, STR, STR(1..3)).

The paper's ordering: STR slightly beats IDLE; STR(i) trails STR because
it squashes correct speculations, with lower *i* more aggressive (but
STR(i) favours inner loops, which matters once data dependences are
considered -- the paper recommends STR(3)).
"""

from repro.core.speculation import simulate
from repro.experiments.report import ExperimentResult

TU_COUNTS = (2, 4, 8, 16)
POLICIES = ("idle", "str", "str(1)", "str(2)", "str(3)")


def run(runner):
    averages = {}
    indexes = runner.indexes()
    for policy in POLICIES:
        for tus in TU_COUNTS:
            total = 0.0
            for name, index in indexes:
                total += simulate(index, num_tus=tus, policy=policy,
                                  name=name).tpc
            averages[(policy, tus)] = total / len(indexes)

    rows = []
    for policy in POLICIES:
        rows.append((policy.upper(),)
                    + tuple(round(averages[(policy, tus)], 2)
                            for tus in TU_COUNTS))
    return ExperimentResult(
        "Figure 7: average TPC per speculation policy",
        ("policy",) + tuple("%d TUs" % t for t in TU_COUNTS),
        rows,
        notes=["expected ordering: STR >= IDLE > STR(3) > STR(2) > "
               "STR(1)"],
        extra={"averages": averages},
    )


if __name__ == "__main__":
    import sys

    from repro.experiments.runner import experiment_main
    sys.exit(experiment_main("figure7"))
