"""Figure 7: suite-average TPC per policy (IDLE, STR, STR(1..3)).

The paper's ordering: STR slightly beats IDLE; STR(i) trails STR because
it squashes correct speculations, with lower *i* more aggressive (but
STR(i) favours inner loops, which matters once data dependences are
considered -- the paper recommends STR(3)).
"""

from repro.analysis import Analysis, register_analysis, \
    shared_simulate, shared_simulate_many
from repro.experiments.report import ExperimentResult, TimingMeta

TU_COUNTS = (2, 4, 8, 16)
POLICIES = ("idle", "str", "str(1)", "str(2)", "str(3)")


class Figure7Tables:
    """Accumulates per-workload policy x TU grids into the figure-7
    averages table.

    One fold per workload (:meth:`add_workload`), then
    :meth:`results`.  The direct :class:`Figure7Analysis` and the sweep
    store's query layer (:mod:`repro.sweep.query`) both render through
    this builder, which is what keeps a ``runner query`` report
    byte-identical to the direct ``runner figure7`` output.
    """

    def __init__(self, policies=POLICIES, tu_counts=TU_COUNTS):
        self.policies = tuple(policies)
        self.tu_counts = tuple(tu_counts)
        self._totals = {(policy, tus): 0.0
                        for policy in self.policies
                        for tus in self.tu_counts}
        self._count = 0
        self._timing = TimingMeta()

    def add_workload(self, name, results):
        """Fold one workload; ``results(policy, tus)`` returns that
        configuration's :class:`~repro.core.speculation.metrics.
        SpeculationResult`."""
        for policy in self.policies:
            for tus in self.tu_counts:
                self._totals[(policy, tus)] += self._timing.fold(
                    results(policy, tus)).tpc
        self._count += 1

    def results(self):
        """The :class:`ExperimentResult` averages table."""
        averages = {key: total / self._count
                    for key, total in self._totals.items()}
        rows = []
        for policy in self.policies:
            rows.append((policy.upper(),)
                        + tuple(round(averages[(policy, tus)], 2)
                                for tus in self.tu_counts))
        return ExperimentResult(
            "Figure 7: average TPC per speculation policy",
            ("policy",) + tuple("%d TUs" % t for t in self.tu_counts),
            rows,
            notes=["expected ordering: STR >= IDLE > STR(3) > STR(2) > "
                   "STR(1)"],
            extra={"averages": averages},
            meta=self._timing.as_meta(),
        )


@register_analysis("figure7")
class Figure7Analysis(Analysis):
    def __init__(self, policies=POLICIES, tu_counts=TU_COUNTS):
        self._tables = Figure7Tables(policies, tu_counts)
        self.policies = self._tables.policies
        self.tu_counts = self._tables.tu_counts

    def finish(self, ctx):
        # Whole policy x TU grid in one fused call; lookups below hit
        # the warm memo.
        shared_simulate_many(ctx, [(tus, policy, None)
                                   for policy in self.policies
                                   for tus in self.tu_counts])
        self._tables.add_workload(
            ctx.name,
            lambda policy, tus: shared_simulate(ctx, tus, policy))

    def result(self):
        return self._tables.results()


def run(runner):
    from repro.experiments.runner import run_experiment
    return run_experiment("figure7", runner)


if __name__ == "__main__":
    import sys

    from repro.experiments.runner import experiment_main
    sys.exit(experiment_main("figure7"))
