"""Figure 8: data-speculation statistics (paper section 4).

For each workload a *full* trace (register/memory values) is analyzed:
most-frequent-path coverage and live-in predictability with last+stride
predictors of unbounded capacity.  The suite row aggregates the raw
counters, mirroring the paper's all-SPEC95 percentages (same path ~85%).

The full-trace study is shared through ``ctx.shared``: when the
extensions experiment runs in the same suite, the trace is generated
and analyzed once, not twice.
"""

from repro.analysis import Analysis, register_analysis, \
    shared_dataspec_stats
from repro.core.dataspec import DataSpecStats
from repro.experiments.report import ExperimentResult

#: Full traces are an order of magnitude heavier than control-flow
#: traces; the study uses a bounded prefix per workload.
FULL_TRACE_LIMIT = 150_000


@register_analysis("figure8")
class Figure8Analysis(Analysis):
    def __init__(self, full_trace_limit=FULL_TRACE_LIMIT):
        self.full_trace_limit = full_trace_limit
        self._total = DataSpecStats("SUITE")
        self._rows = []
        self._per_bench = {}

    def finish(self, ctx):
        stats = shared_dataspec_stats(ctx, self.full_trace_limit)
        self._per_bench[ctx.name] = stats
        self._rows.append(stats.as_row())
        self._total.merge(stats)

    def result(self):
        rows = list(self._rows)
        rows.insert(0, self._total.as_row())
        return ExperimentResult(
            "Figure 8: data speculation statistics (%% of iterations)",
            DataSpecStats.FIGURE8_HEADERS,
            rows,
            notes=[
                "paper suite values: same path ~85%, with lr pred > lm "
                "pred and all lr > all lm > all data",
                "our compiler keeps scalars in frame memory, so induction-"
                "variable predictability appears under lm (see "
                "docs/ARCHITECTURE.md)",
                "full traces bounded to %d instructions per workload"
                % self.full_trace_limit,
            ],
            extra={"per_bench": self._per_bench, "suite": self._total},
        )


def run(runner):
    from repro.experiments.runner import run_experiment
    return run_experiment("figure8", runner)


if __name__ == "__main__":
    import sys

    from repro.experiments.runner import experiment_main
    sys.exit(experiment_main("figure8"))
