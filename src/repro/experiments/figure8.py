"""Figure 8: data-speculation statistics (paper section 4).

For each workload a *full* trace (register/memory values) is analyzed:
most-frequent-path coverage and live-in predictability with last+stride
predictors of unbounded capacity.  The suite row aggregates the raw
counters, mirroring the paper's all-SPEC95 percentages (same path ~85%).
"""

from repro.core.dataspec import DataSpecStats, DataSpeculationAnalyzer
from repro.experiments.report import ExperimentResult

#: Full traces are an order of magnitude heavier than control-flow
#: traces; the study uses a bounded prefix per workload.
FULL_TRACE_LIMIT = 150_000


def run(runner):
    analyzer = DataSpeculationAnalyzer(cls_capacity=runner.cls_capacity)
    total = DataSpecStats("SUITE")
    rows = []
    per_bench = {}
    for workload in runner.workloads:
        trace = workload.full_trace(runner.scale,
                                    max_instructions=FULL_TRACE_LIMIT)
        stats = analyzer.analyze(trace, workload.name)
        per_bench[workload.name] = stats
        rows.append(stats.as_row())
        total.merge(stats)
    rows.insert(0, total.as_row())
    return ExperimentResult(
        "Figure 8: data speculation statistics (%% of iterations)",
        DataSpecStats.FIGURE8_HEADERS,
        rows,
        notes=[
            "paper suite values: same path ~85%, with lr pred > lm pred "
            "and all lr > all lm > all data",
            "our compiler keeps scalars in frame memory, so induction-"
            "variable predictability appears under lm (see DESIGN.md)",
            "full traces bounded to %d instructions per workload"
            % FULL_TRACE_LIMIT,
        ],
        extra={"per_bench": per_bench, "suite": total},
    )


if __name__ == "__main__":
    import sys

    from repro.experiments.runner import experiment_main
    sys.exit(experiment_main("figure8"))
