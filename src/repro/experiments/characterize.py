"""Characterization sweep over generated synthetic workloads.

The paper measured loop coverage, nesting/trip profiles, and per-policy
speculation accuracy on a fixed SPEC95 suite; ``characterize`` re-runs
those measurements as *distributions* over many generated programs::

    python -m repro.experiments.runner characterize \
        --profile deep-nest --seed 7 --count 25

sweeps ``synth-deep-nest-7 .. synth-deep-nest-31`` through one replay
each (``session.stats.replays == 25``) and reports, per workload and as
min/p25/median/p75/max/mean distributions: detector coverage, the
Table-1 nesting and trip-count statistics, and speculation hit ratio /
TPC for each policy.  Everything is deterministic — the same sweep
renders byte-identical reports on every run, warm or cold cache.

This module is also the worked example of ``docs/ANALYSIS.md``'s
third-party registration guide: an incremental part (loop statistics
fold in as end events arrive, via :class:`LoopStatisticsPass`
delegation), an oracle part (speculation, at ``finish`` against
``ctx.index``), and ``ctx.shared`` memoization (``shared_simulate``, so
adding e.g. figure6 to the same run re-uses the sweeps' simulations).
"""

from repro.analysis import Analysis, LoopStatisticsPass, \
    register_analysis, shared_simulate
from repro.core.loopstats import loop_coverage
from repro.experiments.report import ExperimentResult, TimingMeta

#: Policies characterized per workload (one simulation each, shared
#: with any other pass requesting the same configuration).
POLICIES = ("idle", "str", "str(3)")

#: Thread units used for every policy run.
NUM_TUS = 4

#: (label, quantile) columns of the distribution table.
_SUMMARY_COLUMNS = ("min", "p25", "median", "p75", "max", "mean")


def _quantile(ordered, q):
    """Linear-interpolation quantile of an ascending list."""
    if not ordered:
        return 0.0
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def summarize(samples):
    """``(min, p25, median, p75, max, mean)`` of *samples*, rounded for
    stable rendering."""
    ordered = sorted(samples)
    if not ordered:
        return (0.0,) * len(_SUMMARY_COLUMNS)
    return (
        round(ordered[0], 3),
        round(_quantile(ordered, 0.25), 3),
        round(_quantile(ordered, 0.50), 3),
        round(_quantile(ordered, 0.75), 3),
        round(ordered[-1], 3),
        round(sum(ordered) / len(ordered), 3),
    )


class CharacterizeTables:
    """Accumulates per-workload characterizations into the two report
    tables.

    One fold per workload (:meth:`add_workload`), then
    :meth:`results`.  The direct :class:`CharacterizeAnalysis` and the
    sweep store's query layer (:mod:`repro.sweep.query`) both render
    through this builder, which is what keeps a store-backed report
    byte-identical to the direct ``runner characterize`` output.
    """

    def __init__(self, policies=POLICIES, num_tus=NUM_TUS):
        self.policies = tuple(policies)
        self.num_tus = num_tus
        self._rows = []
        self._samples = {}      # metric label -> [value per workload]
        self.by_name = {}
        self._timing = TimingMeta()

    def _sample(self, metric, value):
        self._samples.setdefault(metric, []).append(value)

    def add_workload(self, name, stats, coverage, speculation):
        """Fold one workload: its :class:`~repro.core.loopstats.
        LoopStatistics`, its loop coverage fraction, and
        ``speculation(policy)`` returning that policy's
        :class:`SpeculationResult` at ``num_tus`` TUs."""
        row = [
            name,
            stats.total_instructions,
            stats.static_loops,
            round(100.0 * coverage, 1),
            round(stats.iterations_per_execution, 2),
            round(stats.instructions_per_iteration, 2),
            round(stats.average_nesting, 2),
            stats.max_nesting,
        ]
        self._sample("coverage %", 100.0 * coverage)
        self._sample("static loops", float(stats.static_loops))
        self._sample("iter/exec", stats.iterations_per_execution)
        self._sample("instr/iter", stats.instructions_per_iteration)
        self._sample("avg nesting", stats.average_nesting)
        self._sample("max nesting", float(stats.max_nesting))
        results = {}
        for policy in self.policies:
            result = self._timing.fold(speculation(policy))
            results[policy] = result
            row.append(round(100.0 * result.hit_ratio, 1))
            row.append(round(result.tpc, 2))
            self._sample("hit %% [%s]" % policy, 100.0 * result.hit_ratio)
            self._sample("tpc [%s]" % policy, result.tpc)
        self._rows.append(tuple(row))
        self.by_name[name] = {"stats": stats, "coverage": coverage,
                              "speculation": results}

    def results(self):
        """The two :class:`ExperimentResult` tables, in render order."""
        headers = ["workload", "#instr", "#loops", "cov%", "#iter/exec",
                   "#instr/iter", "avg. nl", "max. nl"]
        for policy in self.policies:
            headers.append("hit%% %s" % policy)
            headers.append("tpc %s" % policy)
        per_workload = ExperimentResult(
            "Characterization sweep (%d TUs)" % self.num_tus,
            headers,
            self._rows,
            notes=["one replay per workload; speculation runs shared "
                   "via ctx.shared"],
            extra={"by_name": self.by_name},
            meta=self._timing.as_meta(),
        )
        summary = ExperimentResult(
            "Characterization distributions over %d workload(s)"
            % len(self._rows),
            ("metric",) + _SUMMARY_COLUMNS,
            [(metric,) + summarize(values)
             for metric, values in self._samples.items()],
            notes=["paper context: SPEC95 spends 57-99% of its time in "
                   "loops; STR(3) with 4 TUs hits 54-100% at TPC "
                   "1.06-3.85"],
            extra={"samples": {k: list(v)
                               for k, v in self._samples.items()}},
        )
        return [per_workload, summary]


@register_analysis("characterize")
class CharacterizeAnalysis(Analysis):
    """Per-workload characterization + cross-workload distributions.

    Returns a *list* of two :class:`ExperimentResult` tables: the
    per-workload sweep and the distribution summary.
    """

    def __init__(self, policies=POLICIES, num_tus=NUM_TUS):
        self._tables = CharacterizeTables(policies, num_tus)
        self.policies = self._tables.policies
        self.num_tus = num_tus
        self._stats = LoopStatisticsPass()
        self.by_name = self._tables.by_name

    # Table-1 statistics aggregate at finish from the index's columns.

    def begin(self, ctx):
        self._stats.begin(ctx)

    def abort(self, ctx):
        self._stats.abort(ctx)

    # Oracle part: coverage and speculation need the completed index.

    def finish(self, ctx):
        self._stats.finish(ctx)
        self._tables.add_workload(
            ctx.name,
            self._stats.by_name[ctx.name],
            loop_coverage(ctx.index),
            lambda policy: shared_simulate(ctx, self.num_tus, policy))

    def result(self):
        return self._tables.results()


def run(runner):
    """Run the characterization over *runner* (a SimulationSession)."""
    from repro.experiments.runner import run_experiment
    return run_experiment("characterize", runner)


if __name__ == "__main__":
    import sys

    from repro.experiments.runner import experiment_main
    sys.exit(experiment_main("characterize"))
