"""Extensions the paper describes but does not evaluate.

1. **Speculation disable table** (section 2.3.2): blacklist loops whose
   speculation hit rate is poor.  Measures the hit-ratio gain and the
   TPC effect for STR with 4 TUs.
2. **Synchronization-free thread estimate** (sections 2.3 / 4 and the
   conclusions): threads whose live-in values all predict correctly
   "can proceed in parallel, without any synchronization".  Combines
   the Figure 8 all-data percentages with the Figure 6 TPC to bound the
   thread-level parallelism that survives once inter-thread data
   dependences must be honoured: only the speculative (TPC - 1) share
   scales with the fully-predicted iteration fraction.

The sync-free estimate reuses the same full-trace data-speculation
statistics figure8 computes (shared through ``ctx.shared``), so running
both experiments costs one full trace per workload, not two.
"""

from repro.analysis import Analysis, effective_timing, \
    register_analysis, shared_dataspec_stats, shared_simulate
from repro.core.speculation import SpeculationDisableTable, simulate
from repro.experiments.figure8 import FULL_TRACE_LIMIT
from repro.experiments.report import ExperimentResult, TimingMeta


@register_analysis("extensions")
class ExtensionsAnalysis(Analysis):
    def __init__(self, num_tus=4, full_trace_limit=FULL_TRACE_LIMIT):
        self.num_tus = num_tus
        self.full_trace_limit = full_trace_limit
        self._disable_rows = []
        self._sync_rows = []
        # One meta per rendered table: the disable-table study runs a
        # plain and a guarded simulation per workload, the sync-free
        # bound only builds on the plain one.
        self._disable_timing = TimingMeta()
        self._sync_timing = TimingMeta()

    def finish(self, ctx):
        # 1. Disable table.
        plain = self._sync_timing.fold(self._disable_timing.fold(
            shared_simulate(ctx, self.num_tus, "str")))
        table = SpeculationDisableTable(capacity=16, min_samples=5,
                                        hit_threshold=0.5)
        guarded = self._disable_timing.fold(
            simulate(ctx.index, num_tus=self.num_tus, policy="str",
                     name=ctx.name, disable_table=table,
                     timing=effective_timing(ctx)))
        self._disable_rows.append((ctx.name,
                                   round(100 * plain.hit_ratio, 2),
                                   round(100 * guarded.hit_ratio, 2),
                                   round(plain.tpc, 2),
                                   round(guarded.tpc, 2),
                                   len(table)))
        # 2. Synchronization-free bound.
        data = shared_dataspec_stats(ctx, self.full_trace_limit)
        sync_free_tpc = 1.0 + (plain.tpc - 1.0) * data.all_data
        self._sync_rows.append((ctx.name, round(plain.tpc, 2),
                                round(100 * data.all_data, 2),
                                round(sync_free_tpc, 2)))

    def disable_table_result(self):
        rows = list(self._disable_rows)
        avg = tuple(round(sum(r[i] for r in rows) / len(rows), 2)
                    for i in range(1, 5))
        rows.insert(0, ("AVG",) + avg + ("",))
        return ExperimentResult(
            "Extension: speculation disable table (STR, %d TUs)"
            % self.num_tus,
            ("program", "hit %", "hit+table %", "TPC", "TPC+table",
             "blocked loops"),
            rows,
            notes=["section 2.3.2's 'loops with a poor prediction rate' "
                   "blacklist; threshold 0.5 over 5 samples",
                   "on these trace lengths most mispredictions resolve "
                   "only at a loop's final execution, so blocks install "
                   "late and barely move the aggregate -- the table "
                   "matters on longer runs"],
            meta=self._disable_timing.as_meta(),
        )

    def sync_free_result(self):
        rows = list(self._sync_rows)
        avg = tuple(round(sum(r[i] for r in rows) / len(rows), 2)
                    for i in range(1, 4))
        rows.insert(0, ("AVG",) + avg)
        return ExperimentResult(
            "Extension: synchronization-free TPC bound (STR, %d TUs)"
            % self.num_tus,
            ("program", "control TPC", "all-data %", "sync-free TPC"),
            rows,
            notes=["lower bound: iterations with any unpredicted live-in "
                   "are charged as fully serialized; real machines "
                   "synchronize per value and land in between"],
            meta=self._sync_timing.as_meta(),
        )

    def result(self):
        return [self.disable_table_result(), self.sync_free_result()]


def run(runner):
    from repro.experiments.runner import run_experiment
    return run_experiment("extensions", runner)


if __name__ == "__main__":
    import sys

    from repro.experiments.runner import experiment_main
    sys.exit(experiment_main("extensions"))
