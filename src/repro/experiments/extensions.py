"""Extensions the paper describes but does not evaluate.

1. **Speculation disable table** (section 2.3.2): blacklist loops whose
   speculation hit rate is poor.  Measures the hit-ratio gain and the TPC effect for STR with 4 TUs.
2. **Synchronization-free thread estimate** (sections 2.3 / 4 and the
   conclusions): threads whose live-in values all predict correctly
   "can proceed in parallel, without any synchronization".  Combines
   the Figure 8 all-data percentages with the Figure 6 TPC to bound the
   thread-level parallelism that survives once inter-thread data
   dependences must be honoured: only the speculative (TPC - 1) share
   scales with the fully-predicted iteration fraction.
"""

from repro.core.dataspec import DataSpeculationAnalyzer
from repro.core.speculation import SpeculationDisableTable, simulate
from repro.experiments.figure8 import FULL_TRACE_LIMIT
from repro.experiments.report import ExperimentResult


def disable_table_extension(runner, num_tus=4):
    rows = []
    for name, index in runner.indexes():
        plain = simulate(index, num_tus=num_tus, policy="str", name=name)
        table = SpeculationDisableTable(capacity=16, min_samples=5,
                                        hit_threshold=0.5)
        guarded = simulate(index, num_tus=num_tus, policy="str",
                           name=name, disable_table=table)
        rows.append((name,
                     round(100 * plain.hit_ratio, 2),
                     round(100 * guarded.hit_ratio, 2),
                     round(plain.tpc, 2), round(guarded.tpc, 2),
                     len(table)))
    avg = tuple(round(sum(r[i] for r in rows) / len(rows), 2)
                for i in range(1, 5))
    rows.insert(0, ("AVG",) + avg + ("",))
    return ExperimentResult(
        "Extension: speculation disable table (STR, %d TUs)" % num_tus,
        ("program", "hit %", "hit+table %", "TPC", "TPC+table",
         "blocked loops"),
        rows,
        notes=["section 2.3.2's 'loops with a poor prediction rate' "
               "blacklist; threshold 0.5 over 5 samples",
               "on these trace lengths most mispredictions resolve only "
               "at a loop's final execution, so blocks install late and "
               "barely move the aggregate -- the table matters on "
               "longer runs"],
    )


def sync_free_estimate(runner, num_tus=4):
    analyzer = DataSpeculationAnalyzer(cls_capacity=runner.cls_capacity)
    rows = []
    for workload in runner.workloads:
        index = runner.index(workload.name)
        control = simulate(index, num_tus=num_tus, policy="str",
                           name=workload.name)
        trace = workload.full_trace(runner.scale,
                                    max_instructions=FULL_TRACE_LIMIT)
        data = analyzer.analyze(trace, workload.name)
        sync_free_tpc = 1.0 + (control.tpc - 1.0) * data.all_data
        rows.append((workload.name, round(control.tpc, 2),
                     round(100 * data.all_data, 2),
                     round(sync_free_tpc, 2)))
    avg = tuple(round(sum(r[i] for r in rows) / len(rows), 2)
                for i in range(1, 4))
    rows.insert(0, ("AVG",) + avg)
    return ExperimentResult(
        "Extension: synchronization-free TPC bound (STR, %d TUs)"
        % num_tus,
        ("program", "control TPC", "all-data %", "sync-free TPC"),
        rows,
        notes=["lower bound: iterations with any unpredicted live-in "
               "are charged as fully serialized; real machines "
               "synchronize per value and land in between"],
    )


def run(runner):
    return [disable_table_extension(runner), sync_free_estimate(runner)]


if __name__ == "__main__":
    import sys

    from repro.experiments.runner import experiment_main
    sys.exit(experiment_main("extensions"))
