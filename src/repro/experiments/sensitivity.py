"""Overhead sensitivity sweep: when does speculation stop paying?

The paper's evaluation assumes free spawns and instantaneous
verification; every follow-on speculative-multithreading study had to
ask what survives once those cost real cycles.  ``sensitivity`` sweeps
spawn cost x TU count x policy over any workload set::

    python -m repro.experiments.runner sensitivity \
        --spawn-cost 0,2,8,32 --tus 2,4,8,16
    python -m repro.experiments.runner sensitivity --profile deep-nest

and reports two tables: per-configuration TPC as spawn cost grows, and
the **break-even spawn cost** per workload -- the fork latency at which
speculation's cycle savings are exactly cancelled by its overheads
(speedup over the non-speculative machine crosses 1.0, linearly
interpolated between swept points).  ``--squash-cost``/``--promote-cost``
add fixed verification-side overheads to every swept model.

When ``--squash-cost`` and ``--promote-cost`` are zero (the default),
the spawn-cost-0 point uses the ideal model (the overhead factory
canonicalizes all-zero costs), so its simulations are shared with
figure6/figure7/table2 when run together and reproduce their numbers
exactly; with fixed verification-side costs the whole sweep -- the
zero point included -- runs under those overheads.
"""

from repro.analysis import Analysis, register_analysis, \
    shared_simulate, shared_simulate_many
from repro.experiments.report import ExperimentResult
from repro.timing import make_timing

SPAWN_COSTS = (0, 2, 8, 32)
TU_COUNTS = (2, 4, 8, 16)
POLICIES = ("idle", "str", "str(3)")


def break_even(costs, speedups):
    """The spawn cost at which speedup crosses 1.0.

    *costs* ascend; *speedups* is the measured speedup at each.
    Returns a rounded interpolated cost, ``">N"`` when speculation
    still pays at the largest swept cost, or ``"-"`` when it never pays
    (typically: the workload never speculates).
    """
    eps = 1e-12
    if speedups[0] <= 1.0 + eps:
        return "-"
    for i in range(1, len(costs)):
        if speedups[i] <= 1.0 + eps:
            c0, s0 = costs[i - 1], speedups[i - 1]
            c1, s1 = costs[i], speedups[i]
            if s0 - s1 <= eps:
                return float(c1)
            return round(c0 + (s0 - 1.0) * (c1 - c0) / (s0 - s1), 1)
    return ">%d" % costs[-1]


def _cost_list(name, values):
    values = tuple(values)
    if not values:
        raise ValueError("%s must name at least one value" % name)
    for value in values:
        if not isinstance(value, int) or value < 0:
            raise ValueError("%s values must be integers >= %d, got %r"
                             % (name, 0, value))
    return tuple(sorted(set(values)))


class SensitivityTables:
    """Accumulates swept simulation results into the experiment's two
    report tables.

    One fold per workload (:meth:`add_workload`), then
    :meth:`results`.  The direct :class:`SensitivityAnalysis` and the
    sweep store's query layer (:mod:`repro.sweep.query`) both render
    through this builder, which is what keeps a ``runner query``
    report byte-identical to the direct ``runner sensitivity`` output
    over the same grid.
    """

    def __init__(self, spawn_costs, tu_counts, policies, squash_cost,
                 promote_cost):
        self.spawn_costs = _cost_list("spawn costs", spawn_costs)
        self.tu_counts = _cost_list("TU counts", tu_counts)
        if self.tu_counts[0] < 1:
            raise ValueError("TU counts must be >= 1")
        self.policies = tuple(policies)
        if not self.policies:
            raise ValueError("policies must name at least one policy")
        self.squash_cost = squash_cost
        self.promote_cost = promote_cost
        self._tpc_rows = []
        self._breakeven_rows = []
        self._speedups = {}     # (workload, policy, tus) -> [speedup]

    def add_workload(self, name, results):
        """Fold one workload; ``results(policy, tus, cost)`` returns
        that configuration's :class:`~repro.core.speculation.metrics.
        SpeculationResult` (or any object with ``tpc`` and
        ``speedup_bound``)."""
        for policy in self.policies:
            even_row = [name, policy.upper()]
            for tus in self.tu_counts:
                tpc_row = [name, policy.upper(), tus]
                speedups = []
                for cost in self.spawn_costs:
                    result = results(policy, tus, cost)
                    tpc_row.append(round(result.tpc, 2))
                    speedups.append(result.speedup_bound)
                self._tpc_rows.append(tuple(tpc_row))
                self._speedups[(name, policy, tus)] = speedups
                even_row.append(break_even(self.spawn_costs, speedups))
            self._breakeven_rows.append(tuple(even_row))

    def results(self):
        """The two :class:`ExperimentResult` tables, in render order."""
        overhead_note = ("fixed per-event costs: squash=%d promote=%d"
                         % (self.squash_cost, self.promote_cost))
        if self.squash_cost == self.promote_cost == 0:
            zero_note = ("spawn cost is charged per forked thread; "
                         "spawn=0 is the paper's ideal machine")
        else:
            zero_note = ("spawn cost is charged per forked thread; "
                         "spawn=0 still pays the fixed squash/promote "
                         "costs")
        tpc = ExperimentResult(
            "Sensitivity: TPC vs thread-spawn cost",
            ("workload", "policy", "TUs")
            + tuple("spawn=%d" % c for c in self.spawn_costs),
            self._tpc_rows,
            notes=[zero_note, overhead_note],
            extra={"speedups": dict(self._speedups)},
        )
        even = ExperimentResult(
            "Sensitivity: break-even spawn cost (speedup crosses 1.0)",
            ("workload", "policy")
            + tuple("%d TUs" % t for t in self.tu_counts),
            self._breakeven_rows,
            notes=["'>N': speculation still pays at the largest swept "
                   "cost; '-': the workload never speculates",
                   overhead_note],
        )
        return [tpc, even]


@register_analysis("sensitivity")
class SensitivityAnalysis(Analysis):
    """Returns a list of two tables: TPC per swept configuration and
    break-even spawn cost per (workload, policy, TU count)."""

    def __init__(self, spawn_costs=SPAWN_COSTS, tu_counts=TU_COUNTS,
                 policies=POLICIES, squash_cost=0, promote_cost=0):
        self._tables = SensitivityTables(spawn_costs, tu_counts,
                                         policies, squash_cost,
                                         promote_cost)
        self.spawn_costs = self._tables.spawn_costs
        self.tu_counts = self._tables.tu_counts
        self.policies = self._tables.policies
        self.squash_cost = squash_cost
        self.promote_cost = promote_cost
        # Overhead models are stateless and read-only during
        # simulation, so one instance per cost serves every workload.
        self._models = {
            cost: make_timing("overhead:spawn=%d,squash=%d,promote=%d"
                              % (cost, squash_cost, promote_cost))
            for cost in self.spawn_costs}

    def finish(self, ctx):
        # One fused grid call prices the whole per-workload config
        # group; add_workload's shared_simulate lookups then all hit
        # the warm memo.
        shared_simulate_many(
            ctx, [(tus, policy, self._models[cost])
                  for policy in self.policies
                  for tus in self.tu_counts
                  for cost in self.spawn_costs])
        self._tables.add_workload(
            ctx.name,
            lambda policy, tus, cost: shared_simulate(
                ctx, tus, policy, timing=self._models[cost]))

    def result(self):
        return self._tables.results()


def run(runner, **kwargs):
    """Run the sweep over *runner* (a SimulationSession)."""
    from repro.analysis import AnalysisSuite
    analysis = SensitivityAnalysis(**kwargs)
    runner.analyze(AnalysisSuite([analysis]))
    return analysis.result()


if __name__ == "__main__":
    import sys

    from repro.experiments.runner import experiment_main
    sys.exit(experiment_main("sensitivity"))
