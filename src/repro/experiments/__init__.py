"""One module per table/figure of the paper, plus ablations.

Every experiment is a function ``run(session)`` taking a
:class:`~repro.pipeline.session.SimulationSession` (the deprecated
:class:`~repro.experiments.runner.SuiteRunner` shim also works) and
returning one or more :class:`~repro.experiments.report.
ExperimentResult` objects.  The command line entry point is ``python -m
repro.experiments.runner``; each module is also runnable directly,
e.g. ``python -m repro.experiments.table1 --jobs 4``.
"""

from repro.experiments.report import ExperimentResult
from repro.experiments.runner import (
    SuiteRunner,
    available_experiments,
    select_experiments,
)
from repro.pipeline import PipelineConfig, SimulationSession

__all__ = [
    "ExperimentResult",
    "PipelineConfig",
    "SimulationSession",
    "SuiteRunner",
    "available_experiments",
    "select_experiments",
]
