"""One module per table/figure of the paper, plus ablations.

Every experiment is a function ``run(runner)`` taking a
:class:`~repro.experiments.runner.SuiteRunner` and returning one or more
:class:`~repro.experiments.report.ExperimentResult` objects.  The
command line entry point is ``python -m repro.experiments.runner``.
"""

from repro.experiments.report import ExperimentResult
from repro.experiments.runner import SuiteRunner, available_experiments

__all__ = ["ExperimentResult", "SuiteRunner", "available_experiments"]
