"""One module per table/figure of the paper, plus ablations.

Every experiment is a registered streaming
:class:`~repro.analysis.base.Analysis` pass (see ``docs/ANALYSIS.md``);
:meth:`SimulationSession.analyze
<repro.pipeline.session.SimulationSession.analyze>` feeds any number of
them from one event-stream replay per workload.  Each module also keeps
a ``run(session)`` convenience returning its
:class:`~repro.experiments.report.ExperimentResult` object(s).  The
command line entry point is ``python -m repro.experiments.runner``;
each module is also runnable directly, e.g. ``python -m
repro.experiments.table1 --jobs 4``.
"""

from repro.analysis import AnalysisSuite
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import (
    available_experiments,
    build_suite,
    extra_experiments,
    run_experiment,
    select_experiments,
)
from repro.pipeline import PipelineConfig, SimulationSession

__all__ = [
    "AnalysisSuite",
    "ExperimentResult",
    "PipelineConfig",
    "SimulationSession",
    "available_experiments",
    "build_suite",
    "extra_experiments",
    "run_experiment",
    "select_experiments",
]


def __getattr__(name):
    if name == "SuiteRunner":
        from repro.experiments.runner import _removed
        _removed("repro.experiments.SuiteRunner")
    raise AttributeError("module %r has no attribute %r"
                         % (__name__, name))
