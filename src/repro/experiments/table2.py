"""Table 2: control-speculation statistics for STR(3) with 4 TUs.

Columns follow the paper: number of speculation events, threads per
speculation, hit ratio, instructions from speculation to verification,
and TPC.
"""

from repro.analysis import Analysis, register_analysis, shared_simulate
from repro.core.speculation.metrics import SpeculationResult
from repro.experiments.report import ExperimentResult, TimingMeta

#: The paper's Table 2 configuration.
NUM_TUS = 4
POLICY = "str(3)"


class Table2Tables:
    """Accumulates per-workload speculation statistics into the
    table-2 report.

    One fold per workload (:meth:`add_workload`), then
    :meth:`results`.  The direct :class:`Table2Analysis` and the sweep
    store's query layer (:mod:`repro.sweep.query`) both render through
    this builder, which is what keeps a ``runner query`` report
    byte-identical to the direct ``runner table2`` output.
    """

    def __init__(self, num_tus=NUM_TUS, policy=POLICY):
        self.num_tus = num_tus
        self.policy = policy
        self._rows = []
        self._results = {}
        self._timing = TimingMeta()

    def add_workload(self, name, result):
        """Fold one workload's :class:`SpeculationResult` (the
        ``policy`` run at ``num_tus`` TUs)."""
        result = self._timing.fold(result)
        self._results[name] = result
        self._rows.append(result.as_table2_row())

    def results(self):
        """The :class:`ExperimentResult` statistics table."""
        return ExperimentResult(
            "Table 2: control speculation statistics (STR(3), 4 TUs)",
            SpeculationResult.TABLE2_HEADERS,
            self._rows,
            notes=["the paper reports hit ratios of 54-100% and TPC "
                   "1.06-3.85 across SPEC95"],
            extra={"results": self._results},
            meta=self._timing.as_meta(),
        )


@register_analysis("table2")
class Table2Analysis(Analysis):
    def __init__(self, num_tus=NUM_TUS, policy=POLICY):
        self._tables = Table2Tables(num_tus, policy)
        self.num_tus = num_tus
        self.policy = policy

    def finish(self, ctx):
        self._tables.add_workload(
            ctx.name, shared_simulate(ctx, self.num_tus, self.policy))

    def result(self):
        return self._tables.results()


def run(runner):
    from repro.experiments.runner import run_experiment
    return run_experiment("table2", runner)


if __name__ == "__main__":
    import sys

    from repro.experiments.runner import experiment_main
    sys.exit(experiment_main("table2"))
