"""Table 2: control-speculation statistics for STR(3) with 4 TUs.

Columns follow the paper: number of speculation events, threads per
speculation, hit ratio, instructions from speculation to verification,
and TPC.
"""

from repro.analysis import Analysis, register_analysis, shared_simulate
from repro.core.speculation.metrics import SpeculationResult
from repro.experiments.report import ExperimentResult, TimingMeta


@register_analysis("table2")
class Table2Analysis(Analysis):
    def __init__(self, num_tus=4, policy="str(3)"):
        self.num_tus = num_tus
        self.policy = policy
        self._rows = []
        self._results = {}
        self._timing = TimingMeta()

    def finish(self, ctx):
        result = self._timing.fold(
            shared_simulate(ctx, self.num_tus, self.policy))
        self._results[ctx.name] = result
        self._rows.append(result.as_table2_row())

    def result(self):
        return ExperimentResult(
            "Table 2: control speculation statistics (STR(3), 4 TUs)",
            SpeculationResult.TABLE2_HEADERS,
            self._rows,
            notes=["the paper reports hit ratios of 54-100% and TPC "
                   "1.06-3.85 across SPEC95"],
            extra={"results": self._results},
            meta=self._timing.as_meta(),
        )


def run(runner):
    from repro.experiments.runner import run_experiment
    return run_experiment("table2", runner)


if __name__ == "__main__":
    import sys

    from repro.experiments.runner import experiment_main
    sys.exit(experiment_main("table2"))
