"""Table 2: control-speculation statistics for STR(3) with 4 TUs.

Columns follow the paper: number of speculation events, threads per
speculation, hit ratio, instructions from speculation to verification,
and TPC.
"""

from repro.core.speculation import simulate
from repro.core.speculation.metrics import SpeculationResult
from repro.experiments.report import ExperimentResult


def run(runner):
    rows = []
    results = {}
    for name, index in runner.indexes():
        result = simulate(index, num_tus=4, policy="str(3)", name=name)
        results[name] = result
        rows.append(result.as_table2_row())
    return ExperimentResult(
        "Table 2: control speculation statistics (STR(3), 4 TUs)",
        SpeculationResult.TABLE2_HEADERS,
        rows,
        notes=["the paper reports hit ratios of 54-100% and TPC "
               "1.06-3.85 across SPEC95"],
        extra={"results": results},
    )


if __name__ == "__main__":
    import sys

    from repro.experiments.runner import experiment_main
    sys.exit(experiment_main("table2"))
