"""Figure 6: per-benchmark TPC for 2/4/8/16 TUs under the STR policy.

The paper's headline numbers: suite-average TPC of 1.65 / 2.6 / 4 / 6.2
for 2 / 4 / 8 / 16 thread units.
"""

from repro.analysis import Analysis, register_analysis, shared_simulate
from repro.experiments.report import ExperimentResult, TimingMeta

TU_COUNTS = (2, 4, 8, 16)


@register_analysis("figure6")
class Figure6Analysis(Analysis):
    def __init__(self, tu_counts=TU_COUNTS):
        self.tu_counts = tu_counts
        self._rows = []
        self._results = {}
        self._sums = {tus: 0.0 for tus in tu_counts}
        self._count = 0
        self._timing = TimingMeta()

    def finish(self, ctx):
        row = [ctx.name]
        self._results[ctx.name] = {}
        for tus in self.tu_counts:
            result = self._timing.fold(shared_simulate(ctx, tus, "str"))
            self._results[ctx.name][tus] = result
            self._sums[tus] += result.tpc
            row.append(round(result.tpc, 2))
        self._rows.append(tuple(row))
        self._count += 1

    def result(self):
        rows = list(self._rows)
        avg_row = ["AVG"] + [round(self._sums[tus] / self._count, 2)
                             for tus in self.tu_counts]
        rows.insert(0, tuple(avg_row))
        return ExperimentResult(
            "Figure 6: TPC under STR for 2/4/8/16 TUs",
            ("program",) + tuple("%d TUs" % t for t in self.tu_counts),
            rows,
            notes=["paper averages: 1.65 / 2.6 / 4 / 6.2"],
            extra={"results": self._results},
            meta=self._timing.as_meta(),
        )


def run(runner):
    from repro.experiments.runner import run_experiment
    return run_experiment("figure6", runner)


if __name__ == "__main__":
    import sys

    from repro.experiments.runner import experiment_main
    sys.exit(experiment_main("figure6"))
