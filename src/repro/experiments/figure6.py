"""Figure 6: per-benchmark TPC for 2/4/8/16 TUs under the STR policy.

The paper's headline numbers: suite-average TPC of 1.65 / 2.6 / 4 / 6.2
for 2 / 4 / 8 / 16 thread units.
"""

from repro.core.speculation import simulate
from repro.experiments.report import ExperimentResult

TU_COUNTS = (2, 4, 8, 16)


def run(runner):
    rows = []
    results = {}
    sums = {tus: 0.0 for tus in TU_COUNTS}
    count = 0
    for name, index in runner.indexes():
        row = [name]
        results[name] = {}
        for tus in TU_COUNTS:
            result = simulate(index, num_tus=tus, policy="str", name=name)
            results[name][tus] = result
            sums[tus] += result.tpc
            row.append(round(result.tpc, 2))
        rows.append(tuple(row))
        count += 1
    avg_row = ["AVG"] + [round(sums[tus] / count, 2) for tus in TU_COUNTS]
    rows.insert(0, tuple(avg_row))
    return ExperimentResult(
        "Figure 6: TPC under STR for 2/4/8/16 TUs",
        ("program",) + tuple("%d TUs" % t for t in TU_COUNTS),
        rows,
        notes=["paper averages: 1.65 / 2.6 / 4 / 6.2"],
        extra={"results": results},
    )


if __name__ == "__main__":
    import sys

    from repro.experiments.runner import experiment_main
    sys.exit(experiment_main("figure6"))
