"""Figure 6: per-benchmark TPC for 2/4/8/16 TUs under the STR policy.

The paper's headline numbers: suite-average TPC of 1.65 / 2.6 / 4 / 6.2
for 2 / 4 / 8 / 16 thread units.
"""

from repro.analysis import Analysis, register_analysis, \
    shared_simulate, shared_simulate_many
from repro.experiments.report import ExperimentResult, TimingMeta

TU_COUNTS = (2, 4, 8, 16)

#: Figure 6 is inherently a STR-policy experiment.
POLICY = "str"


class Figure6Tables:
    """Accumulates per-workload TU sweeps into the figure-6 table.

    One fold per workload (:meth:`add_workload`), then
    :meth:`results`.  The direct :class:`Figure6Analysis` and the sweep
    store's query layer (:mod:`repro.sweep.query`) both render through
    this builder, which is what keeps a ``runner query`` report
    byte-identical to the direct ``runner figure6`` output.
    """

    def __init__(self, tu_counts=TU_COUNTS):
        self.tu_counts = tuple(tu_counts)
        self._rows = []
        self._results = {}
        self._sums = {tus: 0.0 for tus in self.tu_counts}
        self._count = 0
        self._timing = TimingMeta()

    def add_workload(self, name, results):
        """Fold one workload; ``results(tus)`` returns the STR-policy
        :class:`~repro.core.speculation.metrics.SpeculationResult` at
        that TU count."""
        row = [name]
        self._results[name] = {}
        for tus in self.tu_counts:
            result = self._timing.fold(results(tus))
            self._results[name][tus] = result
            self._sums[tus] += result.tpc
            row.append(round(result.tpc, 2))
        self._rows.append(tuple(row))
        self._count += 1

    def results(self):
        """The :class:`ExperimentResult` table (AVG row on top)."""
        rows = list(self._rows)
        avg_row = ["AVG"] + [round(self._sums[tus] / self._count, 2)
                             for tus in self.tu_counts]
        rows.insert(0, tuple(avg_row))
        return ExperimentResult(
            "Figure 6: TPC under STR for 2/4/8/16 TUs",
            ("program",) + tuple("%d TUs" % t for t in self.tu_counts),
            rows,
            notes=["paper averages: 1.65 / 2.6 / 4 / 6.2"],
            extra={"results": self._results},
            meta=self._timing.as_meta(),
        )


@register_analysis("figure6")
class Figure6Analysis(Analysis):
    def __init__(self, tu_counts=TU_COUNTS):
        self._tables = Figure6Tables(tu_counts)
        self.tu_counts = self._tables.tu_counts

    def finish(self, ctx):
        # Whole TU sweep in one fused grid call; the per-TU lookups
        # below hit the warm memo.
        shared_simulate_many(ctx, [(tus, POLICY, None)
                                   for tus in self.tu_counts])
        self._tables.add_workload(
            ctx.name, lambda tus: shared_simulate(ctx, tus, POLICY))

    def result(self):
        return self._tables.results()


def run(runner):
    from repro.experiments.runner import run_experiment
    return run_experiment("figure6", runner)


if __name__ == "__main__":
    import sys

    from repro.experiments.runner import experiment_main
    sys.exit(experiment_main("figure6"))
