"""Table 1: loop statistics of the workload suite.

Columns follow the paper: dynamic instructions, static loops, average
iterations per execution, average instructions per iteration, and
average/maximum nesting level.
"""

from repro.core.loopstats import LoopStatistics, compute_loop_statistics
from repro.experiments.report import ExperimentResult


def run(runner):
    rows = []
    stats_by_name = {}
    for name, index in runner.indexes():
        stats = compute_loop_statistics(index, name)
        stats_by_name[name] = stats
        rows.append(stats.as_row())
    return ExperimentResult(
        "Table 1: Loop statistics",
        LoopStatistics.ROW_HEADERS,
        rows,
        notes=[
            "instr/iter covers detected, fully delimited iterations "
            "(the first iteration of an execution is undetected until "
            "it finishes; see DESIGN.md)",
            "scale=%d; the paper traces 10^9-10^11 Alpha instructions "
            "per benchmark" % runner.scale,
        ],
        extra={"stats": stats_by_name},
    )


if __name__ == "__main__":
    import sys

    from repro.experiments.runner import experiment_main
    sys.exit(experiment_main("table1"))
