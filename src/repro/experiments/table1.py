"""Table 1: loop statistics of the workload suite.

Columns follow the paper: dynamic instructions, static loops, average
iterations per execution, average instructions per iteration, and
average/maximum nesting level.  Implemented over
:class:`~repro.analysis.passes.LoopStatisticsPass`: statistics are
aggregated at ``finish`` from the completed loop index's event
columns, one suite-shared replay per workload.
"""

from repro.analysis import Analysis, register_analysis
from repro.analysis.passes import LoopStatisticsPass
from repro.core.loopstats import LoopStatistics
from repro.experiments.report import ExperimentResult


@register_analysis("table1")
class Table1Analysis(Analysis):
    """Thin declarative wrapper: one loop-statistics pass, rendered in
    the paper's Table 1 shape."""

    def __init__(self):
        self._stats = LoopStatisticsPass()
        self._rows = []
        self._scale = None

    def begin(self, ctx):
        self._scale = ctx.scale
        self._stats.begin(ctx)

    def abort(self, ctx):
        self._stats.abort(ctx)

    def finish(self, ctx):
        self._stats.finish(ctx)
        self._rows.append(self._stats.by_name[ctx.name].as_row())

    def result(self):
        return ExperimentResult(
            "Table 1: Loop statistics",
            LoopStatistics.ROW_HEADERS,
            self._rows,
            notes=[
                "instr/iter covers detected, fully delimited iterations "
                "(the first iteration of an execution is undetected until "
                "it finishes; see docs/ARCHITECTURE.md)",
                "scale=%d; the paper traces 10^9-10^11 Alpha instructions "
                "per benchmark" % self._scale,
            ],
            extra={"stats": self._stats.by_name},
        )


def run(runner):
    """Regenerate Table 1 over *runner* (a SimulationSession)."""
    from repro.experiments.runner import run_experiment
    return run_experiment("table1", runner)


if __name__ == "__main__":
    import sys

    from repro.experiments.runner import experiment_main
    sys.exit(experiment_main("table1"))
