"""Figure 4: LET and LIT hit ratios vs table size.

The paper sweeps 2/4/8/16 entries with LRU replacement and the
two-completions-since-insertion hit criterion, averaging over SPEC95.
It highlights 4 LIT entries (90.50%) and 16 LET entries (91.98%) as the
suggested trade-off.
"""

from repro.core.tables import TableHitRatioSimulator
from repro.experiments.report import ExperimentResult

TABLE_SIZES = (16, 8, 4, 2)


def run(runner):
    per_size = {}
    for size in TABLE_SIZES:
        let_hits = let_accs = lit_hits = lit_accs = 0
        per_bench = {}
        for name, index in runner.indexes():
            sim = TableHitRatioSimulator(size, size).replay(index.events)
            let_hits += sim.let_hits
            let_accs += sim.let_accesses
            lit_hits += sim.lit_hits
            lit_accs += sim.lit_accesses
            per_bench[name] = (sim.let_hit_ratio, sim.lit_hit_ratio)
        per_size[size] = {
            "let": let_hits / let_accs if let_accs else 0.0,
            "lit": lit_hits / lit_accs if lit_accs else 0.0,
            "per_bench": per_bench,
        }

    rows = [(size,
             round(100.0 * per_size[size]["let"], 2),
             round(100.0 * per_size[size]["lit"], 2))
            for size in TABLE_SIZES]
    return ExperimentResult(
        "Figure 4: LET and LIT hit ratios (suite average)",
        ("#entries", "LET hit %", "LIT hit %"),
        rows,
        notes=["paper trade-off points: 4-entry LIT ~90.5%, 16-entry "
               "LET ~92.0%"],
        extra={"per_size": per_size},
    )


if __name__ == "__main__":
    import sys

    from repro.experiments.runner import experiment_main
    sys.exit(experiment_main("figure4"))
