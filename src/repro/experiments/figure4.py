"""Figure 4: LET and LIT hit ratios vs table size.

The paper sweeps 2/4/8/16 entries with LRU replacement and the
two-completions-since-insertion hit criterion, averaging over SPEC95.
It highlights 4 LIT entries (90.50%) and 16 LET entries (91.98%) as the
suggested trade-off.

Every table size rides the *same* replay: one
:class:`~repro.core.tables.TableHitRatioSimulator` pair per size is fed
each loop event as it happens, so sweeping sizes costs no extra passes.
"""

from repro.analysis import Analysis, register_analysis, shared_table_sim
from repro.experiments.report import ExperimentResult

TABLE_SIZES = (16, 8, 4, 2)


@register_analysis("figure4")
class Figure4Analysis(Analysis):
    def __init__(self, table_sizes=TABLE_SIZES):
        self.table_sizes = table_sizes
        self._totals = {size: [0, 0, 0, 0] for size in table_sizes}
        self._per_bench = {size: {} for size in table_sizes}
        self._sims = None

    def begin(self, ctx):
        # Simulators are shared per (size, size, LRU) across the suite
        # (the replacement ablation sweeps the same configurations);
        # each is replayed over the finished index exactly once, at the
        # first consumer's finish (TableHitRatioSimulator.ensure_replayed).
        self._sims = {}
        for size in self.table_sizes:
            sim, _ = shared_table_sim(ctx, size, size)
            self._sims[size] = sim

    def abort(self, ctx):
        self._sims = None

    def finish(self, ctx):
        for size, sim in self._sims.items():
            sim.ensure_replayed(ctx.index)
            totals = self._totals[size]
            totals[0] += sim.let_hits
            totals[1] += sim.let_accesses
            totals[2] += sim.lit_hits
            totals[3] += sim.lit_accesses
            self._per_bench[size][ctx.name] = (sim.let_hit_ratio,
                                               sim.lit_hit_ratio)
        self._sims = None

    def result(self):
        per_size = {}
        for size in self.table_sizes:
            let_hits, let_accs, lit_hits, lit_accs = self._totals[size]
            per_size[size] = {
                "let": let_hits / let_accs if let_accs else 0.0,
                "lit": lit_hits / lit_accs if lit_accs else 0.0,
                "per_bench": self._per_bench[size],
            }
        rows = [(size,
                 round(100.0 * per_size[size]["let"], 2),
                 round(100.0 * per_size[size]["lit"], 2))
                for size in self.table_sizes]
        return ExperimentResult(
            "Figure 4: LET and LIT hit ratios (suite average)",
            ("#entries", "LET hit %", "LIT hit %"),
            rows,
            notes=["paper trade-off points: 4-entry LIT ~90.5%, 16-entry "
                   "LET ~92.0%"],
            extra={"per_size": per_size},
        )


def run(runner):
    from repro.experiments.runner import run_experiment
    return run_experiment("figure4", runner)


if __name__ == "__main__":
    import sys

    from repro.experiments.runner import experiment_main
    sys.exit(experiment_main("figure4"))
