"""Experiment command-line entry point over the simulation pipeline.

Tracing is the dominant cost of every experiment, so the heavy lifting
lives in :class:`repro.pipeline.SimulationSession`: workloads trace in
parallel across ``--jobs`` processes, traces persist in a content-keyed
on-disk cache (``--cache-dir``, on by default; disable with
``--no-cache``), and loop detection streams records from the cache.
Every experiment shares one trace and one detector pass per workload.

Usage::

    python -m repro.experiments.runner --list
    python -m repro.experiments.runner table1 figure6
    python -m repro.experiments.runner all --scale 2 --jobs 4
    python -m repro.experiments.runner table2 --workloads swim,go
    python -m repro.experiments.runner all --no-cache

``all`` composes with explicit names (``table1 all`` runs table1 first,
then the rest); duplicates run once.  Each experiment module is also
directly runnable with the same flags, e.g. ``python -m
repro.experiments.table1 --jobs 4``.

The old :class:`SuiteRunner` remains as a thin deprecated shim over
:class:`SimulationSession` (sequential, no cache — its historical
behaviour).
"""

import argparse
import sys
import time
import warnings

from repro.pipeline import PipelineConfig, SimulationSession, \
    default_cache_dir
from repro.workloads import SUITE_ORDER, names as workload_names


class SuiteRunner(SimulationSession):
    """Deprecated sequential runner; use
    :class:`repro.pipeline.SimulationSession`.

    Kept so existing callers (benchmarks, tests) work unchanged: traces
    inline in this process, no on-disk cache, identical memoization
    semantics.
    """

    def __init__(self, scale=1, cls_capacity=16, max_instructions=None,
                 workloads=None):
        warnings.warn(
            "SuiteRunner is deprecated; use "
            "repro.pipeline.SimulationSession", DeprecationWarning,
            stacklevel=2)
        super().__init__(
            PipelineConfig(scale=scale, cls_capacity=cls_capacity,
                           max_instructions=max_instructions,
                           jobs=1, cache_dir=None),
            # Pass the objects themselves so unregistered / substitute
            # Workload instances keep working, as they always did.
            workload_objects=(list(workloads) if workloads is not None
                              else None))


def available_experiments():
    """Name -> callable(session) for every experiment."""
    from repro.experiments import (
        ablations,
        baselines,
        extensions,
        figure4,
        figure5,
        figure6,
        figure7,
        figure8,
        table1,
        table2,
    )
    return {
        "table1": table1.run,
        "figure4": figure4.run,
        "figure5": figure5.run,
        "figure6": figure6.run,
        "figure7": figure7.run,
        "table2": table2.run,
        "figure8": figure8.run,
        "ablations": ablations.run,
        "baselines": baselines.run,
        "extensions": extensions.run,
    }


def select_experiments(requested, available):
    """Expand ``all`` and de-duplicate, preserving first-seen order.

    Raises :class:`ValueError` naming any unknown experiments.
    """
    unknown = [name for name in requested
               if name != "all" and name not in available]
    if unknown:
        raise ValueError("unknown experiments: %s" % ", ".join(unknown))
    selected = []
    for name in requested:
        expansion = list(available) if name == "all" else [name]
        for exp in expansion:
            if exp not in selected:
                selected.append(exp)
    return selected


def experiment_main(experiment, argv=None):
    """CLI entry point for one experiment module (``--jobs`` etc. all
    apply); used by each module's ``main()``."""
    return main([experiment] + list(sys.argv[1:] if argv is None
                                    else argv))


def _parse_workloads(spec, parser):
    names = []
    known = set(workload_names())
    for name in spec.split(","):
        name = name.strip()
        if not name:
            continue
        if name not in known:
            parser.error("unknown workload %r (see --list)" % name)
        if name not in names:
            names.append(name)
    if not names:
        parser.error("--workloads selected nothing")
    return tuple(names)


def main(argv=None):
    experiments = available_experiments()
    parser = argparse.ArgumentParser(
        description="Reproduce the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment names and/or 'all'")
    parser.add_argument("--scale", type=int, default=1,
                        help="workload size multiplier (default 1)")
    parser.add_argument("--cls-capacity", type=int, default=16)
    parser.add_argument("--max-instructions", type=int, default=None,
                        help="per-workload instruction budget override")
    parser.add_argument("--workloads", default=None, metavar="A,B,...",
                        help="comma-separated workload subset "
                             "(default: full suite)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="tracer processes (default 1: sequential)")
    parser.add_argument("--cache-dir", default=default_cache_dir(),
                        help="on-disk trace cache (default %(default)s)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk trace cache")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and workloads")
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        print("available experiments:")
        for name in experiments:
            print("  %s" % name)
        print("available workloads:")
        for name in SUITE_ORDER:
            print("  %s" % name)
        return 0

    try:
        selected = select_experiments(args.experiments, experiments)
    except ValueError as exc:
        parser.error(str(exc))

    try:
        config = PipelineConfig(
            scale=args.scale,
            cls_capacity=args.cls_capacity,
            max_instructions=args.max_instructions,
            workloads=(_parse_workloads(args.workloads, parser)
                       if args.workloads is not None else None),
            jobs=args.jobs,
            cache_dir=None if args.no_cache else args.cache_dir,
        )
    except ValueError as exc:
        parser.error(str(exc))
    session = SimulationSession(config)
    for name in selected:
        start = time.time()
        results = experiments[name](session)
        if not isinstance(results, list):
            results = [results]
        for result in results:
            print(result.render())
            print()
        print("[%s done in %.1fs]" % (name, time.time() - start))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
