"""Experiment command-line entry point over the simulation pipeline.

Every experiment is a registered streaming
:class:`~repro.analysis.base.Analysis`; the runner composes the
requested ones into a single :class:`~repro.analysis.suite.
AnalysisSuite` and calls :meth:`SimulationSession.analyze
<repro.pipeline.session.SimulationSession.analyze>` exactly once --
one event-stream replay per workload feeds *all* selected experiments,
however many are requested.  Tracing still fans out across ``--jobs``
processes and persists in the content-keyed on-disk cache
(``--cache-dir``, on by default; disable with ``--no-cache``).

Usage::

    python -m repro.experiments.runner --list
    python -m repro.experiments.runner table1 figure6
    python -m repro.experiments.runner all --scale 2 --jobs 4
    python -m repro.experiments.runner table2 --workloads swim,go
    python -m repro.experiments.runner all --format csv --output-dir out/
    python -m repro.experiments.runner all --no-cache
    python -m repro.experiments.runner characterize \
        --profile deep-nest --seed 7 --count 25
    python -m repro.experiments.runner table1 --profile irregular
    python -m repro.experiments.runner figure6 --timing overhead:spawn=8
    python -m repro.experiments.runner sensitivity \
        --spawn-cost 0,2,8,32 --tus 2,4,8,16
    python -m repro.experiments.runner all --profile-run 30
    python -m repro.experiments.runner sweep sensitivity \
        --workloads swim,go --spawn-cost 0,8 --jobs 4
    python -m repro.experiments.runner query --report
    python -m repro.experiments.runner search \
        --objective tpc-inversion --budget 200 --seed 7

``search`` routes to the adversarial workload search
(:mod:`repro.search`, docs/SEARCH.md): a deterministic hill climber
over synthetic profile knobs that checkpoints into the sweep store and
promotes winners into the committed frontier corpus.

``sweep`` and ``query`` route to the resumable sweep subsystem
(:mod:`repro.sweep`, docs/SWEEPS.md): sweeps checkpoint each finished
cell into an on-disk store, survive interruption (resubmit to resume;
Ctrl-C exits 130 after flushing finished cells), and ``query`` rebuilds
reports from the store byte-identical to the direct runs above.

``--timing name[:k=v,...]`` selects the timing model speculation
experiments simulate under (see ``--list`` and docs/TIMING.md; default:
the paper's ideal machine).  ``sensitivity`` sweeps its own overhead
models and ignores ``--timing``.

``all`` composes with explicit names (``table1 all`` runs table1 first,
then the rest); duplicates run once.  Each experiment module is also
directly runnable with the same flags, e.g. ``python -m
repro.experiments.table1 --jobs 4``.

The old ``SuiteRunner`` shim is gone; construct a
:class:`~repro.pipeline.session.SimulationSession` instead.
"""

import argparse
import os
import sys
import time

from repro.analysis import AnalysisSuite, make_analysis
from repro.pipeline import PipelineConfig, SimulationSession, \
    default_cache_dir
from repro.workloads import SUITE_ORDER, get as get_workload, \
    names as workload_names

#: Paper order of the experiments (the order ``all`` runs them in).
EXPERIMENT_ORDER = (
    "table1",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "table2",
    "figure8",
    "ablations",
    "baselines",
    "extensions",
)

#: Experiments beyond the paper's tables/figures.  Selectable by name
#: but never part of ``all`` (the characterization sweep targets
#: generated synthetic workloads; the sensitivity sweep departs from
#: the paper's idealized timing).
EXTRA_EXPERIMENTS = ("characterize", "sensitivity")


def _removed(name):
    raise ImportError(
        "%s was removed: the sequential SuiteRunner shim is gone. "
        "Construct repro.pipeline.SimulationSession instead (e.g. "
        "SimulationSession(workloads=('swim', 'go'), cache_dir=None) "
        "for the old sequential, uncached behaviour) and call "
        "analyze()/indexes() on it." % name)


def __getattr__(name):
    if name == "SuiteRunner":
        _removed("repro.experiments.runner.SuiteRunner")
    raise AttributeError(name)


def available_experiments():
    """Name -> analysis factory for every paper experiment, in paper
    order (the ``all`` expansion; see :func:`extra_experiments`)."""
    # Importing the modules registers their analyses.
    from repro.experiments import (  # noqa: F401
        ablations,
        baselines,
        extensions,
        figure4,
        figure5,
        figure6,
        figure7,
        figure8,
        table1,
        table2,
    )
    from repro.analysis.registry import _REGISTRY
    return {name: _REGISTRY[name] for name in EXPERIMENT_ORDER}


def extra_experiments():
    """Name -> analysis factory for the non-paper experiments."""
    from repro.experiments import characterize, sensitivity  # noqa: F401
    from repro.analysis.registry import _REGISTRY
    return {name: _REGISTRY[name] for name in EXTRA_EXPERIMENTS}


def select_experiments(requested, available, extras=()):
    """Expand ``all`` and de-duplicate, preserving first-seen order.

    ``all`` expands to *available* (the paper set) only; *extras* are
    selectable by explicit name.  Raises :class:`ValueError` naming any
    unknown experiments.
    """
    unknown = [name for name in requested
               if name != "all" and name not in available
               and name not in extras]
    if unknown:
        raise ValueError("unknown experiments: %s" % ", ".join(unknown))
    selected = []
    for name in requested:
        expansion = list(available) if name == "all" else [name]
        for exp in expansion:
            if exp not in selected:
                selected.append(exp)
    return selected


def build_suite(selected, overrides=None):
    """An :class:`AnalysisSuite` with one registered pass per selected
    experiment; returns ``(suite, {name: analysis})``.

    *overrides* maps experiment names to constructor keyword arguments
    (the runner uses it to hand the sensitivity sweep its CLI-selected
    cost and TU lists).
    """
    available_experiments()   # ensure registration
    extra_experiments()
    suite = AnalysisSuite()
    by_name = {}
    for name in selected:
        kwargs = overrides.get(name, {}) if overrides else {}
        by_name[name] = suite.add(make_analysis(name, **kwargs),
                                  name=name)
    return suite, by_name


def run_experiment(name, session):
    """Run one experiment over *session*; returns its result(s).

    Convenience for tests and the per-module ``run()`` helpers; to run
    several experiments, build one suite and ``analyze`` once instead.
    """
    suite, _ = build_suite([name])
    return session.analyze(suite)[0]


def experiment_main(experiment, argv=None):
    """CLI entry point for one experiment module (``--jobs`` etc. all
    apply); used by each module's ``main()``."""
    return main([experiment] + list(sys.argv[1:] if argv is None
                                    else argv))


def _parse_workloads(spec, parser):
    names = []
    known = set(workload_names())
    for name in spec.split(","):
        name = name.strip()
        if not name:
            continue
        if name not in known:
            try:
                # synth-<profile>-<seed> resolves through the generator.
                get_workload(name)
            except KeyError:
                parser.error("unknown workload %r (see --list)" % name)
        if name not in names:
            names.append(name)
    if not names:
        parser.error("--workloads selected nothing")
    return tuple(names)


def _synthetic_sweep(args, selected, parser):
    """The synthetic workload tuple for this invocation, or ``None``.

    ``--profile``/``--seed``/``--count`` select a generated sweep for
    *any* experiment; ``characterize`` without an explicit workload set
    defaults to the ``baseline`` profile (``sensitivity`` defaults to
    the analog suite, like the paper experiments).  Sweep flags that
    would have no effect are rejected rather than silently ignored.
    """
    wants_sweep = args.profile is not None \
        or "characterize" in selected
    if not wants_sweep or args.workloads is not None:
        if args.profile is not None:
            parser.error("--profile and --workloads are mutually "
                         "exclusive")
        if args.seed is not None or args.count is not None:
            parser.error("--seed/--count apply to a synthetic sweep "
                         "only (use --profile, or the characterize "
                         "experiment without --workloads)")
        return None
    from repro.workloads.synthetic import sweep_names
    try:
        names = sweep_names(args.profile or "baseline",
                            1 if args.seed is None else args.seed,
                            10 if args.count is None else args.count)
        for name in names:
            get_workload(name)      # resolve + register up front
    except (KeyError, ValueError) as exc:
        parser.error(str(exc))
    return tuple(names)


def _parse_int_list(option, spec, parser):
    """Comma-separated non-negative integers, as for ``--spawn-cost``."""
    try:
        values = tuple(int(v.strip()) for v in spec.split(",")
                       if v.strip())
    except ValueError:
        parser.error("%s expects comma-separated integers, got %r"
                     % (option, spec))
    if not values:
        parser.error("%s selected nothing" % option)
    return values


def _sensitivity_overrides(args, selected, parser):
    """Constructor kwargs for the sensitivity sweep, or ``{}``.

    Sweep flags given without the sensitivity experiment are rejected
    rather than silently ignored.
    """
    flags = (("--spawn-cost", args.spawn_cost),
             ("--tus", args.tus),
             ("--policies", args.policies),
             ("--squash-cost", args.squash_cost),
             ("--promote-cost", args.promote_cost))
    given = [name for name, value in flags if value is not None]
    if "sensitivity" not in selected:
        if given:
            parser.error("%s appl%s to the sensitivity experiment only"
                         % (", ".join(given),
                            "ies" if len(given) == 1 else "y"))
        return {}
    kwargs = {}
    if args.spawn_cost is not None:
        kwargs["spawn_costs"] = _parse_int_list(
            "--spawn-cost", args.spawn_cost, parser)
    if args.tus is not None:
        kwargs["tu_counts"] = _parse_int_list("--tus", args.tus, parser)
    if args.policies is not None:
        from repro.core.speculation import make_policy
        policies = tuple(p.strip() for p in args.policies.split(",")
                         if p.strip())
        for policy in policies:
            try:
                make_policy(policy)
            except ValueError as exc:
                parser.error(str(exc))
        kwargs["policies"] = policies
    if args.squash_cost is not None:
        kwargs["squash_cost"] = args.squash_cost
    if args.promote_cost is not None:
        kwargs["promote_cost"] = args.promote_cost
    return {"sensitivity": kwargs}


def _emit(name, results, fmt, output_dir):
    """Render one experiment's result list per ``--format`` /
    ``--output-dir``; returns the lines printed to stdout."""
    formats = {
        "text": (lambda r: r.render() + "\n", ".txt"),
        "csv": (lambda r: r.to_csv(), ".csv"),
        "json": (lambda r: r.to_json() + "\n", ".json"),
    }
    render, suffix = formats[fmt]
    for i, result in enumerate(results):
        text = render(result)
        if output_dir is not None:
            stem = name if len(results) == 1 else "%s-%d" % (name, i + 1)
            path = os.path.join(output_dir, stem + suffix)
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text)
            print("wrote %s" % path)
        else:
            print(text)


def main(argv=None):
    """Top-level dispatch: ``sweep``/``query`` route to the sweep
    subsystem (:mod:`repro.sweep.cli`); anything else runs experiments
    directly.  ``KeyboardInterrupt`` exits 130 everywhere -- the sweep
    orchestrator checkpoints finished cells before the interrupt
    propagates here, so an interrupted sweep resumes where it left off.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        if argv and argv[0] == "sweep":
            from repro.sweep.cli import sweep_main
            return sweep_main(argv[1:])
        if argv and argv[0] == "query":
            from repro.sweep.cli import query_main
            return query_main(argv[1:])
        if argv and argv[0] == "search":
            from repro.search.cli import search_main
            return search_main(argv[1:])
        return _main(argv)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


def _main(argv):
    experiments = available_experiments()
    parser = argparse.ArgumentParser(
        description="Reproduce the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment names and/or 'all'")
    parser.add_argument("--scale", type=int, default=1,
                        help="workload size multiplier (default 1)")
    parser.add_argument("--cls-capacity", type=int, default=16)
    parser.add_argument("--max-instructions", type=int, default=None,
                        help="per-workload instruction budget override")
    parser.add_argument("--workloads", default=None, metavar="A,B,...",
                        help="comma-separated workload subset "
                             "(default: full suite); synth-<profile>-"
                             "<seed> names are generated on demand")
    parser.add_argument("--profile", default=None, metavar="NAME",
                        help="run over a generated synthetic sweep of "
                             "this profile instead of the analog suite "
                             "(see --list; default for characterize: "
                             "baseline)")
    parser.add_argument("--seed", type=int, default=None,
                        help="first seed of the synthetic sweep "
                             "(default 1)")
    parser.add_argument("--count", type=int, default=None,
                        help="workloads in the synthetic sweep "
                             "(default 10)")
    parser.add_argument("--timing", default=None, metavar="SPEC",
                        help="timing model for speculation experiments "
                             "as name[:k=v,...], e.g. overhead:spawn=8 "
                             "(see --list; default: ideal)")
    parser.add_argument("--spawn-cost", default=None, metavar="N,...",
                        help="sensitivity sweep: thread-spawn costs "
                             "(default 0,2,8,32)")
    parser.add_argument("--tus", default=None, metavar="N,...",
                        help="sensitivity sweep: TU counts "
                             "(default 2,4,8,16)")
    parser.add_argument("--policies", default=None, metavar="P,...",
                        help="sensitivity sweep: policies "
                             "(default idle,str,str(3))")
    parser.add_argument("--squash-cost", type=int, default=None,
                        metavar="N",
                        help="sensitivity sweep: fixed per-thread "
                             "squash cost (default 0)")
    parser.add_argument("--promote-cost", type=int, default=None,
                        metavar="N",
                        help="sensitivity sweep: fixed promotion cost "
                             "(default 0)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="tracer processes (default 1: sequential)")
    parser.add_argument("--cache-dir", default=default_cache_dir(),
                        help="on-disk trace cache (default %(default)s)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk trace cache")
    parser.add_argument("--profile-run", type=int, nargs="?", const=25,
                        default=None, metavar="N",
                        help="run the analysis under cProfile and "
                             "print the top N functions by cumulative "
                             "time after the results (default N: 25)")
    parser.add_argument("--metrics", default=None, metavar="PATH",
                        help="write a run manifest to PATH (summary "
                             "JSON; span/counter events stream to "
                             "PATH with a .jsonl suffix)")
    parser.add_argument("--timeline", action="store_true",
                        help="print the per-stage timing breakdown "
                             "after the results")
    parser.add_argument("--format", choices=("text", "csv", "json"),
                        default="text",
                        help="result rendering (default text)")
    parser.add_argument("--output-dir", default=None, metavar="DIR",
                        help="write one file per result table into DIR "
                             "instead of printing tables to stdout")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and workloads")
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        print("available experiments:")
        for name in experiments:
            print("  %s" % name)
        for name in EXTRA_EXPERIMENTS:
            print("  %s" % name)
        print("available workloads:")
        for name in SUITE_ORDER:
            print("  %s" % name)
        from repro.workloads.synthetic import profile_names
        print("synthetic profiles (--profile, or workloads "
              "synth-<profile>-<seed>):")
        for name in profile_names():
            print("  %s" % name)
        from repro.timing import timing_names
        print("timing models (--timing name[:k=v,...]):")
        for name in timing_names():
            print("  %s" % name)
        return 0

    try:
        selected = select_experiments(args.experiments, experiments,
                                      extras=EXTRA_EXPERIMENTS)
    except ValueError as exc:
        parser.error(str(exc))

    overrides = _sensitivity_overrides(args, selected, parser)
    sweep = _synthetic_sweep(args, selected, parser)
    try:
        config = PipelineConfig(
            scale=args.scale,
            cls_capacity=args.cls_capacity,
            max_instructions=args.max_instructions,
            workloads=(sweep if sweep is not None
                       else _parse_workloads(args.workloads, parser)
                       if args.workloads is not None else None),
            jobs=args.jobs,
            cache_dir=None if args.no_cache else args.cache_dir,
            timing=args.timing,
        )
    except ValueError as exc:
        parser.error(str(exc))

    if args.output_dir is not None:
        os.makedirs(args.output_dir, exist_ok=True)

    if args.profile_run is not None and args.profile_run < 1:
        parser.error("--profile-run expects a positive line count")

    from repro.obs import RunObserver, collector as obs

    observer = RunObserver(
        metrics_path=args.metrics, timeline=args.timeline,
        profile_lines=args.profile_run, argv=["runner"] + list(argv),
        command="run", copy_dirs=(config.cache_dir,))
    with observer:
        with obs.span("setup", experiments=len(selected)):
            session = SimulationSession(config)
            try:
                suite, _ = build_suite(selected, overrides)
            except ValueError as exc:
                parser.error(str(exc))
        start = time.time()
        with observer.profiled():
            with obs.span("analyze"):
                all_results = session.analyze(suite)
        analyze_seconds = time.time() - start
        with obs.span("emit", format=args.format):
            for name, results in zip(selected, all_results):
                if not isinstance(results, list):
                    results = [results]
                _emit(name, results, args.format, args.output_dir)
                # All experiments share the single replay, so
                # per-experiment wall time no longer exists; the total
                # is reported below.
                print("[%s done]" % name)
                print()
        print("[%d experiment(s), %d workload(s), %d replay(s), "
              "analyzed in %.1fs]"
              % (len(selected), len(session.workloads),
                 session.stats.replays, analyze_seconds))
        observer.record_session(session)
    observer.finalize(extra_meta={
        "experiments": list(selected),
        "analyze_seconds": round(analyze_seconds, 3)})
    return 0


if __name__ == "__main__":
    sys.exit(main())
