"""Suite runner: traces workloads once, shares indexes across
experiments, and provides a command-line entry point.

Usage::

    python -m repro.experiments.runner --list
    python -m repro.experiments.runner table1 figure6
    python -m repro.experiments.runner all --scale 2
"""

import argparse
import sys
import time

from repro.core.detector import LoopDetector
from repro.workloads import suite


class SuiteRunner:
    """Caches per-workload traces and loop indexes.

    The interpretation step dominates experiment cost; every experiment
    shares one control-flow trace and one detector pass per workload.
    """

    def __init__(self, scale=1, cls_capacity=16, max_instructions=None,
                 workloads=None):
        self.scale = scale
        self.cls_capacity = cls_capacity
        self.max_instructions = max_instructions
        self._workloads = list(workloads) if workloads is not None \
            else suite()
        self._traces = {}
        self._indexes = {}

    @property
    def workloads(self):
        return list(self._workloads)

    def trace(self, name):
        if name not in self._traces:
            workload = self._get(name)
            self._traces[name] = workload.cf_trace(
                self.scale, self.max_instructions)
        return self._traces[name]

    def index(self, name):
        if name not in self._indexes:
            detector = LoopDetector(cls_capacity=self.cls_capacity)
            self._indexes[name] = detector.run(self.trace(name))
        return self._indexes[name]

    def indexes(self):
        return [(w.name, self.index(w.name)) for w in self._workloads]

    def _get(self, name):
        for workload in self._workloads:
            if workload.name == name:
                return workload
        raise KeyError("workload %r not in this runner" % name)


def available_experiments():
    """Name -> callable(runner) for every experiment."""
    from repro.experiments import (
        ablations,
        baselines,
        extensions,
        figure4,
        figure5,
        figure6,
        figure7,
        figure8,
        table1,
        table2,
    )
    return {
        "table1": table1.run,
        "figure4": figure4.run,
        "figure5": figure5.run,
        "figure6": figure6.run,
        "figure7": figure7.run,
        "table2": table2.run,
        "figure8": figure8.run,
        "ablations": ablations.run,
        "baselines": baselines.run,
        "extensions": extensions.run,
    }


def main(argv=None):
    experiments = available_experiments()
    parser = argparse.ArgumentParser(
        description="Reproduce the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        help="experiment names, or 'all'")
    parser.add_argument("--scale", type=int, default=1,
                        help="workload size multiplier (default 1)")
    parser.add_argument("--cls-capacity", type=int, default=16)
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        print("available experiments:")
        for name in experiments:
            print("  %s" % name)
        return 0

    names = list(experiments) if args.experiments == ["all"] \
        else args.experiments
    unknown = [n for n in names if n not in experiments]
    if unknown:
        parser.error("unknown experiments: %s" % ", ".join(unknown))

    runner = SuiteRunner(scale=args.scale,
                         cls_capacity=args.cls_capacity)
    for name in names:
        start = time.time()
        results = experiments[name](runner)
        if not isinstance(results, list):
            results = [results]
        for result in results:
            print(result.render())
            print()
        print("[%s done in %.1fs]" % (name, time.time() - start))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
