"""Figure 5: TPC with infinite thread units.

The idealized limit study: unlimited TUs, speculation on every remaining
iteration the moment a loop execution is detected.  The paper plots each
benchmark twice -- the whole run and the first 10^9 instructions -- to
justify evaluating reduced runs; we mirror that with the full trace and
a quarter-length prefix.

The prefix no longer needs a second trace replay: a second detector
rides the same record stream, fed only the records inside the prefix
(``total_instructions`` is known from the trace header up front).
"""

from repro.analysis import Analysis, register_analysis
from repro.core.detector import LoopDetector
from repro.core.speculation import simulate_infinite
from repro.experiments.report import ExperimentResult


@register_analysis("figure5")
class Figure5Analysis(Analysis):
    wants_records = True

    def __init__(self):
        self._rows = []
        self._series = {}
        self._prefix_detector = None
        self._prefix_limit = None

    def begin(self, ctx):
        # clip() semantics: a quarter prefix, at least one instruction,
        # never longer than the trace itself.
        self._prefix_limit = min(max(1, ctx.total_instructions // 4),
                                 ctx.total_instructions)
        self._prefix_detector = LoopDetector(
            cls_capacity=ctx.cls_capacity)

    def feed_record(self, record):
        if record.seq < self._prefix_limit:
            self._prefix_detector.feed(record)

    def feed_batch(self, batch):
        # Zero-copy columnar path: the prefix is a slice of the sorted
        # seq column, and the prefix detector consumes it as a batch.
        prefix = batch.prefix(self._prefix_limit)
        if len(prefix):
            self._prefix_detector.feed_batch(prefix)

    def abort(self, ctx):
        self._prefix_detector = None

    def finish(self, ctx):
        full = simulate_infinite(ctx.index, name=ctx.name)
        self._prefix_detector.finish(self._prefix_limit)
        reduced_index = self._prefix_detector.index(self._prefix_limit)
        reduced = simulate_infinite(reduced_index, name=ctx.name)
        self._rows.append((ctx.name, round(full.tpc, 2),
                           round(reduced.tpc, 2)))
        self._series[ctx.name] = {"full": full, "reduced": reduced}
        self._prefix_detector = None

    def result(self):
        return ExperimentResult(
            "Figure 5: TPC for infinite TUs (full run vs 1/4 prefix)",
            ("program", "TPC (all instr)", "TPC (prefix)"),
            self._rows,
            notes=["log-scale figure in the paper; the prefix behaving "
                   "like the full run justifies reduced evaluations"],
            extra={"series": self._series},
        )


def run(runner):
    from repro.experiments.runner import run_experiment
    return run_experiment("figure5", runner)


if __name__ == "__main__":
    import sys

    from repro.experiments.runner import experiment_main
    sys.exit(experiment_main("figure5"))
