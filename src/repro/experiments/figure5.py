"""Figure 5: TPC with infinite thread units.

The idealized limit study: unlimited TUs, speculation on every remaining
iteration the moment a loop execution is detected.  The paper plots each
benchmark twice -- the whole run and the first 10^9 instructions -- to
justify evaluating reduced runs; we mirror that with the full trace and
a quarter-length prefix.
"""

from repro.core.detector import LoopDetector
from repro.core.speculation import simulate_infinite
from repro.experiments.report import ExperimentResult
from repro.trace.stream import clip


def run(runner):
    rows = []
    series = {}
    for name, index in runner.indexes():
        full = simulate_infinite(index, name=name)
        reduced_trace = clip(runner.trace(name),
                             max(1, runner.trace(name).total_instructions
                                 // 4))
        reduced_index = LoopDetector(
            cls_capacity=runner.cls_capacity).run(reduced_trace)
        reduced = simulate_infinite(reduced_index, name=name)
        rows.append((name, round(full.tpc, 2), round(reduced.tpc, 2)))
        series[name] = {"full": full, "reduced": reduced}
    return ExperimentResult(
        "Figure 5: TPC for infinite TUs (full run vs 1/4 prefix)",
        ("program", "TPC (all instr)", "TPC (prefix)"),
        rows,
        notes=["log-scale figure in the paper; the prefix behaving like "
               "the full run justifies reduced evaluations"],
        extra={"series": series},
    )


if __name__ == "__main__":
    import sys

    from repro.experiments.runner import experiment_main
    sys.exit(experiment_main("figure5"))
