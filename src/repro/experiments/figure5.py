"""Figure 5: TPC with infinite thread units.

The idealized limit study: unlimited TUs, speculation on every remaining
iteration the moment a loop execution is detected.  The paper plots each
benchmark twice -- the whole run and the first 10^9 instructions -- to
justify evaluating reduced runs; we mirror that with the full trace and
a quarter-length prefix.

The prefix no longer needs a second trace replay: a second detector
rides the same record stream, fed only the records inside the prefix
(``total_instructions`` is known from the trace header up front).
"""

from repro.analysis import Analysis, register_analysis
from repro.core.detector import LoopDetector
from repro.core.speculation import simulate_infinite
from repro.core.speculation.metrics import SpeculationResult
from repro.experiments.report import ExperimentResult


def _cached_infinite(ctx, dkey, index):
    """An infinite-TU simulation of *index*, via the workload's derived
    store when present (the result is a pure function of the trace and
    the index parameters baked into *dkey*)."""
    derived = ctx.derived
    if derived is not None:
        state = derived.get(dkey)
        if state is not None:
            try:
                return SpeculationResult.from_state(state)
            except (KeyError, TypeError):
                pass
    result = simulate_infinite(index, name=ctx.name)
    if derived is not None:
        derived.put(dkey, result.state())
    return result


@register_analysis("figure5")
class Figure5Analysis(Analysis):
    wants_records = True

    def __init__(self):
        self._rows = []
        self._series = {}
        self._prefix_detector = None
        self._prefix_limit = None
        self._reduced_cached = None

    def begin(self, ctx):
        # clip() semantics: a quarter prefix, at least one instruction,
        # never longer than the trace itself.
        self._prefix_limit = min(max(1, ctx.total_instructions // 4),
                                 ctx.total_instructions)
        # When the reduced-run result is already in the derived store,
        # the whole prefix detection pass is unnecessary -- the prefix
        # index existed only to feed that one simulation.
        self._reduced_cached = None
        if ctx.derived is not None:
            state = ctx.derived.get(self._reduced_key(ctx))
            if state is not None:
                try:
                    self._reduced_cached = \
                        SpeculationResult.from_state(state)
                except (KeyError, TypeError):
                    self._reduced_cached = None
        self._prefix_detector = None if self._reduced_cached is not None \
            else LoopDetector(cls_capacity=ctx.cls_capacity)

    def _reduced_key(self, ctx):
        return ("simulate-inf/prefix%d/c%d"
                % (self._prefix_limit, ctx.cls_capacity))

    def feed_record(self, record):
        if self._prefix_detector is not None \
                and record.seq < self._prefix_limit:
            self._prefix_detector.feed(record)

    def feed_batch(self, batch):
        # Zero-copy columnar path: the prefix is a slice of the sorted
        # seq column, and the prefix detector consumes it as a batch.
        if self._prefix_detector is None:
            return
        prefix = batch.prefix(self._prefix_limit)
        if len(prefix):
            self._prefix_detector.feed_batch(prefix)

    def abort(self, ctx):
        self._prefix_detector = None
        self._reduced_cached = None

    def finish(self, ctx):
        full = _cached_infinite(
            ctx, "simulate-inf/c%d" % ctx.cls_capacity, ctx.index)
        reduced = self._reduced_cached
        if reduced is None:
            self._prefix_detector.finish(self._prefix_limit)
            reduced_index = self._prefix_detector.index(
                self._prefix_limit)
            reduced = _cached_infinite(ctx, self._reduced_key(ctx),
                                       reduced_index)
        self._rows.append((ctx.name, round(full.tpc, 2),
                           round(reduced.tpc, 2)))
        self._series[ctx.name] = {"full": full, "reduced": reduced}
        self._prefix_detector = None
        self._reduced_cached = None

    def result(self):
        return ExperimentResult(
            "Figure 5: TPC for infinite TUs (full run vs 1/4 prefix)",
            ("program", "TPC (all instr)", "TPC (prefix)"),
            self._rows,
            notes=["log-scale figure in the paper; the prefix behaving "
                   "like the full run justifies reduced evaluations"],
            extra={"series": self._series},
        )


def run(runner):
    from repro.experiments.runner import run_experiment
    return run_experiment("figure5", runner)


if __name__ == "__main__":
    import sys

    from repro.experiments.runner import experiment_main
    sys.exit(experiment_main("figure5"))
