"""The paper's contribution: dynamic loop detection and thread-control
speculation (Tubella & Gonzalez, HPCA 1998)."""

from repro.core.cls import CLSEntry, CurrentLoopStack, DEFAULT_CAPACITY
from repro.core.detector import LoopDetector, LoopExecutionRecord, LoopIndex
from repro.core.events import (
    EndReason,
    ExecutionEnd,
    ExecutionStart,
    IterationStart,
    LoopEvent,
    SingleIteration,
)
from repro.core.loopstats import LoopStatistics, \
    compute_loop_statistics, loop_coverage
from repro.core.predictors import (
    IterationCountPredictor,
    LastPlusStride,
    StridePredictor,
    TwoBitCounter,
)
from repro.core.tables import (
    LoopHistoryTable,
    NestingTracker,
    POLICY_LRU,
    POLICY_NESTING_AWARE,
    TableEntry,
    TableHitRatioSimulator,
)

__all__ = [
    "CLSEntry",
    "CurrentLoopStack",
    "DEFAULT_CAPACITY",
    "LoopDetector",
    "LoopExecutionRecord",
    "LoopIndex",
    "EndReason",
    "ExecutionEnd",
    "ExecutionStart",
    "IterationStart",
    "LoopEvent",
    "SingleIteration",
    "LoopStatistics",
    "compute_loop_statistics",
    "loop_coverage",
    "IterationCountPredictor",
    "LastPlusStride",
    "StridePredictor",
    "TwoBitCounter",
    "LoopHistoryTable",
    "NestingTracker",
    "POLICY_LRU",
    "POLICY_NESTING_AWARE",
    "TableEntry",
    "TableHitRatioSimulator",
]
