"""Event-driven simulation of thread control speculation (section 3).

Timing is delegated to the pluggable model layer in
:mod:`repro.timing` (see docs/TIMING.md): every time advance, thread
progress computation, and speculation-event overhead routes through
the :class:`~repro.timing.base.TimingModel` the engine was constructed
with.  The default :class:`~repro.timing.models.IdealTiming` is the
paper's machine -- one instruction per cycle per thread unit, free
spawns, instantaneous promotion -- and reproduces the pre-timing-layer
engine bit for bit.  Threads are contiguous regions of the dynamic
instruction stream; between loop events every active TU advances at
the model's rate, so the simulation walks the detector's event list --
an O(#events) algorithm that makes 16-TU and unlimited-TU runs equally
cheap.  Models whose rates vary along the stream (the
per-instruction-class cost table) are fed the record stream before the
simulation and answer positional queries from it.

Mechanics per the paper:

* **Speculation** happens whenever a loop iteration starts in the
  non-speculative thread; the policy allocates idle TUs to further
  consecutive iterations of that loop.
* **Verification** happens when the non-speculative thread starts a loop
  iteration (the first speculated thread of that loop is promoted and
  the old non-speculative TU freed) or finishes a loop execution (all
  remaining speculated iterations of that loop are squashed).
* **Promotion is instantaneous**: the promoted thread's already-executed
  instructions move the non-speculative position forward; loop events
  inside the skipped range are applied for bookkeeping and verification
  but cannot spawn threads into the past.
"""

from repro.core.events import (
    ExecutionEnd,
    ExecutionStart,
    IterationStart,
    SingleIteration,
)
from repro.core.predictors import IterationCountPredictor
from repro.core.speculation.metrics import SpeculationResult
from repro.core.speculation.policies import OracleAllPolicy, make_policy
from repro.core.tables import LoopHistoryTable
from repro.timing import make_timing


class SpecThread:
    """One speculative thread: a (possibly nonexistent) future iteration.

    ``start_seq is None`` marks a doomed thread speculating an iteration
    beyond the execution's actual count; it occupies a TU until the
    execution-end squash.  ``end_seq is None`` on an existing iteration
    marks the execution's last iteration, whose thread runs on into
    post-loop code until confirmed.
    """

    __slots__ = ("loop", "exec_id", "iteration", "start_seq", "end_seq",
                 "spawn_time", "spawn_seq")

    def __init__(self, loop, exec_id, iteration, start_seq, end_seq,
                 spawn_time, spawn_seq):
        self.loop = loop
        self.exec_id = exec_id
        self.iteration = iteration
        self.start_seq = start_seq
        self.end_seq = end_seq
        self.spawn_time = spawn_time
        self.spawn_seq = spawn_seq

    @property
    def exists(self):
        return self.start_seq is not None

    def __repr__(self):
        return ("SpecThread(loop=%d, exec=%d, iter=%d, exists=%s)"
                % (self.loop, self.exec_id, self.iteration, self.exists))


class SpeculationEngine:
    """Simulates a multithreaded processor's thread control speculation.

    ``num_tus=None`` models unlimited contexts and is only valid with
    the oracle policy (Figure 5's limit study).
    """

    __slots__ = ("policy", "num_tus", "let_capacity", "count_waiting",
                 "disable_table", "timing", "_index", "_executions",
                 "_result", "_now", "_pos", "_threads", "_spec_count",
                 "_let", "_stack", "_skip_prediction", "_cycles",
                 "_overhead")

    def __init__(self, num_tus=4, policy="str", let_capacity=None,
                 count_waiting=True, disable_table=None, timing=None):
        self.policy = make_policy(policy)
        self.timing = make_timing(timing)
        if num_tus is None:
            if self.policy.requires_finite_tus:
                raise ValueError(
                    "policy %s requires a finite number of TUs"
                    % self.policy.name)
        elif num_tus < 1:
            raise ValueError("num_tus must be >= 1 or None")
        self.num_tus = num_tus
        self.let_capacity = let_capacity
        self.count_waiting = count_waiting
        self.disable_table = disable_table

    # -- public API ---------------------------------------------------------

    def begin(self, index, name="workload"):
        """Arm the engine for one simulation over *index*.

        The engine consumes the event stream incrementally through
        :meth:`feed`, but it is an *oracle*: spawning threads reads the
        speculated iterations' future boundary sequence numbers from
        the index, so *index* must be the completed
        :class:`~repro.core.detector.LoopIndex` of the trace whose
        events are about to be fed.
        """
        self._index = index
        self._executions = index.executions
        self._result = SpeculationResult(
            name, self.num_tus if self.num_tus is not None else "inf",
            self.policy.name)
        self._result.total_instructions = index.total_instructions
        self._result.timing_name = self.timing.name
        self._cycles = self.timing.cycles
        self._overhead = 0
        self._now = 0
        self._pos = 0
        self._threads = {}          # exec_id -> list of SpecThread (FIFO)
        self._spec_count = 0
        self._let = LoopHistoryTable(self.let_capacity)
        self._stack = []            # (exec_id, loop), outermost first
        # Hot-path shortcut: skipping the LET prediction lookup is only
        # legal when the policy ignores it AND the lookup cannot change
        # table state (an unbounded LET has no LRU evictions to skew).
        self._skip_prediction = (not self.policy.needs_prediction
                                 and self.let_capacity is None)
        return self

    def feed(self, event):
        """Advance the machine through one loop event."""
        if event.seq > self._pos:
            self._now += self._cycles(self._pos, event.seq - self._pos)
            self._pos = event.seq
        etype = type(event)
        if etype is IterationStart:
            self._on_iteration(event.seq, event.loop, event.exec_id,
                               event.iteration)
        elif etype is ExecutionStart:
            self._on_execution_start(event.seq, event.loop,
                                     event.exec_id)
        elif etype is ExecutionEnd:
            self._on_execution_end(event.seq, event.loop, event.exec_id,
                                   event.iterations)
        elif etype is SingleIteration:
            self._let_update(event.loop, 1)

    def finish(self):
        """Run out the post-loop tail and return the result."""
        if self._index.total_instructions > self._pos:
            self._now += self._cycles(
                self._pos, self._index.total_instructions - self._pos)
            self._pos = self._index.total_instructions
        self._result.total_cycles = self._now
        self._result.overhead_cycles = self._overhead
        self._result.unresolved_at_end = self._spec_count
        result = self._result
        if not self.count_waiting:
            result.credit_waiting = result.credit_executing
        return result

    def run(self, index, name="workload"):
        """Simulate over a :class:`~repro.core.detector.LoopIndex`.

        Uses the index's columnar event form when available (anything
        exposing ``columns()``); the walk is then *sparse*: runs of
        iteration starts at which provably nothing can happen -- every
        TU busy, execution untracked, so no promotion and no spawn --
        are jumped over wholesale, and the skipped clock advances
        telescope into the next visited event's single
        :meth:`~repro.timing.base.TimingModel.cycles` call (built-in
        models price an advance as a prefix difference, so segmenting
        the walk differently cannot change the total).  Results are
        bit-identical to feeding every event; the equivalence tests pin
        both paths against each other.
        """
        self.begin(index, name)
        columns = getattr(index, "columns", None)
        if columns is not None:
            self._run_columns(columns())
        else:
            feed = self.feed
            for event in index.events:
                feed(event)
        return self.finish()

    def _run_columns(self, cols):
        etypes = cols.etypes
        seqs = cols.seqs
        loops = cols.loops
        exec_ids = cols.exec_ids
        auxs = cols.auxs
        next_non_iteration = cols.next_non_iteration
        next_iteration_after = cols.next_iteration_after
        n = len(etypes)
        threads = self._threads
        cycles = self._cycles
        num_tus = self.num_tus
        finite = num_tus is not None
        # The LET is write-only when the policy never reads predictions
        # (and the unbounded table has no LRU state to perturb); the
        # nesting stack is only read by the STR(i) squash rule.
        track_let = not self._skip_prediction
        nesting_limit = self.policy.nesting_limit
        i = 0
        while i < n:
            if etypes[i] == 0:                      # EV_ITERATION
                exec_id = exec_ids[i]
                tlist = threads.get(exec_id)
                if tlist is None and finite \
                        and num_tus - 1 - self._spec_count <= 0:
                    # Nothing can happen here, nor at any following
                    # iteration start of an untracked execution: the
                    # TU population and the tracked set only change at
                    # visited events.  Jump to the next position where
                    # something can.
                    j = next_non_iteration[i + 1]
                    for tracked in threads:
                        k = next_iteration_after(tracked, i)
                        if k < j:
                            j = k
                    i = j
                    continue
                seq = seqs[i]
                if seq > self._pos:
                    self._now += cycles(self._pos, seq - self._pos)
                    self._pos = seq
                if tlist is not None \
                        and tlist[0].iteration == auxs[i]:
                    self._promote(tlist.pop(0), seq)
                    if not tlist:
                        del threads[exec_id]
                if not finite or num_tus - 1 - self._spec_count > 0:
                    self._spawn(seq, loops[i], exec_id, auxs[i])
            else:
                seq = seqs[i]
                if seq > self._pos:
                    self._now += cycles(self._pos, seq - self._pos)
                    self._pos = seq
                etype = etypes[i]
                if etype == 1:                      # EV_EXEC_START
                    if nesting_limit is not None:
                        self._stack.append((exec_ids[i], loops[i]))
                    if track_let:
                        entry = self._let.insert(loops[i])
                        if entry is not None and entry.payload is None:
                            entry.payload = IterationCountPredictor()
                    if nesting_limit is not None:
                        self._apply_nesting_squash(nesting_limit, seq)
                elif etype == 2:                    # EV_EXEC_END
                    self._end_execution(seq, loops[i], exec_ids[i],
                                        auxs[i], nesting_limit
                                        is not None, track_let)
                elif track_let:                     # EV_SINGLE
                    self._let_update(loops[i], 1)
            i += 1

    # -- event handlers -------------------------------------------------------

    def _on_iteration(self, seq, loop, exec_id, iteration):
        threads = self._threads.get(exec_id)
        if threads and threads[0].iteration == iteration:
            self._promote(threads.pop(0), seq)
            if not threads:
                del self._threads[exec_id]
        # Hot path: skip the spawn attempt outright while every TU is
        # busy (the common case at small TU counts).
        num_tus = self.num_tus
        if num_tus is None or num_tus - 1 - self._spec_count > 0:
            self._spawn(seq, loop, exec_id, iteration)

    def _on_execution_start(self, seq, loop, exec_id):
        self._stack.append((exec_id, loop))
        entry = self._let.insert(loop)
        if entry is not None and entry.payload is None:
            entry.payload = IterationCountPredictor()
        limit = self.policy.nesting_limit
        if limit is not None:
            self._apply_nesting_squash(limit, seq)

    def _on_execution_end(self, seq, loop, exec_id, iterations):
        self._end_execution(seq, loop, exec_id, iterations, True, True)

    def _end_execution(self, seq, loop, exec_id, iterations,
                       track_stack, track_let):
        threads = self._threads.pop(exec_id, None)
        if threads:
            result = self._result
            for thread in threads:
                result.squashed_misspec += 1
                result.resolved += 1
                result.instr_to_verif_total += seq - thread.spawn_seq
                if self.disable_table is not None:
                    self.disable_table.note(thread.loop, correct=False)
            self._spec_count -= len(threads)
            cost = self.timing.squash_cost(len(threads))
            if cost:
                self._now += cost
                self._overhead += cost
        if track_stack:
            for idx in range(len(self._stack) - 1, -1, -1):
                if self._stack[idx][0] == exec_id:
                    del self._stack[idx]
                    break
        if track_let:
            self._let_update(loop, iterations)

    # -- speculation mechanics -----------------------------------------------

    def _promote(self, thread, seq):
        """The speculated iteration is confirmed: its TU becomes the new
        non-speculative thread at wherever it has executed to."""
        self._spec_count -= 1
        elapsed = self._now - thread.spawn_time
        if thread.end_seq is not None:
            run_cap = thread.end_seq - thread.start_seq
        else:
            run_cap = self._index.total_instructions - thread.start_seq
        executed = self.timing.progress(elapsed, thread.start_seq,
                                        run_cap)
        new_pos = thread.start_seq + executed
        if new_pos > self._pos:
            self._pos = new_pos
        result = self._result
        result.promoted += 1
        result.resolved += 1
        result.instr_to_verif_total += seq - thread.spawn_seq
        result.credit_waiting += elapsed
        result.credit_executing += self._cycles(thread.start_seq,
                                                executed)
        if self.disable_table is not None:
            self.disable_table.note(thread.loop, correct=True)
        cost = self.timing.promote_cost()
        if cost:
            self._now += cost
            self._overhead += cost

    def _spawn(self, seq, loop, exec_id, iteration):
        num_tus = self.num_tus
        idle = float("inf") if num_tus is None \
            else num_tus - 1 - self._spec_count
        if idle <= 0:
            return
        if self.disable_table is not None \
                and self.disable_table.blocked(loop):
            return
        rec = self._executions[exec_id]
        total_iterations = rec.iterations \
            if rec.iterations is not None \
            else len(rec.iter_seqs) + 1
        iter_seqs = rec.iter_seqs
        threads = self._threads.get(exec_id)
        last_covered = threads[-1].iteration if threads else iteration
        # Iterations whose start the non-speculative position has already
        # passed (after a long promotion jump) are covered, not spawnable.
        while last_covered < total_iterations \
                and iter_seqs[last_covered - 1] <= self._pos:
            last_covered += 1

        prediction = (None, None) if self._skip_prediction \
            else self._let_prediction(loop)
        count = self.policy.spawn_count_fast(
            idle, iteration, last_covered, prediction,
            total_iterations)
        if count > idle:
            count = idle
        if count <= 0:
            return
        if count != count or count == float("inf"):
            raise ValueError("policy %s produced a non-finite spawn count"
                             % self.policy.name)

        # Forking is charged to the non-speculative thread before the
        # spawned threads start running (spawn_time below sits after the
        # fork cost, so overheads delay the speculated work too).
        cost = self.timing.spawn_cost(int(count))
        if cost:
            self._now += cost
            self._overhead += cost

        result = self._result
        result.speculation_events += 1
        if threads is None:
            threads = self._threads.setdefault(exec_id, [])
        for j in range(last_covered + 1, last_covered + 1 + int(count)):
            if j <= total_iterations:
                start = iter_seqs[j - 2]
                end = iter_seqs[j - 1] if j < total_iterations else None
            else:
                start = None
                end = None
            threads.append(SpecThread(loop, exec_id, j, start, end,
                                      self._now, seq))
            self._spec_count += 1
            result.threads_spawned += 1

    def _apply_nesting_squash(self, limit, seq):
        """STR(i): squash the outermost speculated loop once more than
        *limit* non-speculated loops nest inside it."""
        for idx, (exec_id, _loop) in enumerate(self._stack):
            threads = self._threads.get(exec_id)
            if not threads:
                continue
            nested_unspeculated = sum(
                1 for inner_id, _ in self._stack[idx + 1:]
                if not self._threads.get(inner_id))
            if nested_unspeculated > limit:
                result = self._result
                for thread in threads:
                    result.squashed_policy += 1
                    result.resolved += 1
                    result.instr_to_verif_total += seq - thread.spawn_seq
                self._spec_count -= len(threads)
                del self._threads[exec_id]
                cost = self.timing.squash_cost(len(threads))
                if cost:
                    self._now += cost
                    self._overhead += cost
            break

    # -- helpers ------------------------------------------------------------------

    def _let_prediction(self, loop):
        entry = self._let.lookup(loop)
        if entry is None or entry.payload is None:
            return (None, None)
        return entry.payload.predict()

    def _let_update(self, loop, iterations):
        entry = self._let.insert(loop)
        if entry is None:
            return
        if entry.payload is None:
            entry.payload = IterationCountPredictor()
        entry.payload.update(iterations)


def simulate(index, num_tus=4, policy="str", name="workload",
             let_capacity=None, count_waiting=True, disable_table=None,
             timing=None):
    """One-call convenience wrapper around :class:`SpeculationEngine`."""
    engine = SpeculationEngine(num_tus=num_tus, policy=policy,
                               let_capacity=let_capacity,
                               count_waiting=count_waiting,
                               disable_table=disable_table,
                               timing=timing)
    return engine.run(index, name=name)


def simulate_infinite(index, name="workload", timing=None):
    """Figure 5's idealized study: unlimited TUs, oracle iteration
    counts, speculation at loop-execution detection."""
    engine = SpeculationEngine(num_tus=None, policy=OracleAllPolicy(),
                               timing=timing)
    return engine.run(index, name=name)
