"""Speculation metrics: TPC and the Table 2 statistics."""


class SpeculationResult:
    """Outcome of one speculation simulation.

    TPC is the paper's metric: the average number of active and
    *correctly speculated* threads per cycle.  The non-speculative thread
    is always active; a speculative thread's cycles count only once it is
    verified correct (promoted).  ``tpc`` counts a correct thread's
    waiting-for-confirmation cycles as active (it holds completed future
    work); ``tpc_executing`` is the stricter variant counting only cycles
    spent executing instructions -- the ablation benchmark contrasts the
    two.

    ``timing_name`` records which :mod:`repro.timing` model priced the
    run (``"ideal"`` is the paper's machine) and ``overhead_cycles``
    the cycles it charged for spawns, promotions, and squashes --
    included in ``total_cycles``, zero under the ideal model.
    """

    __slots__ = ("name", "num_tus", "policy_name", "timing_name",
                 "overhead_cycles", "total_cycles",
                 "total_instructions", "speculation_events",
                 "threads_spawned", "promoted", "squashed_misspec",
                 "squashed_policy", "credit_waiting", "credit_executing",
                 "instr_to_verif_total", "resolved", "unresolved_at_end")

    def __init__(self, name, num_tus, policy_name):
        self.name = name
        self.num_tus = num_tus
        self.policy_name = policy_name
        self.timing_name = "ideal"
        self.overhead_cycles = 0
        self.total_cycles = 0
        self.total_instructions = 0
        self.speculation_events = 0
        self.threads_spawned = 0
        self.promoted = 0
        self.squashed_misspec = 0
        self.squashed_policy = 0
        self.credit_waiting = 0
        self.credit_executing = 0
        self.instr_to_verif_total = 0
        self.resolved = 0
        self.unresolved_at_end = 0

    # -- derived metrics ---------------------------------------------------

    @property
    def squashed(self):
        return self.squashed_misspec + self.squashed_policy

    @property
    def tpc(self):
        if not self.total_cycles:
            return 1.0
        return 1.0 + self.credit_waiting / self.total_cycles

    @property
    def tpc_executing(self):
        if not self.total_cycles:
            return 1.0
        return 1.0 + self.credit_executing / self.total_cycles

    @property
    def hit_ratio(self):
        resolved = self.promoted + self.squashed
        if not resolved:
            return 0.0
        return self.promoted / resolved

    @property
    def threads_per_speculation(self):
        if not self.speculation_events:
            return 0.0
        return self.threads_spawned / self.speculation_events

    @property
    def avg_instr_to_verification(self):
        if not self.resolved:
            return 0.0
        return self.instr_to_verif_total / self.resolved

    @property
    def speedup_bound(self):
        """Instructions per cycle of forward progress (= TPC under the
        1-IPC-per-TU model): how much faster than a single context the
        confirmed work advanced."""
        if not self.total_cycles:
            return 1.0
        return self.total_instructions / self.total_cycles

    # -- presentation ------------------------------------------------------

    TABLE2_HEADERS = ("program", "#spec.", "#threads/spec.", "hit ratio (%)",
                      "#instr. to verif", "TPC")

    def as_table2_row(self):
        return (self.name, self.speculation_events,
                round(self.threads_per_speculation, 2),
                round(100.0 * self.hit_ratio, 2),
                round(self.avg_instr_to_verification, 2),
                round(self.tpc, 2))

    def as_dict(self):
        return {
            "name": self.name,
            "num_tus": self.num_tus,
            "policy": self.policy_name,
            "timing": self.timing_name,
            "overhead_cycles": self.overhead_cycles,
            "total_cycles": self.total_cycles,
            "total_instructions": self.total_instructions,
            "speculation_events": self.speculation_events,
            "threads_spawned": self.threads_spawned,
            "promoted": self.promoted,
            "squashed_misspec": self.squashed_misspec,
            "squashed_policy": self.squashed_policy,
            "hit_ratio": self.hit_ratio,
            "threads_per_speculation": self.threads_per_speculation,
            "avg_instr_to_verification": self.avg_instr_to_verification,
            "tpc": self.tpc,
            "tpc_executing": self.tpc_executing,
        }

    # -- persistence -------------------------------------------------------

    def state(self):
        """Every stored field as a JSON-serializable dict -- the exact
        inverse of :meth:`from_state` (all fields are ints or strings;
        the derived metrics above are recomputed on restore)."""
        return {field: getattr(self, field) for field in self.__slots__}

    @classmethod
    def from_state(cls, state):
        """Rebuild a result from :meth:`state` output.

        Raises ``KeyError``/``TypeError`` on malformed input (derived
        caches treat that as a miss).
        """
        result = cls(state["name"], state["num_tus"],
                     state["policy_name"])
        for field in cls.__slots__:
            value = state[field]
            if field not in ("name", "num_tus", "policy_name",
                             "timing_name") and not isinstance(value, int):
                raise TypeError("non-integer counter %r" % field)
            setattr(result, field, value)
        return result

    def __repr__(self):
        return ("SpeculationResult(%s, %s TUs, %s: tpc=%.2f, hit=%.1f%%)"
                % (self.name, self.num_tus, self.policy_name, self.tpc,
                   100 * self.hit_ratio))
