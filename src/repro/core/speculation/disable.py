"""The speculation disable table (paper section 2.3.2).

    "It may be convenient to disable the recognition of some loops by
    introducing a new table containing those potential loops that are
    not suitable for speculation. [...] those loops with a poor
    prediction rate may be good candidates to store in this table."

Per-loop speculation outcomes are tracked; once a loop has produced
enough resolved threads with a poor hit rate it enters an associative
LRU *disable table*, and the engine stops speculating on it.  This
protects both the TUs (no more doomed threads on erratic loops) and the
LET/LIT (reliable loops are not evicted by hopeless ones).
"""

from repro.core.tables import LoopHistoryTable


class LoopOutcomeStats:
    """Running per-loop speculation outcome counts."""

    __slots__ = ("correct", "wrong")

    def __init__(self):
        self.correct = 0
        self.wrong = 0

    @property
    def resolved(self):
        return self.correct + self.wrong

    @property
    def hit_rate(self):
        total = self.resolved
        return self.correct / total if total else 1.0


class SpeculationDisableTable:
    """Blocks thread speculation on demonstrably unpredictable loops."""

    def __init__(self, capacity=16, min_samples=5, hit_threshold=0.5):
        if not 0.0 <= hit_threshold <= 1.0:
            raise ValueError("hit_threshold must be within [0, 1]")
        if min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        self.min_samples = min_samples
        self.hit_threshold = hit_threshold
        self._blocked = LoopHistoryTable(capacity)
        self._stats = {}
        self.blocks_installed = 0
        self.spawns_prevented = 0

    def note(self, loop, correct):
        """Record one resolved speculation outcome for *loop*."""
        stats = self._stats.get(loop)
        if stats is None:
            stats = self._stats[loop] = LoopOutcomeStats()
        if correct:
            stats.correct += 1
        else:
            stats.wrong += 1
        if stats.resolved >= self.min_samples \
                and stats.hit_rate < self.hit_threshold \
                and loop not in self._blocked:
            self._blocked.insert(loop)
            self.blocks_installed += 1

    def blocked(self, loop):
        """True when speculation on *loop* is disabled."""
        if self._blocked.lookup(loop, touch=False) is not None:
            self.spawns_prevented += 1
            return True
        return False

    def stats_for(self, loop):
        return self._stats.get(loop)

    def blocked_loops(self):
        return self._blocked.loops()

    def __len__(self):
        return len(self._blocked)
