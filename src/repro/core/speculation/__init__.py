"""Thread control speculation: policies, event-driven engine, metrics."""

from repro.core.speculation.disable import (
    LoopOutcomeStats,
    SpeculationDisableTable,
)
from repro.core.speculation.engine import (
    SpecThread,
    SpeculationEngine,
    simulate,
    simulate_infinite,
)
from repro.core.speculation.grid import grid_tables, simulate_grid
from repro.core.speculation.metrics import SpeculationResult
from repro.core.speculation.policies import (
    IdlePolicy,
    OracleAllPolicy,
    Policy,
    SpawnContext,
    StrIPolicy,
    StrPolicy,
    make_policy,
)

__all__ = [
    "LoopOutcomeStats",
    "SpeculationDisableTable",
    "SpecThread",
    "SpeculationEngine",
    "simulate",
    "simulate_grid",
    "simulate_infinite",
    "grid_tables",
    "SpeculationResult",
    "IdlePolicy",
    "OracleAllPolicy",
    "Policy",
    "SpawnContext",
    "StrIPolicy",
    "StrPolicy",
    "make_policy",
]
