"""Fused multi-configuration speculation: one prepared walk, N configs.

:func:`simulate_grid` prices N ``(num_tus, policy, timing)``
configurations over one :class:`~repro.core.detector.LoopIndex` and
returns results bit-identical to N independent
:func:`~repro.core.speculation.engine.simulate` calls (the grid
equivalence suite pins this across every policy, timing model, and the
frontier corpus).

Why a grid engine beats N engine runs
-------------------------------------

The per-config walk in :class:`~repro.core.speculation.engine.
SpeculationEngine` spends most of its time on work that is *identical
for every configuration*:

* **The LET prediction stream.**  With the default unbounded loop
  execution table, the table's state evolution depends only on the
  event list -- it updates at execution ends and single iterations,
  never on the policy, TU count, or timing model.  The grid therefore
  walks the event list **once**, records the prediction each iteration
  event would see (:func:`grid_tables`), and every fused configuration
  reads the shared columns instead of maintaining its own table and
  predictors.
* **Irrelevant events.**  With the prediction stream precomputed, a
  fused IDLE/STR configuration is only affected by iteration starts
  and by the execution ends of loops it is actively speculating; the
  per-execution end positions (also in :func:`grid_tables`) let the
  walk leap over everything else.  STR(i) additionally visits
  execution starts/ends for its nesting stack.
* **Timing dispatch.**  The ideal and overhead models price an advance
  as the distance and progress as ``min(elapsed, cap)``; the fused
  walk inlines both, eliminating one bound-method call per event.

When fusion pays vs the per-config fallback
-------------------------------------------

A configuration is **fused** when all of the following hold -- the
conditions under which the shared prediction stream is *provably* the
state every independent engine run would compute:

* finite ``num_tus`` (the infinite-TU oracle study walks differently);
* an IDLE, STR, or STR(i) policy (exactly the policies whose spawn
  decisions read nothing but idle TUs and the LET prediction);
* an ideal or overhead timing model (position-independent rates; the
  width and class-cost models price advances positionally and keep
  their method-call seam).

Everything else -- bounded LETs (LRU evictions depend on lookup
order), disable tables (cross-run mutable state), oracle policies,
record-fed timing models -- drops to the existing per-config engine,
one config at a time.  The split is per *config*, not per call: one
``simulate_grid`` call may fuse 40 cells and fall back for 8, and the
``engine.fused_cells`` / ``engine.fallback_cells`` counters report
exactly that split when an observability collector is active.
"""

from array import array

from repro.core.speculation.metrics import SpeculationResult
from repro.core.speculation.policies import (
    IdlePolicy,
    StrIPolicy,
    StrPolicy,
    make_policy,
)
from repro.obs import collector as obs
from repro.timing import make_timing
from repro.timing.models import IdealTiming, OverheadTiming

__all__ = ["grid_tables", "simulate_grid"]


def grid_tables(index):
    """The config-invariant walk tables of *index*, built once.

    Returns ``(pred_known, pred_count, end_pos)``:

    * ``pred_known[i]``/``pred_count[i]`` -- the LET prediction an
      unbounded-table engine would read at iteration event ``i``
      (``pred_known[i] == 0`` means no prediction, the STR policies'
      IDLE fallback);
    * ``end_pos`` -- per ``exec_id``, the event position of its
      :class:`~repro.core.events.ExecutionEnd`.

    Cached on the index next to its event columns; every fused
    configuration of every grid call over this index shares one copy.
    """
    cols = index.columns()
    cached = getattr(index, "_grid_tables", None)
    if cached is not None and cached[0] is cols:
        return cached[1]
    etypes = cols.etypes
    loops = cols.loops
    exec_ids = cols.exec_ids
    auxs = cols.auxs
    n = len(etypes)
    pred_known = bytearray(n)
    pred_count = array("q", bytes(8 * n))
    end_pos = {}
    # loop -> [last count, stride, confidence]: the inlined form of
    # LoopHistoryTable + IterationCountPredictor for an unbounded
    # table (no evictions, so lookups cannot perturb state and the
    # stream is a pure function of the event list).
    table = {}
    for i in range(n):
        etype = etypes[i]
        if etype == 0:                          # EV_ITERATION
            entry = table.get(loops[i])
            if entry is not None:
                pred_known[i] = 1
                last, stride, confidence = entry
                if stride is not None and confidence >= 2:
                    pred_count[i] = last + stride
                else:
                    pred_count[i] = last
        elif etype == 2:                        # EV_EXEC_END
            end_pos[exec_ids[i]] = i
            value = auxs[i]
            entry = table.get(loops[i])
            if entry is None:
                table[loops[i]] = [value, None, 0]
            else:
                stride = value - entry[0]
                if entry[1] is not None:
                    if stride == entry[1]:
                        if entry[2] < 3:
                            entry[2] += 1
                    elif entry[2] > 0:
                        entry[2] -= 1
                entry[0] = value
                entry[1] = stride
        elif etype == 3:                        # EV_SINGLE
            entry = table.get(loops[i])
            if entry is None:
                table[loops[i]] = [1, None, 0]
            else:
                stride = 1 - entry[0]
                if entry[1] is not None:
                    if stride == entry[1]:
                        if entry[2] < 3:
                            entry[2] += 1
                    elif entry[2] > 0:
                        entry[2] -= 1
                entry[0] = 1
                entry[1] = stride
    tables = (pred_known, pred_count, end_pos)
    index._grid_tables = (cols, tables)
    return tables


def _fusable(num_tus, policy, model):
    ptype = type(policy)
    mtype = type(model)
    return (isinstance(num_tus, int) and num_tus >= 1
            and (ptype is IdlePolicy or ptype is StrPolicy
                 or ptype is StrIPolicy)
            and (mtype is IdealTiming or mtype is OverheadTiming))


def _run_fused(index, tables, num_tus, policy, model, name,
               count_waiting):
    """One fused configuration over the shared tables; bit-identical
    to ``SpeculationEngine(...).run(index, name)``.

    Speculative threads are ``(loop, exec_id, iteration, start_seq,
    end_seq, spawn_time, spawn_seq)`` tuples.  Clock advances at
    skipped events telescope into the next handled event (the built-in
    models price an advance as the distance, so segmenting the walk
    differently cannot change any total).
    """
    cols = index.columns()
    etypes = cols.etypes
    seqs = cols.seqs
    loops = cols.loops
    exec_ids = cols.exec_ids
    auxs = cols.auxs
    next_non_iteration = cols.next_non_iteration
    next_iteration_after = cols.next_iteration_after
    pred_known, pred_count, end_pos = tables
    end_pos_get = end_pos.get
    executions = index.executions
    total_instructions = index.total_instructions

    if type(model) is OverheadTiming:
        spawn_c = model.spawn
        squash_c = model.squash
        promote_c = model.promote
    else:
        spawn_c = squash_c = promote_c = 0

    result = SpeculationResult(name, num_tus, policy.name)
    result.total_instructions = total_instructions
    result.timing_name = model.name

    nesting_limit = policy.nesting_limit
    is_idle = not policy.needs_prediction
    threads = {}
    threads_get = threads.get
    stack = []
    budget = num_tus - 1
    spec_count = 0
    now = 0
    pos = 0
    overhead = 0
    speculation_events = 0
    threads_spawned = 0
    promoted = 0
    squashed_misspec = 0
    squashed_policy = 0
    credit_waiting = 0
    credit_executing = 0
    instr_to_verif = 0
    resolved = 0

    n = len(etypes)
    i = 0
    while i < n:
        etype = etypes[i]
        if etype == 0:                          # EV_ITERATION
            exec_id = exec_ids[i]
            tlist = threads_get(exec_id)
            if tlist is None and spec_count >= budget:
                # Saturated and untracked: nothing can happen until a
                # tracked execution's next iteration start (promotion)
                # or its end (squash) -- for STR(i), also until the
                # next execution boundary moves the nesting stack.
                if nesting_limit is None:
                    j = n
                    for tracked in threads:
                        k = next_iteration_after(tracked, i)
                        if k < j:
                            j = k
                        k = end_pos_get(tracked, n)
                        if i < k < j:
                            j = k
                else:
                    j = next_non_iteration[i + 1]
                    for tracked in threads:
                        k = next_iteration_after(tracked, i)
                        if k < j:
                            j = k
                i = j
                continue
            seq = seqs[i]
            if seq > pos:
                now += seq - pos
                pos = seq
            if tlist is not None and tlist[0][2] == auxs[i]:
                thread = tlist.pop(0)
                if not tlist:
                    del threads[exec_id]
                spec_count -= 1
                elapsed = now - thread[5]
                start_seq = thread[3]
                end_seq = thread[4]
                if end_seq is not None:
                    cap = end_seq - start_seq
                else:
                    cap = total_instructions - start_seq
                executed = elapsed if elapsed < cap else cap
                new_pos = start_seq + executed
                if new_pos > pos:
                    pos = new_pos
                promoted += 1
                resolved += 1
                instr_to_verif += seq - thread[6]
                credit_waiting += elapsed
                credit_executing += executed
                if promote_c:
                    now += promote_c
                    overhead += promote_c
            if spec_count < budget:
                idle = budget - spec_count
                rec = executions[exec_id]
                iter_seqs = rec.iter_seqs
                total = rec.iterations
                if total is None:
                    total = len(iter_seqs) + 1
                tlist = threads_get(exec_id)
                last_covered = tlist[-1][2] if tlist else auxs[i]
                while last_covered < total \
                        and iter_seqs[last_covered - 1] <= pos:
                    last_covered += 1
                if is_idle or not pred_known[i]:
                    count = idle
                else:
                    count = pred_count[i] - last_covered
                    if count > idle:
                        count = idle
                if count > 0:
                    if spawn_c:
                        cost = spawn_c * count
                        now += cost
                        overhead += cost
                    speculation_events += 1
                    if tlist is None:
                        tlist = threads[exec_id] = []
                    loop = loops[i]
                    for j in range(last_covered + 1,
                                   last_covered + 1 + count):
                        if j <= total:
                            start = iter_seqs[j - 2]
                            end = iter_seqs[j - 1] if j < total else None
                        else:
                            start = None
                            end = None
                        tlist.append((loop, exec_id, j, start, end,
                                      now, seq))
                        threads_spawned += 1
                    spec_count += count
        elif etype == 2:                        # EV_EXEC_END
            exec_id = exec_ids[i]
            tlist = threads.pop(exec_id, None)
            if tlist is not None:
                seq = seqs[i]
                if seq > pos:
                    now += seq - pos
                    pos = seq
                for thread in tlist:
                    squashed_misspec += 1
                    resolved += 1
                    instr_to_verif += seq - thread[6]
                spec_count -= len(tlist)
                if squash_c:
                    cost = squash_c * len(tlist)
                    now += cost
                    overhead += cost
            if nesting_limit is not None:
                for idx in range(len(stack) - 1, -1, -1):
                    if stack[idx][0] == exec_id:
                        del stack[idx]
                        break
        elif etype == 1 and nesting_limit is not None:  # EV_EXEC_START
            stack.append((exec_ids[i], loops[i]))
            # STR(i): squash the outermost speculated loop once more
            # than nesting_limit non-speculated loops nest inside it.
            for idx in range(len(stack)):
                tl = threads_get(stack[idx][0])
                if not tl:
                    continue
                nested_unspeculated = 0
                for inner in range(idx + 1, len(stack)):
                    if not threads_get(stack[inner][0]):
                        nested_unspeculated += 1
                if nested_unspeculated > nesting_limit:
                    seq = seqs[i]
                    for thread in tl:
                        squashed_policy += 1
                        resolved += 1
                        instr_to_verif += seq - thread[6]
                    spec_count -= len(tl)
                    del threads[stack[idx][0]]
                    if squash_c:
                        cost = squash_c * len(tl)
                        now += cost
                        overhead += cost
                break
        i += 1

    if total_instructions > pos:
        now += total_instructions - pos
    result.total_cycles = now
    result.overhead_cycles = overhead
    result.speculation_events = speculation_events
    result.threads_spawned = threads_spawned
    result.promoted = promoted
    result.squashed_misspec = squashed_misspec
    result.squashed_policy = squashed_policy
    result.credit_executing = credit_executing
    result.credit_waiting = credit_waiting if count_waiting \
        else credit_executing
    result.instr_to_verif_total = instr_to_verif
    result.resolved = resolved
    result.unresolved_at_end = spec_count
    return result


def simulate_grid(index, configs, name="workload", count_waiting=True):
    """Price every ``(num_tus, policy, timing)`` in *configs* over
    *index*; returns one :class:`SpeculationResult` per config, in
    config order, bit-identical to independent :func:`simulate` calls.

    *configs* is a sequence of ``(num_tus, policy, timing)`` tuples --
    the policy a spec string or :class:`~repro.core.speculation.
    policies.Policy`, the timing a spec string, model instance, or
    ``None`` (ideal).  Configurations the fused walk cannot prove
    equivalent for (see the module docstring's ground rule) drop to
    the per-config engine; ``num_tus=None`` oracle studies are
    delegated the same way.
    """
    from repro.core.speculation.engine import simulate

    configs = list(configs)
    results = [None] * len(configs)
    with obs.span("engine.simulate_grid", workload=name,
                  configs=len(configs)):
        fused = []
        fallback = []
        for slot, (num_tus, policy, timing) in enumerate(configs):
            policy = make_policy(policy)
            model = make_timing(timing)
            if _fusable(num_tus, policy, model) \
                    and getattr(index, "columns", None) is not None:
                fused.append((slot, num_tus, policy, model))
            else:
                fallback.append((slot, num_tus, policy, model))
        if fused:
            tables = grid_tables(index)
            for slot, num_tus, policy, model in fused:
                results[slot] = _run_fused(index, tables, num_tus,
                                           policy, model, name,
                                           count_waiting)
        for slot, num_tus, policy, model in fallback:
            results[slot] = simulate(index, num_tus=num_tus,
                                     policy=policy, name=name,
                                     timing=model,
                                     count_waiting=count_waiting)
    if fused:
        obs.add("engine.fused_cells", len(fused))
    if fallback:
        obs.add("engine.fallback_cells", len(fallback))
    return results
