"""Thread-allocation policies (paper section 3.1.2).

Given a loop iteration starting in the non-speculative thread, a policy
decides how many further consecutive iterations of that loop to
speculate:

* **IDLE** -- as many as there are idle thread units.
* **STR** -- bound the allocation by the predicted number of remaining
  iterations: ``last count + stride`` when the stride is reliable (two-
  bit counter), else the last execution's count, else fall back to IDLE.
* **STR(i)** -- STR, plus: when more than *i* non-speculated loops are
  nested inside a speculated loop, squash the outermost speculated
  loop's threads so idle TUs can serve the inner loops.
* **OracleAll** -- the idealized limit policy of Figure 5: speculate
  every remaining *actual* iteration (requires unlimited TUs; the only
  policy allowed to peek at the oracle).
"""


class SpawnContext:
    """Everything a policy may consult when deciding a spawn count.

    ``prediction`` is the LET's ``(count, mode)`` pair (see
    :class:`~repro.core.predictors.IterationCountPredictor`);
    ``oracle_total`` is the actual iteration count of the execution and
    is reserved for limit studies.
    """

    __slots__ = ("idle_tus", "iteration", "last_covered", "prediction",
                 "oracle_total")

    def __init__(self, idle_tus, iteration, last_covered, prediction,
                 oracle_total):
        self.idle_tus = idle_tus
        self.iteration = iteration
        self.last_covered = last_covered
        self.prediction = prediction
        self.oracle_total = oracle_total


class Policy:
    """Base class; subclasses override :meth:`spawn_count`.

    :meth:`spawn_count_fast` is the engine's hot path: it receives the
    same values as plain arguments so the built-in policies avoid one
    :class:`SpawnContext` allocation per loop iteration.  Custom
    policies only need ``spawn_count``; the default fast path wraps the
    arguments for them.
    """

    #: STR(i) nesting limit; None disables the squash rule.
    nesting_limit = None

    #: Set for the oracle policy; the engine validates TU finiteness.
    requires_finite_tus = True

    #: False when :meth:`spawn_count` never reads ``ctx.prediction``;
    #: lets the engine skip the LET lookup on the hot path (only when
    #: that lookup cannot change table state, i.e. unbounded LET).
    needs_prediction = True

    name = "base"

    def spawn_count(self, ctx):
        raise NotImplementedError

    def spawn_count_fast(self, idle_tus, iteration, last_covered,
                         prediction, oracle_total):
        return self.spawn_count(SpawnContext(
            idle_tus, iteration, last_covered, prediction, oracle_total))

    def __repr__(self):
        return "%s()" % type(self).__name__


class IdlePolicy(Policy):
    """Allocate every idle TU (paper's IDLE)."""

    name = "IDLE"
    needs_prediction = False

    def spawn_count(self, ctx):
        return ctx.idle_tus

    def spawn_count_fast(self, idle_tus, iteration, last_covered,
                         prediction, oracle_total):
        return idle_tus


class StrPolicy(Policy):
    """Stride-predicted allocation (paper's STR)."""

    name = "STR"

    def spawn_count(self, ctx):
        return self.spawn_count_fast(
            ctx.idle_tus, ctx.iteration, ctx.last_covered,
            ctx.prediction, ctx.oracle_total)

    def spawn_count_fast(self, idle_tus, iteration, last_covered,
                         prediction, oracle_total):
        count, mode = prediction
        if mode is None:
            # Neither a count nor a stride is known: behave like IDLE.
            return idle_tus
        remaining = count - last_covered
        if remaining <= 0:
            return 0
        return min(idle_tus, remaining)


class StrIPolicy(StrPolicy):
    """STR(i): STR plus the nested-loop squash rule."""

    def __init__(self, limit):
        if limit < 1:
            raise ValueError("STR(i) requires i >= 1")
        self.nesting_limit = limit
        self.name = "STR(%d)" % limit

    def __repr__(self):
        return "StrIPolicy(%d)" % self.nesting_limit


class OracleAllPolicy(Policy):
    """Speculate all remaining actual iterations (Figure 5 limit study)."""

    name = "ALL"
    requires_finite_tus = False
    needs_prediction = False

    def spawn_count(self, ctx):
        remaining = ctx.oracle_total - ctx.last_covered
        return max(0, remaining)

    def spawn_count_fast(self, idle_tus, iteration, last_covered,
                         prediction, oracle_total):
        remaining = oracle_total - last_covered
        return remaining if remaining > 0 else 0


def make_policy(spec):
    """Build a policy from a short spec string: ``"idle"``, ``"str"``,
    ``"str(2)"``, or ``"all"`` (case-insensitive)."""
    if isinstance(spec, Policy):
        return spec
    text = spec.strip().lower()
    if text == "idle":
        return IdlePolicy()
    if text == "str":
        return StrPolicy()
    if text == "all":
        return OracleAllPolicy()
    if text.startswith("str(") and text.endswith(")"):
        return StrIPolicy(int(text[4:-1]))
    raise ValueError("unknown policy spec %r" % (spec,))
