"""The Current Loop Stack (paper section 2.2).

The CLS tracks every loop currently executing.  Each entry carries the
loop target address ``T`` (its identifier) and ``B``, the highest address
observed so far of a backward branch/jump to ``T``.  The stack is updated
on branches, jumps and returns exactly as the paper specifies:

* a taken backward transfer to an unknown ``T`` *pushes* a new loop
  (its first iteration just finished -- detection is retroactive);
* a taken backward transfer to a stacked ``T`` closes an iteration,
  popping everything above that entry (their executions ended);
* a not-taken closing branch at ``B`` ends both the iteration and the
  execution;
* any taken branch/jump whose source lies inside a stacked loop's body
  but whose target lies outside ends that loop's execution (break/goto);
* a return ends every stacked loop whose body contains it;
* on overflow the deepest (outermost) entry is dropped, penalizing the
  least common loops.

The CLS emits :mod:`repro.core.events` objects; callers (detector,
speculation engine, statistics collectors) consume those rather than
re-deriving loop structure.
"""

from repro.isa.instructions import InstrKind
from repro.core.events import (
    EndReason,
    ExecutionEnd,
    ExecutionStart,
    IterationStart,
    SingleIteration,
)

_K_BRANCH = int(InstrKind.BRANCH)
_K_JUMP = int(InstrKind.JUMP)
_K_IJUMP = int(InstrKind.IJUMP)
_K_CALL = int(InstrKind.CALL)
_K_RET = int(InstrKind.RET)

#: Default capacity; the paper uses 16 entries and shows (Table 1) that
#: SPEC95 nesting never exceeds it.
DEFAULT_CAPACITY = 16


class CLSEntry:
    """One stacked loop: identifier ``t``, body upper bound ``b``, and
    bookkeeping for the current execution."""

    __slots__ = ("t", "b", "exec_id", "iteration", "iter_start_seq",
                 "exec_start_seq", "depth")

    def __init__(self, t, b, exec_id, seq, depth):
        self.t = t
        self.b = b
        self.exec_id = exec_id
        self.iteration = 2          # detection == second iteration starting
        self.iter_start_seq = seq
        self.exec_start_seq = seq
        self.depth = depth

    def contains(self, pc):
        return self.t <= pc <= self.b

    def __repr__(self):
        return "CLSEntry(T=%d, B=%d, exec=%d, iter=%d)" % (
            self.t, self.b, self.exec_id, self.iteration)


class CurrentLoopStack:
    """The CLS plus event generation.

    Feed control-transfer records through :meth:`process`; it returns the
    (possibly empty) list of loop events the transfer caused.  Call
    :meth:`flush` once the trace ends.
    """

    def __init__(self, capacity=DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("CLS capacity must be >= 1")
        self.capacity = capacity
        self.entries = []           # index 0 = outermost, -1 = innermost
        self.next_exec_id = 0
        self.overflow_count = 0

    # -- introspection ---------------------------------------------------

    def __len__(self):
        return len(self.entries)

    @property
    def top(self):
        return self.entries[-1] if self.entries else None

    def depth_of(self, loop):
        """1-based stack depth of *loop*, or None."""
        for index, entry in enumerate(self.entries):
            if entry.t == loop:
                return index + 1
        return None

    def current_loops(self):
        return [entry.t for entry in self.entries]

    # -- main update rules -------------------------------------------------

    def process(self, seq, pc, kind, taken, target):
        """Apply one control transfer; returns the loop events it caused."""
        if kind == _K_CALL:
            # Subroutine activations belong to the enclosing loop
            # execution; calls never update the CLS.
            return ()
        if kind == _K_RET:
            return self._process_return(seq, pc)
        if kind == _K_BRANCH and not taken:
            return self._process_not_taken(seq, pc, target)
        if kind in (_K_BRANCH, _K_JUMP, _K_IJUMP) and taken \
                and target is not None:
            return self._process_taken(seq, pc, target)
        return ()

    def process_batch(self, batch, events=None):
        """Apply one :class:`~repro.trace.batch.RecordBatch` of control
        transfers; returns the (possibly shared) list the batch's loop
        events were appended to, in stream order.

        Behaviourally identical to calling :meth:`process` per record
        (pinned by tests): one fused scalar loop reads the columns
        directly and skips the common no-event cases -- calls, forward
        or missing targets with nothing stacked -- without touching
        the per-rule methods.  The CLS is deliberately *not* kernel-
        driven on any backend: its stack state makes per-record
        verdicts sequential, and a vectorized candidate walk measured
        slower than this loop (see the note in
        :mod:`repro.trace.kernels`).  A ``target`` of ``-1`` encodes
        ``None``.
        """
        if events is None:
            events = []
        extend = events.extend
        k_branch = _K_BRANCH
        k_jump = _K_JUMP
        k_ijump = _K_IJUMP
        k_ret = _K_RET
        for seq, pc, kind, taken, target in zip(
                batch.seqs, batch.pcs, batch.kinds, batch.takens,
                batch.targets):
            if kind == k_branch:
                if taken:
                    if target < 0:
                        continue
                    if target > pc and not self.entries:
                        continue
                    evs = self._process_taken(seq, pc, target)
                else:
                    if target < 0 or target > pc:
                        continue
                    evs = self._process_not_taken(seq, pc, target)
            elif kind == k_jump or kind == k_ijump:
                if not taken or target < 0:
                    continue
                if target > pc and not self.entries:
                    continue
                evs = self._process_taken(seq, pc, target)
            elif kind == k_ret:
                if not self.entries:
                    continue
                evs = self._process_return(seq, pc)
            else:
                continue        # calls, halt, and unknown kinds
            if evs:
                extend(evs)
        return events

    def flush(self, seq):
        """End of trace: terminate every stacked execution."""
        events = []
        while self.entries:
            entry = self.entries.pop()
            events.append(self._end_event(seq, entry, EndReason.FLUSH))
        return events

    # -- rule implementations ---------------------------------------------

    def _process_taken(self, seq, pc, target):
        entries = self.entries
        if target <= pc:
            # Backward transfer: the loop-closing case.
            index = self._find(target)
            if index is not None:
                events = []
                # Everything nested above the iterating loop terminates.
                while len(entries) - 1 > index:
                    inner = entries.pop()
                    events.append(self._end_event(seq, inner,
                                                  EndReason.OUTER))
                entry = entries[index]
                if pc > entry.b:
                    entry.b = pc
                entry.iteration += 1
                entry.iter_start_seq = seq
                events.append(IterationStart(seq, entry.t, entry.exec_id,
                                             entry.iteration))
                # The exit rule still applies to the loops that remain
                # stacked below: an overlapped loop whose body contains
                # this branch but not its target terminates (definition
                # rule ii; see Figure 2d's interleaved executions).
                events.extend(self._apply_exit_rule(seq, pc, target,
                                                    skip=entry))
                return events
            # New loop: first apply the exit rule (this transfer may
            # leave other loops' bodies), then push.
            events = self._apply_exit_rule(seq, pc, target)
            events.extend(self._push(seq, target, pc))
            return events
        # Forward taken transfer: only the exit rule applies.
        return self._apply_exit_rule(seq, pc, target)

    def _process_not_taken(self, seq, pc, target):
        if target is None or target > pc:
            return ()
        index = self._find(target)
        if index is None:
            # A complete one-iteration execution of a loop that never
            # reached the CLS.
            exec_id = self.next_exec_id
            self.next_exec_id += 1
            return (SingleIteration(seq, target, exec_id,
                                    len(self.entries) + 1),)
        entry = self.entries[index]
        if entry.b > pc:
            # A backward branch inside the body but not at B; the loop
            # goes on.
            return ()
        events = []
        while len(self.entries) - 1 > index:
            inner = self.entries.pop()
            events.append(self._end_event(seq, inner, EndReason.OUTER))
        self.entries.pop()
        events.append(self._end_event(seq, entry, EndReason.NOT_TAKEN))
        return events

    def _process_return(self, seq, pc):
        kept = []
        events = []
        # Selective removal, innermost first in the emitted events.
        removed = []
        for entry in self.entries:
            if entry.contains(pc):
                removed.append(entry)
            else:
                kept.append(entry)
        if not removed:
            return ()
        self.entries = kept
        for entry in reversed(removed):
            events.append(self._end_event(seq, entry, EndReason.RETURN))
        return events

    def _apply_exit_rule(self, seq, pc, target, skip=None):
        """Terminate loops whose body contains *pc* but not *target*."""
        kept = []
        removed = []
        for entry in self.entries:
            if entry is not skip and entry.contains(pc) \
                    and not entry.contains(target):
                removed.append(entry)
            else:
                kept.append(entry)
        if not removed:
            return []
        self.entries = kept
        return [self._end_event(seq, entry, EndReason.EXIT)
                for entry in reversed(removed)]

    def _push(self, seq, target, pc):
        events = []
        if len(self.entries) >= self.capacity:
            deepest = self.entries.pop(0)
            self.overflow_count += 1
            events.append(self._end_event(seq, deepest, EndReason.OVERFLOW))
        exec_id = self.next_exec_id
        self.next_exec_id += 1
        depth = len(self.entries) + 1
        entry = CLSEntry(target, pc, exec_id, seq, depth)
        self.entries.append(entry)
        events.append(ExecutionStart(seq, target, exec_id, depth))
        events.append(IterationStart(seq, target, exec_id, 2))
        return events

    # -- helpers -----------------------------------------------------------

    def _find(self, target):
        """Innermost entry index with identifier *target*, or None."""
        for index in range(len(self.entries) - 1, -1, -1):
            if self.entries[index].t == target:
                return index
        return None

    @staticmethod
    def _end_event(seq, entry, reason):
        return ExecutionEnd(seq, entry.t, entry.exec_id, entry.iteration,
                            reason)
