"""Loop events emitted by the dynamic loop detector.

Event sequence numbers refer to the dynamic instruction index of the
control transfer that *caused* the event.  By the paper's definitions:

* an execution is *detected* when the first backward branch/jump to its
  target commits -- i.e. when the second iteration begins -- so
  :class:`ExecutionStart` and the first :class:`IterationStart` (with
  ``iteration == 2``) share one sequence number;
* every later :class:`IterationStart` sits on the taken loop-closing
  branch ending the previous iteration;
* :class:`ExecutionEnd` sits on the terminating instruction (not-taken
  closing branch, exiting branch/jump, return, ...).
"""

import enum


class EndReason(enum.Enum):
    """Why a loop execution terminated (or was abandoned)."""

    NOT_TAKEN = "not-taken-closing-branch"   # paper rule (i)
    EXIT = "exit-branch"                     # paper rule (ii)
    RETURN = "return"                        # paper rule (iii)
    OUTER = "outer-loop-event"               # popped when an outer loop
    #                                          iterated or terminated
    OVERFLOW = "cls-overflow"                # deepest entry dropped
    FLUSH = "end-of-trace"                   # trace exhausted


class LoopEvent:
    """Base class; ``loop`` is the target address T identifying the loop."""

    __slots__ = ("seq", "loop", "exec_id")

    def __init__(self, seq, loop, exec_id):
        self.seq = seq
        self.loop = loop
        self.exec_id = exec_id

    def _fields(self):
        return "seq=%d loop=%d exec=%d" % (self.seq, self.loop,
                                           self.exec_id)

    def __repr__(self):
        return "%s(%s)" % (type(self).__name__, self._fields())


class ExecutionStart(LoopEvent):
    """A new loop execution was detected (second iteration beginning).

    ``depth`` is the 1-based CLS nesting depth of the new entry.
    """

    __slots__ = ("depth",)

    def __init__(self, seq, loop, exec_id, depth):
        super().__init__(seq, loop, exec_id)
        self.depth = depth

    def _fields(self):
        return super()._fields() + " depth=%d" % self.depth


class IterationStart(LoopEvent):
    """Iteration ``iteration`` (2-based for the first detected one) of an
    execution begins; the previous iteration just ended."""

    __slots__ = ("iteration",)

    def __init__(self, seq, loop, exec_id, iteration):
        super().__init__(seq, loop, exec_id)
        self.iteration = iteration

    def _fields(self):
        return super()._fields() + " iter=%d" % self.iteration


class ExecutionEnd(LoopEvent):
    """A loop execution terminated after ``iterations`` iterations."""

    __slots__ = ("iterations", "reason")

    def __init__(self, seq, loop, exec_id, iterations, reason):
        super().__init__(seq, loop, exec_id)
        self.iterations = iterations
        self.reason = reason

    def _fields(self):
        return super()._fields() + " iters=%d reason=%s" % (
            self.iterations, self.reason.value)


class SingleIteration(LoopEvent):
    """A not-taken backward branch to a loop not in the CLS: a complete
    one-iteration execution (detected only as it ends).  ``depth`` is the
    nesting depth it would have had (current CLS depth + 1)."""

    __slots__ = ("depth",)

    def __init__(self, seq, loop, exec_id, depth):
        super().__init__(seq, loop, exec_id)
        self.depth = depth

    def _fields(self):
        return super()._fields() + " depth=%d" % self.depth
