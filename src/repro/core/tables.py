"""Loop history tables: the LET and the LIT (paper section 2.3).

Both are associative tables indexed by the loop identifier (target
address T) with LRU replacement:

* the **LET** (Loop Execution Table) characterizes whole executions; its
  recency is the most recent *execution* start, and its hit criterion --
  following section 2.3.1 -- is that two complete executions have been
  observed since the entry was inserted;
* the **LIT** (Loop Iteration Table) characterizes iterations; recency is
  the most recent *iteration* start, and its hit criterion is two
  complete iterations since insertion.

Entries are inserted when a loop execution starts.  An alternative
*nesting-aware* replacement (section 2.3.2) inhibits an insertion that
would evict a loop nested inside the inserting loop; the paper found it
indistinguishable from LRU, and the ablation benchmark verifies that.
"""

from collections import OrderedDict

from repro.core.events import (
    ExecutionEnd,
    ExecutionStart,
    IterationStart,
    SingleIteration,
)

POLICY_LRU = "lru"
POLICY_NESTING_AWARE = "nesting-aware"
_POLICIES = (POLICY_LRU, POLICY_NESTING_AWARE)


class TableEntry:
    """One table entry: identity, the completions-since-insert counter the
    hit criterion needs, and an arbitrary payload (predictors)."""

    __slots__ = ("loop", "completed", "payload")

    def __init__(self, loop):
        self.loop = loop
        self.completed = 0
        self.payload = None

    def __repr__(self):
        return "TableEntry(loop=%d, completed=%d)" % (self.loop,
                                                      self.completed)


class LoopHistoryTable:
    """An associative loop table with LRU or nesting-aware replacement.

    ``capacity=None`` means unbounded (used for limit studies and by the
    speculation engine's default configuration).
    """

    def __init__(self, capacity=None, policy=POLICY_LRU):
        if capacity is not None and capacity < 1:
            raise ValueError("table capacity must be >= 1 or None")
        if policy not in _POLICIES:
            raise ValueError("unknown replacement policy %r" % policy)
        self.capacity = capacity
        self.policy = policy
        self._entries = OrderedDict()   # loop -> TableEntry, LRU order
        self.evictions = 0
        self.inhibited_insertions = 0

    def __len__(self):
        return len(self._entries)

    def __contains__(self, loop):
        return loop in self._entries

    def lookup(self, loop, touch=True):
        """Return the entry for *loop* (or None), updating recency."""
        entry = self._entries.get(loop)
        if entry is not None and touch:
            self._entries.move_to_end(loop)
        return entry

    def insert(self, loop, nested_in_candidate=None):
        """Insert *loop* if absent; returns its entry (or ``None`` when
        the nesting-aware policy inhibits the insertion).

        *nested_in_candidate* is the set of loops historically observed
        nested inside *loop*; only the nesting-aware policy consults it.
        """
        entry = self._entries.get(loop)
        if entry is not None:
            self._entries.move_to_end(loop)
            return entry
        if self.capacity is not None and len(self._entries) >= self.capacity:
            victim = next(iter(self._entries))
            if self.policy == POLICY_NESTING_AWARE \
                    and nested_in_candidate \
                    and victim in nested_in_candidate:
                self.inhibited_insertions += 1
                return None
            self._entries.pop(victim)
            self.evictions += 1
        entry = TableEntry(loop)
        self._entries[loop] = entry
        return entry

    def victim(self):
        """The entry that would be evicted next (LRU head)."""
        if not self._entries:
            return None
        return self._entries[next(iter(self._entries))]

    def loops(self):
        return list(self._entries)


class NestingTracker:
    """Reconstructs, from detector events, which loops have historically
    been observed nested inside each loop (for the nesting-aware policy).
    """

    def __init__(self):
        self._active = []          # (exec_id, loop), outermost first
        self.nested_in = {}        # loop -> set of inner loop ids

    def on_event(self, event):
        if type(event) is ExecutionStart:
            for _, outer_loop in self._active:
                self.nested_in.setdefault(outer_loop, set()).add(event.loop)
            self._active.append((event.exec_id, event.loop))
        elif type(event) is ExecutionEnd:
            for index in range(len(self._active) - 1, -1, -1):
                if self._active[index][0] == event.exec_id:
                    del self._active[index]
                    break

    def nested_inside(self, loop):
        return self.nested_in.get(loop, ())


class TableHitRatioSimulator:
    """Replays detector events through a LET and a LIT, measuring the
    paper's hit ratios (Figure 4).

    LET hit: at an execution start, the loop is present with >= 2
    executions completed since insertion.  LIT hit: at an iteration
    start, the loop is present with >= 2 iterations completed since
    insertion.  First iterations are never tested (they are undetected
    until they finish).  Fully incremental: usable as a detector
    listener, fed one event at a time (:meth:`feed`), replayed over a
    stored event list via :meth:`replay`, or -- the batch pipeline's
    way -- replayed once over a finished loop index via
    :meth:`ensure_replayed`.
    """

    def __init__(self, let_entries, lit_entries, policy=POLICY_LRU):
        self.let = LoopHistoryTable(let_entries, policy)
        self.lit = LoopHistoryTable(lit_entries, policy)
        self.policy = policy
        self._nesting = NestingTracker() if policy == POLICY_NESTING_AWARE \
            else None
        self.let_hits = 0
        self.let_accesses = 0
        self.lit_hits = 0
        self.lit_accesses = 0
        self._replayed = False

    # -- event plumbing -----------------------------------------------------

    def replay(self, events):
        on_event = self.on_event
        for event in events:
            on_event(event)
        return self

    def ensure_replayed(self, index):
        """Replay *index* exactly once, however many passes ask.

        Simulators are shared across analysis passes (``ctx.shared``);
        with the replay deferred to ``finish`` there is no single
        "owner" any more -- every consumer calls this before reading
        the counters, and only the first call pays for the walk.
        """
        if self._replayed:
            return self
        self._replayed = True
        columns = getattr(index, "columns", None)
        if columns is not None:
            return self.replay_columns(columns())
        return self.replay(index.events)

    def replay_columns(self, cols):
        """:meth:`replay` over a
        :class:`~repro.core.detector.EventColumns` -- identical counter
        and table state, with the per-event dispatch and table helpers
        inlined into one loop over the type-code column."""
        from repro.core.detector import (
            EV_EXEC_END,
            EV_EXEC_START,
            EV_ITERATION,
            EV_SINGLE,
        )

        etypes = cols.etypes
        loops = cols.loops
        exec_ids = cols.exec_ids
        auxs = cols.auxs
        nesting = self._nesting
        let = self.let
        lit = self.lit
        let_entries = let._entries
        lit_entries = lit._entries
        let_hits = self.let_hits
        let_accesses = self.let_accesses
        lit_hits = self.lit_hits
        lit_accesses = self.lit_accesses
        for i in range(len(etypes)):
            etype = etypes[i]
            loop = loops[i]
            if etype == EV_ITERATION:
                if auxs[i] > 2:
                    entry = lit_entries.get(loop)
                    if entry is not None:
                        entry.completed += 1
                lit_accesses += 1
                entry = lit_entries.get(loop)
                if entry is not None:
                    lit_entries.move_to_end(loop)
                    if entry.completed >= 2:
                        lit_hits += 1
            elif etype == EV_EXEC_START:
                if nesting is not None:
                    nested_in = nesting.nested_in
                    for _, outer in nesting._active:
                        nested_in.setdefault(outer, set()).add(loop)
                    nesting._active.append((exec_ids[i], loop))
                    nested = nested_in.get(loop, ())
                else:
                    nested = None
                let_accesses += 1
                entry = let_entries.get(loop)
                if entry is not None:
                    let_entries.move_to_end(loop)
                    if entry.completed >= 2:
                        let_hits += 1
                let.insert(loop, nested)
                lit.insert(loop, nested)
            elif etype == EV_EXEC_END:
                if nesting is not None:
                    active = nesting._active
                    exec_id = exec_ids[i]
                    for k in range(len(active) - 1, -1, -1):
                        if active[k][0] == exec_id:
                            del active[k]
                            break
                entry = lit_entries.get(loop)
                if entry is not None:
                    entry.completed += 1
                entry = let_entries.get(loop)
                if entry is not None:
                    entry.completed += 1
            else:                   # EV_SINGLE
                nested = nesting.nested_in.get(loop, ()) \
                    if nesting is not None else None
                let_accesses += 1
                entry = let_entries.get(loop)
                if entry is not None:
                    let_entries.move_to_end(loop)
                    if entry.completed >= 2:
                        let_hits += 1
                let.insert(loop, nested)
                lit.insert(loop, nested)
                entry = lit_entries.get(loop)
                if entry is not None:
                    entry.completed += 1
                entry = let_entries.get(loop)
                if entry is not None:
                    entry.completed += 1
        self.let_hits = let_hits
        self.let_accesses = let_accesses
        self.lit_hits = lit_hits
        self.lit_accesses = lit_accesses
        return self

    def on_event(self, event):
        if self._nesting is not None:
            self._nesting.on_event(event)
        etype = type(event)
        if etype is IterationStart:
            if event.iteration > 2:
                # The iteration that just finished completes now.
                self._complete_iteration(event.loop)
            self._access_lit(event.loop)
        elif etype is ExecutionStart:
            # The paired IterationStart(iteration=2) event that follows
            # performs the LIT access against the freshly ensured entry.
            self._access_let(event.loop)
            self._insert_both(event.loop)
        elif etype is ExecutionEnd:
            self._complete_iteration(event.loop)
            self._complete_execution(event.loop)
        elif etype is SingleIteration:
            self._access_let(event.loop)
            self._insert_both(event.loop)
            self._complete_iteration(event.loop)
            self._complete_execution(event.loop)

    #: Streaming-analysis alias: one loop event at a time.
    feed = on_event

    # -- accesses ------------------------------------------------------------

    def _access_let(self, loop):
        self.let_accesses += 1
        entry = self.let.lookup(loop)
        if entry is not None and entry.completed >= 2:
            self.let_hits += 1

    def _access_lit(self, loop):
        self.lit_accesses += 1
        entry = self.lit.lookup(loop)
        if entry is not None and entry.completed >= 2:
            self.lit_hits += 1

    def _insert_both(self, loop):
        nested = self._nesting.nested_inside(loop) if self._nesting else None
        self.let.insert(loop, nested)
        self.lit.insert(loop, nested)

    def _complete_iteration(self, loop):
        entry = self.lit.lookup(loop, touch=False)
        if entry is not None:
            entry.completed += 1

    def _complete_execution(self, loop):
        entry = self.let.lookup(loop, touch=False)
        if entry is not None:
            entry.completed += 1

    # -- results ----------------------------------------------------------------

    @property
    def let_hit_ratio(self):
        if not self.let_accesses:
            return 0.0
        return self.let_hits / self.let_accesses

    @property
    def lit_hit_ratio(self):
        if not self.lit_accesses:
            return 0.0
        return self.lit_hits / self.lit_accesses
