"""The data-speculation study (paper section 4, Figure 8).

Pipeline: replay a full trace through the loop detector while tracking,
for every in-flight loop iteration, its control-flow path and live-in
registers / memory locations.  Then, per loop:

* find the most frequent path;
* walk the loop's iterations chronologically, predicting each live-in
  as ``last value + stride of the last two iterations`` (unbounded
  LIT/LET capacity, as the paper assumes for these figures);
* score predictions only on iterations following the most frequent path
  (the paper's methodology), while updating history on every iteration.
"""

from repro.core.cls import CurrentLoopStack
from repro.core.detector import LoopDetector
from repro.core.dataspec.livein import IterationObservation, \
    IterationTracker
from repro.core.dataspec.paths import (
    HASH_MULTIPLIER,
    HASH_SEED,
    _HASH_MASK,
    PathProfile,
)
from repro.core.events import ExecutionEnd, IterationStart
from repro.core.predictors import LastPlusStride


class DataSpecStats:
    """Figure 8 percentages plus the raw counters behind them."""

    FIGURE8_HEADERS = ("program", "same path", "lr pred", "lm pred",
                       "all lr", "all lm", "all data")

    def __init__(self, name="workload"):
        self.name = name
        self.total_iterations = 0
        self.mfp_iterations = 0
        self.evaluated_iterations = 0
        self.lr_total = 0
        self.lr_correct = 0
        self.lm_total = 0
        self.lm_correct = 0
        self.lm_addr_total = 0
        self.lm_addr_correct = 0
        self.all_lr_count = 0
        self.all_lm_count = 0
        self.all_data_count = 0

    # -- ratios ------------------------------------------------------------

    @staticmethod
    def _ratio(num, den):
        return num / den if den else 0.0

    @property
    def same_path(self):
        return self._ratio(self.mfp_iterations, self.total_iterations)

    @property
    def lr_pred(self):
        return self._ratio(self.lr_correct, self.lr_total)

    @property
    def lm_pred(self):
        return self._ratio(self.lm_correct, self.lm_total)

    @property
    def lm_addr_pred(self):
        """Extension metric: live-in memory *address* predictability
        (the paper speculates addresses the same way; not in Figure 8)."""
        return self._ratio(self.lm_addr_correct, self.lm_addr_total)

    @property
    def all_lr(self):
        return self._ratio(self.all_lr_count, self.evaluated_iterations)

    @property
    def all_lm(self):
        return self._ratio(self.all_lm_count, self.evaluated_iterations)

    @property
    def all_data(self):
        return self._ratio(self.all_data_count, self.evaluated_iterations)

    #: The raw counters behind every ratio, in declaration order.
    COUNTER_FIELDS = ("total_iterations", "mfp_iterations",
                      "evaluated_iterations", "lr_total", "lr_correct",
                      "lm_total", "lm_correct", "lm_addr_total",
                      "lm_addr_correct", "all_lr_count", "all_lm_count",
                      "all_data_count")

    def merge(self, other):
        """Accumulate another workload's raw counters (suite averages)."""
        for field in self.COUNTER_FIELDS:
            setattr(self, field, getattr(self, field)
                    + getattr(other, field))
        return self

    # -- persistence -------------------------------------------------------

    def state(self):
        """All raw counters plus the name, JSON-serializable -- the
        exact inverse of :meth:`from_state` (every ratio above derives
        from these)."""
        state = {"name": self.name}
        for field in self.COUNTER_FIELDS:
            state[field] = getattr(self, field)
        return state

    @classmethod
    def from_state(cls, state):
        """Rebuild from :meth:`state` output; raises ``KeyError`` /
        ``TypeError`` on malformed input (derived caches treat that as
        a miss)."""
        stats = cls(state["name"])
        for field in cls.COUNTER_FIELDS:
            value = state[field]
            if not isinstance(value, int):
                raise TypeError("non-integer counter %r" % field)
            setattr(stats, field, value)
        return stats

    def as_row(self):
        pct = lambda v: round(100.0 * v, 2)  # noqa: E731
        return (self.name, pct(self.same_path), pct(self.lr_pred),
                pct(self.lm_pred), pct(self.all_lr), pct(self.all_lm),
                pct(self.all_data))

    def __repr__(self):
        return ("DataSpecStats(%s: same_path=%.1f%%, lr=%.1f%%, "
                "lm=%.1f%%, all_data=%.1f%%)"
                % (self.name, 100 * self.same_path, 100 * self.lr_pred,
                   100 * self.lm_pred, 100 * self.all_data))


class _BatchTracker:
    """One in-flight iteration's state for the columnar collect loop.

    Unlike :class:`~repro.core.dataspec.livein.IterationTracker` it
    keeps no written-register/written-address sets: the batched
    pass tracks the *global* last-write sequence per register and
    address instead, and an operand is live-in exactly when its last
    write is not after the iteration's start (``lw <= start``).  The
    path signature is folded inline.
    """

    __slots__ = ("loop", "exec_id", "iteration", "start", "sigval",
                 "siglen", "live_regs", "live_mem")

    def __init__(self, loop, exec_id, iteration, start):
        self.loop = loop
        self.exec_id = exec_id
        self.iteration = iteration
        self.start = start
        self.sigval = HASH_SEED         # PathSignature's parameters
        self.siglen = 0
        self.live_regs = {}
        self.live_mem = {}


class DataSpeculationAnalyzer:
    """Runs the section-4 study over a full trace.

    Two equivalent front ends: :meth:`analyze` consumes a materialized
    :class:`~repro.trace.stream.FullTrace` (the reference
    implementation), :meth:`analyze_batches` streams
    :class:`~repro.trace.batch.FullBatch` columns from a
    :class:`~repro.cpu.tracer.ChunkedFullTracer` without ever building
    a record object -- the pipeline's path.  Equivalence is pinned by
    tests.
    """

    def __init__(self, cls_capacity=16):
        self.cls_capacity = cls_capacity

    def analyze(self, full_trace, name="workload"):
        observations_by_loop, profile = self._collect(full_trace)
        return self._evaluate(observations_by_loop, profile, name)

    def analyze_batches(self, batches, name="workload"):
        """Run the study over an iterable of
        :class:`~repro.trace.batch.FullBatch` (must cover every
        executed instruction contiguously from sequence 0)."""
        observations_by_loop, profile = self._collect_batches(batches)
        return self._evaluate(observations_by_loop, profile, name)

    # -- pass 1: per-iteration observation ----------------------------------

    def _collect(self, full_trace):
        detector = LoopDetector(cls_capacity=self.cls_capacity)
        trackers = {}                 # exec_id -> IterationTracker
        observations = {}             # loop -> [IterationObservation]
        profile = PathProfile()

        def finalize(tracker):
            obs = tracker.finalize()
            profile.record(obs.loop, obs.path)
            observations.setdefault(obs.loop, []).append(obs)

        for record in full_trace.records:
            # The instruction belongs to the iterations in flight *before*
            # any loop event it triggers (a closing branch is part of the
            # iteration it ends).
            if trackers:
                for tracker in trackers.values():
                    tracker.observe(record)
            if record.kind:
                events = detector.feed(record)
                for event in events:
                    etype = type(event)
                    if etype is IterationStart:
                        old = trackers.get(event.exec_id)
                        if old is not None:
                            finalize(old)
                        trackers[event.exec_id] = IterationTracker(
                            event.loop, event.exec_id, event.iteration)
                    elif etype is ExecutionEnd:
                        old = trackers.pop(event.exec_id, None)
                        if old is not None:
                            finalize(old)
        for event in detector.finish(full_trace.total_instructions):
            if type(event) is ExecutionEnd:
                old = trackers.pop(event.exec_id, None)
                if old is not None:
                    finalize(old)
        return observations, profile

    def _collect_batches(self, batches):
        """Columnar twin of :meth:`_collect`.

        Per instruction the loop touches only the populated effect
        slots; register/address write *sets* per iteration are replaced
        by two global last-write maps, so stores and register writes
        cost one dict assignment regardless of how many iterations are
        in flight.  Event handling, finalization order and the
        resulting observations are identical to the per-record pass.
        """
        cls = CurrentLoopStack(capacity=self.cls_capacity)
        process = cls.process
        trackers = {}                 # exec_id -> _BatchTracker
        live = ()                     # tuple view of trackers.values()
        observations = {}             # loop -> [IterationObservation]
        profile = PathProfile()
        record_path = profile.record
        last_reg_write = {}           # reg -> seq of latest write
        last_mem_write = {}           # addr -> seq of latest store
        rw_get = last_reg_write.get
        mw_get = last_mem_write.get
        hash_mask = _HASH_MASK
        hash_mult = HASH_MULTIPLIER
        seq = 0

        def finalize(t):
            digest = (t.sigval, t.siglen)
            record_path(t.loop, digest)
            obs = IterationObservation(t.loop, t.exec_id, t.iteration,
                                       digest, t.live_regs, t.live_mem)
            observations.setdefault(t.loop, []).append(obs)

        for batch in batches:
            for pc, kind, taken, target, r1, v1, r2, v2, w, ma, mv, wa \
                    in zip(batch.pcs, batch.kinds, batch.takens,
                           batch.targets, batch.rr1, batch.rv1,
                           batch.rr2, batch.rv2, batch.wr, batch.mra,
                           batch.mrv, batch.mwa):
                # The instruction belongs to the iterations in flight
                # *before* any loop event it triggers (a closing branch
                # is part of the iteration it ends).
                if live:
                    if r1 >= 0:
                        lw = rw_get(r1, -1)
                        for t in live:
                            if lw <= t.start and r1 not in t.live_regs:
                                t.live_regs[r1] = v1
                    if r2 >= 0:
                        lw = rw_get(r2, -1)
                        for t in live:
                            if lw <= t.start and r2 not in t.live_regs:
                                t.live_regs[r2] = v2
                    if ma is not None:
                        lw = mw_get(ma, -1)
                        for t in live:
                            if lw <= t.start and pc not in t.live_mem:
                                t.live_mem[pc] = (ma, mv)
                if w >= 0:
                    last_reg_write[w] = seq
                if wa is not None:
                    last_mem_write[wa] = seq
                if kind:
                    if live:
                        token = pc * 2 + taken
                        for t in live:
                            t.sigval = ((t.sigval * hash_mult) ^ token) \
                                & hash_mask
                            t.siglen += 1
                    events = process(seq, pc, kind, taken,
                                     None if target < 0 else target)
                    if events:
                        for event in events:
                            etype = type(event)
                            if etype is IterationStart:
                                old = trackers.get(event.exec_id)
                                if old is not None:
                                    finalize(old)
                                trackers[event.exec_id] = _BatchTracker(
                                    event.loop, event.exec_id,
                                    event.iteration, seq)
                            elif etype is ExecutionEnd:
                                old = trackers.pop(event.exec_id, None)
                                if old is not None:
                                    finalize(old)
                        live = tuple(trackers.values())
                seq += 1
        for event in cls.flush(seq):
            if type(event) is ExecutionEnd:
                old = trackers.pop(event.exec_id, None)
                if old is not None:
                    finalize(old)
        return observations, profile

    # -- pass 2: predictability scoring ---------------------------------------

    def _evaluate(self, observations_by_loop, profile, name):
        stats = DataSpecStats(name)
        stats.total_iterations = profile.total_iterations()
        stats.mfp_iterations = profile.total_most_frequent()

        for loop, observations in observations_by_loop.items():
            mfp = profile.most_frequent(loop)
            reg_hist = {}            # reg -> LastPlusStride
            mem_val_hist = {}        # load pc -> LastPlusStride
            mem_addr_hist = {}       # load pc -> LastPlusStride
            for obs in observations:
                if obs.path == mfp:
                    self._score(stats, obs, reg_hist, mem_val_hist,
                                mem_addr_hist)
                for reg, value in obs.live_regs.items():
                    hist = reg_hist.get(reg)
                    if hist is None:
                        hist = reg_hist[reg] = LastPlusStride()
                    hist.update(value)
                for pc, (addr, value) in obs.live_mem.items():
                    vhist = mem_val_hist.get(pc)
                    if vhist is None:
                        vhist = mem_val_hist[pc] = LastPlusStride()
                        mem_addr_hist[pc] = LastPlusStride()
                    vhist.update(value)
                    mem_addr_hist[pc].update(addr)
        return stats

    @staticmethod
    def _score(stats, obs, reg_hist, mem_val_hist, mem_addr_hist):
        stats.evaluated_iterations += 1
        regs_all = True
        for reg, value in obs.live_regs.items():
            stats.lr_total += 1
            hist = reg_hist.get(reg)
            if hist is not None and hist.ready \
                    and hist.predict() == value:
                stats.lr_correct += 1
            else:
                regs_all = False
        mem_all = True
        for pc, (addr, value) in obs.live_mem.items():
            stats.lm_total += 1
            stats.lm_addr_total += 1
            vhist = mem_val_hist.get(pc)
            if vhist is not None and vhist.ready \
                    and vhist.predict() == value:
                stats.lm_correct += 1
            else:
                mem_all = False
            ahist = mem_addr_hist.get(pc)
            if ahist is not None and ahist.ready \
                    and ahist.predict() == addr:
                stats.lm_addr_correct += 1
        if regs_all:
            stats.all_lr_count += 1
        if mem_all:
            stats.all_lm_count += 1
        if regs_all and mem_all:
            stats.all_data_count += 1
