"""Per-loop control-flow path profiling (paper section 4).

A *path* is the control-flow signature of one loop iteration: the
sequence of executed control transfers (pc, direction).  The paper
reports that each loop's most frequent path covers ~85% of all
iterations, which underpins live-in value speculation: same-path
iterations see the same live-in sets.
"""

#: The incremental path-hash parameters.  The batched collect loop in
#: :mod:`repro.core.dataspec.stats` folds the same hash inline; both
#: sides must use these constants or the reference and columnar
#: front ends stop producing comparable digests.
HASH_SEED = 0x345678
HASH_MULTIPLIER = 1000003
_HASH_MASK = (1 << 61) - 1


class PathSignature:
    """Incrementally hashes an iteration's control-flow path."""

    __slots__ = ("value", "length")

    def __init__(self):
        self.value = HASH_SEED
        self.length = 0

    def update(self, pc, taken):
        token = pc * 2 + (1 if taken else 0)
        self.value = ((self.value * HASH_MULTIPLIER) ^ token) & _HASH_MASK
        self.length += 1

    def digest(self):
        return (self.value, self.length)


class PathProfile:
    """Counts path signatures per loop."""

    def __init__(self):
        self.counts = {}          # loop -> {signature: count}

    def record(self, loop, signature):
        per_loop = self.counts.setdefault(loop, {})
        per_loop[signature] = per_loop.get(signature, 0) + 1

    def most_frequent(self, loop):
        per_loop = self.counts.get(loop)
        if not per_loop:
            return None
        return max(per_loop.items(), key=lambda kv: kv[1])[0]

    def iterations(self, loop):
        per_loop = self.counts.get(loop, {})
        return sum(per_loop.values())

    def coverage(self, loop):
        """Fraction of the loop's iterations on its most frequent path."""
        per_loop = self.counts.get(loop)
        if not per_loop:
            return 0.0
        return max(per_loop.values()) / sum(per_loop.values())

    def total_iterations(self):
        return sum(self.iterations(loop) for loop in self.counts)

    def total_most_frequent(self):
        return sum(max(per_loop.values())
                   for per_loop in self.counts.values() if per_loop)

    def overall_coverage(self):
        """Share of *all* iterations covered by their loop's most
        frequent path (the paper's ~85% statistic)."""
        total = self.total_iterations()
        if not total:
            return 0.0
        return self.total_most_frequent() / total
