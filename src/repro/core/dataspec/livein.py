"""Live-in collection per loop iteration.

A live-in register is one read before it is written within the
iteration; a live-in memory location is one loaded before it is stored.
Live-in memory is keyed by the *static load pc* (what a LIT would use to
associate history across iterations), remembering both the address and
the value so that each can be stride-predicted.
"""

from repro.core.dataspec.paths import PathSignature


class IterationObservation:
    """Finalized view of one loop iteration's path and live-ins."""

    __slots__ = ("loop", "exec_id", "iteration", "path", "live_regs",
                 "live_mem")

    def __init__(self, loop, exec_id, iteration, path, live_regs, live_mem):
        self.loop = loop
        self.exec_id = exec_id
        self.iteration = iteration
        self.path = path                # (hash, length)
        self.live_regs = live_regs      # {reg: value at first read}
        self.live_mem = live_mem        # {load_pc: (addr, value)}

    def __repr__(self):
        return ("IterationObservation(loop=%d, iter=%d, regs=%d, mem=%d)"
                % (self.loop, self.iteration, len(self.live_regs),
                   len(self.live_mem)))


class IterationTracker:
    """Accumulates one in-flight iteration's effects."""

    __slots__ = ("loop", "exec_id", "iteration", "_sig", "_regs_written",
                 "live_regs", "_mem_written", "live_mem")

    def __init__(self, loop, exec_id, iteration):
        self.loop = loop
        self.exec_id = exec_id
        self.iteration = iteration
        self._sig = PathSignature()
        self._regs_written = set()
        self.live_regs = {}
        self._mem_written = set()
        self.live_mem = {}

    def observe(self, record):
        """Fold one executed instruction into the iteration state."""
        for reg, value in record.reg_reads:
            if reg and reg not in self._regs_written \
                    and reg not in self.live_regs:
                self.live_regs[reg] = value
        for reg, _value in record.reg_writes:
            self._regs_written.add(reg)
        for addr, value in record.mem_reads:
            if addr not in self._mem_written \
                    and record.pc not in self.live_mem:
                self.live_mem[record.pc] = (addr, value)
        for addr, _value in record.mem_writes:
            self._mem_written.add(addr)
        if record.kind:
            self._sig.update(record.pc, record.taken)

    def finalize(self):
        return IterationObservation(self.loop, self.exec_id,
                                    self.iteration, self._sig.digest(),
                                    self.live_regs, self.live_mem)
