"""Data-speculation study: path profiles and live-in predictability."""

from repro.core.dataspec.livein import IterationObservation, IterationTracker
from repro.core.dataspec.paths import PathProfile, PathSignature
from repro.core.dataspec.stats import DataSpecStats, DataSpeculationAnalyzer

__all__ = [
    "IterationObservation",
    "IterationTracker",
    "PathProfile",
    "PathSignature",
    "DataSpecStats",
    "DataSpeculationAnalyzer",
]
