"""Branch-prediction baselines.

The paper's premise (section 2): "the closing branches of loops are
highly predictable", which is why loops anchor thread-level control
speculation.  These conventional predictors quantify that over our
traces:

* :class:`BimodalPredictor` -- per-pc two-bit counters (Smith, 1981 --
  the paper's reference [8]).
* :class:`GSharePredictor` -- global-history XOR indexing (in the
  spirit of the two-level predictors of Yeh & Patt, reference [13]).

:func:`measure_branch_prediction` reports accuracy split into loop-
closing backward branches vs all other conditional branches, supporting
the claim directly.
"""

from repro.isa.instructions import InstrKind
from repro.trace import kernels

_K_BRANCH = int(InstrKind.BRANCH)


class BimodalPredictor:
    """Per-pc two-bit saturating counters (initialized weakly taken)."""

    def __init__(self, entries=2048):
        if entries < 1 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self.mask = entries - 1
        self.counters = [2] * entries

    def predict(self, pc):
        return self.counters[pc & self.mask] >= 2

    def update(self, pc, taken):
        index = pc & self.mask
        counter = self.counters[index]
        if taken:
            if counter < 3:
                self.counters[index] = counter + 1
        elif counter > 0:
            self.counters[index] = counter - 1


class GSharePredictor:
    """Two-bit counters indexed by pc XOR global branch history."""

    def __init__(self, entries=4096, history_bits=10):
        if entries < 1 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self.mask = entries - 1
        self.history_mask = (1 << history_bits) - 1
        self.counters = [2] * entries
        self.history = 0

    def _index(self, pc):
        return (pc ^ self.history) & self.mask

    def predict(self, pc):
        return self.counters[self._index(pc)] >= 2

    def update(self, pc, taken):
        index = self._index(pc)
        counter = self.counters[index]
        if taken:
            if counter < 3:
                self.counters[index] = counter + 1
        elif counter > 0:
            self.counters[index] = counter - 1
        self.history = ((self.history << 1) | (1 if taken else 0)) \
            & self.history_mask


class BranchPredictionReport:
    """Accuracy split into loop-closing and other branches."""

    __slots__ = ("name", "closing_correct", "closing_total",
                 "other_correct", "other_total")

    def __init__(self, name):
        self.name = name
        self.closing_correct = 0
        self.closing_total = 0
        self.other_correct = 0
        self.other_total = 0

    @property
    def closing_accuracy(self):
        if not self.closing_total:
            return 0.0
        return self.closing_correct / self.closing_total

    @property
    def other_accuracy(self):
        if not self.other_total:
            return 0.0
        return self.other_correct / self.other_total

    @property
    def overall_accuracy(self):
        total = self.closing_total + self.other_total
        if not total:
            return 0.0
        return (self.closing_correct + self.other_correct) / total

    def __repr__(self):
        return ("BranchPredictionReport(%s: closing=%.1f%%, other=%.1f%%)"
                % (self.name, 100 * self.closing_accuracy,
                   100 * self.other_accuracy))


def closing_branch_pcs(cf_trace):
    """Static pcs of loop-closing branches: conditional backward
    branches observed taken at least once."""
    pcs = set()
    for rec in cf_trace.records:
        if rec.kind == _K_BRANCH and rec.taken \
                and rec.target is not None and rec.target <= rec.pc:
            pcs.add(rec.pc)
    return pcs


class BranchPredictionStream:
    """Single-pass accuracy measurement for several predictors at once.

    Whether a branch counts as loop-closing depends on the *whole*
    trace (a pc is closing if it was ever observed taken backward), so
    the stream keeps per-pc tallies and classifies them only in
    :meth:`reports` -- the totals come out identical to a two-pass
    replay against a precomputed closing set, in one pass.
    """

    def __init__(self, predictors):
        self.predictors = list(predictors)
        self._per_pc = {}      # pc -> [total, correct_0, correct_1, ...]
        self._closing = set()
        # The baseline study always measures exactly one bimodal and one
        # gshare; that pair gets a fused batch loop with the predictor
        # state in locals instead of two method calls per branch.
        self._fused_pair = (
            len(self.predictors) == 2
            and type(self.predictors[0]) is BimodalPredictor
            and type(self.predictors[1]) is GSharePredictor)

    def feed(self, record):
        """Account one control-flow record (non-branches are ignored)."""
        if record.kind != _K_BRANCH:
            return
        pc = record.pc
        taken = record.taken
        tallies = self._per_pc.get(pc)
        if tallies is None:
            tallies = self._per_pc[pc] = [0] * (len(self.predictors) + 1)
        tallies[0] += 1
        for slot, predictor in enumerate(self.predictors, start=1):
            if predictor.predict(pc) == taken:
                tallies[slot] += 1
            predictor.update(pc, taken)
        if taken and record.target is not None and record.target <= pc:
            self._closing.add(pc)

    def feed_batch(self, batch):
        """Account one :class:`~repro.trace.batch.RecordBatch` -- the
        columnar form of :meth:`feed` (a ``target`` of ``-1`` encodes
        ``None``)."""
        if self._fused_pair:
            pcs, takens = kernels.branch_columns(batch)
            if pcs:
                self._feed_branches_fused(pcs, takens)
                self._closing |= kernels.closing_branch_pcs(batch)
            return
        k_branch = _K_BRANCH
        per_pc = self._per_pc
        closing = self._closing
        predictors = self.predictors
        for pc, kind, taken, target in zip(batch.pcs, batch.kinds,
                                           batch.takens, batch.targets):
            if kind != k_branch:
                continue
            taken = bool(taken)
            tallies = per_pc.get(pc)
            if tallies is None:
                tallies = per_pc[pc] = [0] * (len(predictors) + 1)
            tallies[0] += 1
            for slot, predictor in enumerate(predictors, start=1):
                if predictor.predict(pc) == taken:
                    tallies[slot] += 1
                predictor.update(pc, taken)
            if taken and 0 <= target <= pc:
                closing.add(pc)

    def _feed_branches_fused(self, pcs, takens):
        """Fused bimodal+gshare accounting over branch-only columns.

        Exactly the per-record sequence of :meth:`feed` -- bimodal
        predict/update, then gshare predict/update -- with both
        predictors' tables and the gshare history held in locals for
        the whole batch.
        """
        bimodal, gshare = self.predictors
        bcounters = bimodal.counters
        bmask = bimodal.mask
        gcounters = gshare.counters
        gmask = gshare.mask
        hmask = gshare.history_mask
        history = gshare.history
        per_pc = self._per_pc
        for pc, taken in zip(pcs, takens):
            tallies = per_pc.get(pc)
            if tallies is None:
                tallies = per_pc[pc] = [0, 0, 0]
            tallies[0] += 1
            index = pc & bmask
            counter = bcounters[index]
            if taken:
                if counter >= 2:
                    tallies[1] += 1
                if counter < 3:
                    bcounters[index] = counter + 1
                index = (pc ^ history) & gmask
                counter = gcounters[index]
                if counter >= 2:
                    tallies[2] += 1
                if counter < 3:
                    gcounters[index] = counter + 1
                history = ((history << 1) | 1) & hmask
            else:
                if counter < 2:
                    tallies[1] += 1
                if counter > 0:
                    bcounters[index] = counter - 1
                index = (pc ^ history) & gmask
                counter = gcounters[index]
                if counter < 2:
                    tallies[2] += 1
                if counter > 0:
                    gcounters[index] = counter - 1
                history = (history << 1) & hmask
        gshare.history = history

    def reports(self, name="workload"):
        """One :class:`BranchPredictionReport` per predictor, in order."""
        reports = [BranchPredictionReport(name)
                   for _ in self.predictors]
        closing = self._closing
        for pc, tallies in self._per_pc.items():
            total = tallies[0]
            for slot, report in enumerate(reports, start=1):
                correct = tallies[slot]
                if pc in closing:
                    report.closing_total += total
                    report.closing_correct += correct
                else:
                    report.other_total += total
                    report.other_correct += correct
        return reports


def measure_branch_prediction(cf_trace, predictor, name="workload"):
    """Replay every conditional branch through *predictor*."""
    stream = BranchPredictionStream([predictor])
    for rec in cf_trace.records:
        stream.feed(rec)
    return stream.reports(name)[0]
