"""Prediction primitives used by the LET/LIT and the speculation policies.

The paper uses stride predictors guarded by two-bit saturating confidence
counters for (a) loop iteration counts (LET) and (b) live-in register and
memory values (LIT), mirroring the scheme of Gonzalez & Gonzalez (ICS'97)
referenced in section 2.3.
"""


class TwoBitCounter:
    """A two-bit saturating confidence counter (states 0..3)."""

    __slots__ = ("state", "threshold")

    def __init__(self, initial=0, threshold=2):
        if not 0 <= initial <= 3:
            raise ValueError("two-bit counter state must be in 0..3")
        self.state = initial
        self.threshold = threshold

    def increment(self):
        if self.state < 3:
            self.state += 1

    def decrement(self):
        if self.state > 0:
            self.state -= 1

    @property
    def is_confident(self):
        return self.state >= self.threshold

    def __repr__(self):
        return "TwoBitCounter(%d)" % self.state


class StridePredictor:
    """Last-value-plus-stride prediction with two-bit confidence.

    ``update(value)`` records an observation; ``predict()`` returns the
    expected next observation (``None`` until one value is seen).  The
    confidence counter tracks whether the recent stride repeats.
    """

    __slots__ = ("last", "stride", "confidence", "observations")

    def __init__(self):
        self.last = None
        self.stride = None
        self.confidence = TwoBitCounter()
        self.observations = 0

    def update(self, value):
        if self.last is not None:
            stride = value - self.last
            if self.stride is not None:
                if stride == self.stride:
                    self.confidence.increment()
                else:
                    self.confidence.decrement()
            self.stride = stride
        self.last = value
        self.observations += 1

    @property
    def has_stride(self):
        return self.stride is not None

    @property
    def is_confident(self):
        return self.has_stride and self.confidence.is_confident

    def predict(self):
        """Next value: last + stride when a stride exists, else last."""
        if self.last is None:
            return None
        if self.stride is None:
            return self.last
        return self.last + self.stride

    def __repr__(self):
        return "StridePredictor(last=%r, stride=%r, conf=%d)" % (
            self.last, self.stride, self.confidence.state)


class IterationCountPredictor:
    """The LET-side predictor of a loop's iteration count (STR policy).

    Per section 3.1.2: use ``last + stride`` when the stride is reliable
    (two-bit counter); else the last execution's count; else nothing.
    ``predict()`` returns ``(count, mode)`` with mode in ``{"stride",
    "last", None}``.
    """

    __slots__ = ("_stride",)

    def __init__(self):
        self._stride = StridePredictor()

    def update(self, count):
        self._stride.update(count)

    def predict(self):
        sp = self._stride
        if sp.last is None:
            return None, None
        if sp.is_confident:
            return sp.last + sp.stride, "stride"
        return sp.last, "last"

    @property
    def executions_seen(self):
        return self._stride.observations


class LastPlusStride:
    """Stateless-update form used in the data-speculation study: predict
    the next value as ``last + (last - prev)``; defined only once two
    observations exist (the paper requires two prior iterations)."""

    __slots__ = ("last", "prev")

    def __init__(self):
        self.last = None
        self.prev = None

    def update(self, value):
        self.prev = self.last
        self.last = value

    @property
    def ready(self):
        return self.prev is not None

    def predict(self):
        if self.prev is None:
            return None
        return self.last + (self.last - self.prev)
