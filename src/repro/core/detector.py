"""Dynamic loop detection over control-flow traces.

:class:`LoopDetector` replays a :class:`~repro.trace.stream.CFTrace`
through the :class:`~repro.core.cls.CurrentLoopStack` and produces:

* the totally ordered list of loop events (the single source of loop
  truth for every experiment), and
* a :class:`LoopIndex`: per-execution records with iteration boundary
  sequence numbers, which the thread-speculation engine uses as its
  oracle for what each speculative thread would execute.
"""

from array import array
from bisect import bisect_right

from repro.core.cls import CurrentLoopStack, DEFAULT_CAPACITY
from repro.core.events import (
    ExecutionEnd,
    ExecutionStart,
    IterationStart,
    SingleIteration,
)

#: :class:`EventColumns` type codes, index-aligned with ``etypes``.
EV_ITERATION = 0
EV_EXEC_START = 1
EV_EXEC_END = 2
EV_SINGLE = 3


class EventColumns:
    """The loop-event list of a trace as parallel columns.

    The speculation engine walks the event list once per simulated
    configuration -- typically twenty-plus times per workload -- and
    almost all of those visits touch only ``(type, seq, loop, exec_id)``
    plus one type-specific field.  The columnar form serves exactly
    that: ``etypes`` holds the ``EV_*`` code, ``auxs`` the
    type-specific field (iteration number for iteration starts, depth
    for execution starts and single iterations, iteration count for
    execution ends).  ``EndReason`` stays object-only; no simulation
    reads it.

    Two derived structures make *sparse* walks possible:

    * ``next_non_iteration[i]`` -- the first position ``>= i`` whose
      event is not an :class:`~repro.core.events.IterationStart`
      (``len(events)`` when there is none); and
    * ``iteration_positions`` -- per ``exec_id``, the ascending
      positions of its iteration starts
      (:meth:`next_iteration_after` answers "this execution's next
      iteration start after position i" by bisection).

    A walker that knows nothing can happen at an iteration start (all
    TUs busy, execution untracked) jumps straight to the next position
    where something can.
    """

    __slots__ = ("etypes", "seqs", "loops", "exec_ids", "auxs",
                 "next_non_iteration", "iteration_positions")

    def __init__(self, events):
        n = len(events)
        etypes = bytearray(n)
        seqs = array("q", bytes(8 * n))
        loops = array("q", bytes(8 * n))
        exec_ids = array("q", bytes(8 * n))
        auxs = array("q", bytes(8 * n))
        iteration_positions = {}
        for i, event in enumerate(events):
            etype = type(event)
            seqs[i] = event.seq
            loops[i] = event.loop
            exec_ids[i] = event.exec_id
            if etype is IterationStart:
                # etypes[i] stays EV_ITERATION
                auxs[i] = event.iteration
                positions = iteration_positions.get(event.exec_id)
                if positions is None:
                    positions = iteration_positions[event.exec_id] = \
                        array("q")
                positions.append(i)
            elif etype is ExecutionStart:
                etypes[i] = EV_EXEC_START
                auxs[i] = event.depth
            elif etype is ExecutionEnd:
                etypes[i] = EV_EXEC_END
                auxs[i] = event.iterations
            elif etype is SingleIteration:
                etypes[i] = EV_SINGLE
                auxs[i] = event.depth
            else:
                raise TypeError("unknown loop event type %r" % etype)
        next_non_iteration = array("q", bytes(8 * (n + 1)))
        nxt = n
        next_non_iteration[n] = n
        for i in range(n - 1, -1, -1):
            if etypes[i] != EV_ITERATION:
                nxt = i
            next_non_iteration[i] = nxt
        self.etypes = bytes(etypes)
        self.seqs = seqs
        self.loops = loops
        self.exec_ids = exec_ids
        self.auxs = auxs
        self.next_non_iteration = next_non_iteration
        self.iteration_positions = iteration_positions

    def __len__(self):
        return len(self.etypes)

    def next_iteration_after(self, exec_id, position):
        """The first iteration-start position of *exec_id* strictly
        after *position*, or ``len(self)``."""
        positions = self.iteration_positions.get(exec_id)
        if positions is None:
            return len(self.etypes)
        k = bisect_right(positions, position)
        if k == len(positions):
            return len(self.etypes)
        return positions[k]


class LoopExecutionRecord:
    """One detected loop execution.

    ``iter_seqs[k]`` is the sequence number at which iteration ``k + 2``
    began (detection starts at the second iteration); ``end_seq`` is the
    terminating instruction.  A single-iteration execution has no
    ``iter_seqs`` and ``start_seq == end_seq``.
    """

    __slots__ = ("exec_id", "loop", "start_seq", "iter_seqs", "end_seq",
                 "iterations", "reason", "depth")

    def __init__(self, exec_id, loop, start_seq, depth):
        self.exec_id = exec_id
        self.loop = loop
        self.start_seq = start_seq
        self.iter_seqs = []
        self.end_seq = None
        self.iterations = None
        self.reason = None
        self.depth = depth

    @property
    def detected_iterations(self):
        """Iterations observable by hardware (excludes the undetected
        first iteration of multi-iteration executions)."""
        return len(self.iter_seqs)

    def iteration_lengths(self):
        """Instruction counts of fully delimited iterations."""
        bounds = list(self.iter_seqs)
        if self.end_seq is not None:
            bounds.append(self.end_seq)
        return [b - a for a, b in zip(bounds, bounds[1:])]

    def __repr__(self):
        return ("LoopExecutionRecord(exec=%d, loop=%d, iters=%r, "
                "reason=%r)" % (self.exec_id, self.loop, self.iterations,
                                self.reason))


class LoopIndex:
    """All loop executions of a trace, ordered by start sequence."""

    def __init__(self, executions, events, total_instructions,
                 cls_capacity):
        self.executions = executions          # exec_id -> record
        self.events = events                  # ordered LoopEvent list
        self.total_instructions = total_instructions
        self.cls_capacity = cls_capacity
        self._columns = None

    def columns(self):
        """The events as :class:`EventColumns`, built once per index.

        Every simulation over this index shares one columnar copy; the
        build is one pass over ``events`` and pays for itself the first
        time a walker skips anything.
        """
        columns = self._columns
        if columns is None:
            columns = self._columns = EventColumns(self.events)
        return columns

    def execution(self, exec_id):
        return self.executions[exec_id]

    def loops(self):
        """Set of distinct loop identifiers (target addresses)."""
        return {rec.loop for rec in self.executions.values()}

    def multi_iteration_executions(self):
        return [rec for rec in self.executions.values() if rec.iter_seqs]

    def __len__(self):
        return len(self.executions)


class LoopDetector:
    """Replays a control-flow trace through the CLS."""

    def __init__(self, cls_capacity=DEFAULT_CAPACITY):
        self.cls = CurrentLoopStack(capacity=cls_capacity)
        self.events = []
        self.executions = {}
        self._listeners = []

    def add_listener(self, listener):
        """Register a listener with optional ``on_event(event)`` hook."""
        self._listeners.append(listener)
        return listener

    # -- streaming interface ----------------------------------------------

    def feed(self, record):
        """Process one CF record; returns the events it caused."""
        events = self.cls.process(record.seq, record.pc, record.kind,
                                  record.taken, record.target)
        if events:
            self._absorb(events)
        return events

    def feed_batch(self, batch):
        """Process one :class:`~repro.trace.batch.RecordBatch`; returns
        the (ordered) events it caused.

        The columnar fast path: one
        :meth:`CurrentLoopStack.process_batch` call per batch instead
        of one :meth:`feed` per record, with bookkeeping and listener
        fan-out amortized over the whole batch.  Event order -- and
        therefore every downstream consumer -- is identical to the
        per-record path.
        """
        events = self.cls.process_batch(batch)
        if events:
            self._absorb(events)
        return events

    def finish(self, total_instructions):
        """Flush the CLS at end of trace; returns the flush events."""
        events = self.cls.flush(total_instructions)
        if events:
            self._absorb(events)
        return events

    def run(self, trace, total_instructions=None):
        """Convenience: feed an entire trace and return a LoopIndex.

        *trace* is either a :class:`~repro.trace.stream.CFTrace` or any
        iterable of CF records — e.g. the streaming record iterator of
        :func:`repro.trace.io.open_cf_records` — in which case
        *total_instructions* must be given explicitly (detection never
        needs the full record list in memory).
        """
        records = getattr(trace, "records", trace)
        if total_instructions is None:
            try:
                total_instructions = trace.total_instructions
            except AttributeError:
                raise TypeError(
                    "run() needs total_instructions when fed a plain "
                    "record iterable instead of a CFTrace") from None
        feed = self.feed
        for record in records:
            feed(record)
        self.finish(total_instructions)
        return self.index(total_instructions)

    def run_batches(self, batches, total_instructions):
        """Like :meth:`run`, over an iterable of
        :class:`~repro.trace.batch.RecordBatch` (e.g. the stream of
        :func:`repro.trace.io.open_cf_batches`)."""
        feed_batch = self.feed_batch
        for batch in batches:
            feed_batch(batch)
        self.finish(total_instructions)
        return self.index(total_instructions)

    def index(self, total_instructions):
        return LoopIndex(self.executions, self.events, total_instructions,
                         self.cls.capacity)

    # -- event bookkeeping ---------------------------------------------------

    def _absorb(self, events):
        executions = self.executions
        for event in events:
            if type(event) is IterationStart:
                rec = executions.get(event.exec_id)
                if rec is not None:
                    rec.iter_seqs.append(event.seq)
                else:
                    # First IterationStart arrives with ExecutionStart.
                    pass
            elif type(event) is ExecutionStart:
                executions[event.exec_id] = LoopExecutionRecord(
                    event.exec_id, event.loop, event.seq, event.depth)
            elif type(event) is ExecutionEnd:
                rec = executions.get(event.exec_id)
                if rec is not None:
                    rec.end_seq = event.seq
                    rec.iterations = event.iterations
                    rec.reason = event.reason
            elif type(event) is SingleIteration:
                rec = LoopExecutionRecord(event.exec_id, event.loop,
                                          event.seq, event.depth)
                rec.end_seq = event.seq
                rec.iterations = 1
                executions[event.exec_id] = rec
        self.events.extend(events)
        for listener in self._listeners:
            on_event = getattr(listener, "on_event", None)
            if on_event is not None:
                for event in events:
                    on_event(event)
