"""Loop statistics in the shape of the paper's Table 1.

Per benchmark: dynamic instruction count, static loop count, average
iterations per execution, average instructions per iteration, and the
average/maximum nesting level.

Modelling note (see docs/ARCHITECTURE.md): the first iteration of an
execution is undetected until it finishes, so instruction counts cover
the *detected, fully delimited* iterations -- iterations 2..n of every
multi-iteration execution.  Iteration and execution *counts* include the
first iterations (they are known retrospectively) and single-iteration
executions.
"""


class LoopStatistics:
    """Aggregated Table-1 row for one workload.

    Accumulates incrementally: call :meth:`observe` with each completed
    :class:`~repro.core.detector.LoopExecutionRecord` as its execution
    ends, then :meth:`finalize` once the stream is exhausted.
    :func:`compute_loop_statistics` does both over a finished index.
    """

    __slots__ = ("name", "total_instructions", "static_loops", "executions",
                 "iterations", "measured_iterations",
                 "measured_iteration_instructions", "nesting_sum",
                 "max_nesting", "single_iteration_executions",
                 "overflow_drops", "observed_loops")

    def __init__(self, name="workload"):
        self.name = name
        self.total_instructions = 0
        self.static_loops = 0
        self.executions = 0
        self.iterations = 0
        self.measured_iterations = 0
        self.measured_iteration_instructions = 0
        self.nesting_sum = 0
        self.max_nesting = 0
        self.single_iteration_executions = 0
        self.overflow_drops = 0
        self.observed_loops = set()

    def observe(self, rec):
        """Fold one completed execution record into the aggregates."""
        self.observed_loops.add(rec.loop)
        self.executions += 1
        iterations = rec.iterations if rec.iterations is not None else \
            rec.detected_iterations + 1
        self.iterations += iterations
        if iterations == 1:
            self.single_iteration_executions += 1
        lengths = rec.iteration_lengths()
        self.measured_iterations += len(lengths)
        self.measured_iteration_instructions += sum(lengths)
        self.nesting_sum += rec.depth
        if rec.depth > self.max_nesting:
            self.max_nesting = rec.depth
        return self

    def finalize(self):
        """Derive the counts that need the whole stream; returns self."""
        self.static_loops = len(self.observed_loops)
        return self

    @property
    def iterations_per_execution(self):
        if not self.executions:
            return 0.0
        return self.iterations / self.executions

    @property
    def instructions_per_iteration(self):
        if not self.measured_iterations:
            return 0.0
        return (self.measured_iteration_instructions
                / self.measured_iterations)

    @property
    def average_nesting(self):
        if not self.executions:
            return 0.0
        return self.nesting_sum / self.executions

    # -- persistence -------------------------------------------------------

    #: Scalar counters persisted by :meth:`state` (``observed_loops``
    #: is folded into ``static_loops`` by :meth:`finalize` first).
    STATE_FIELDS = ("name", "total_instructions", "static_loops",
                    "executions", "iterations", "measured_iterations",
                    "measured_iteration_instructions", "nesting_sum",
                    "max_nesting", "single_iteration_executions",
                    "overflow_drops")

    def state(self):
        """Every counter as a JSON-serializable dict -- the exact
        inverse of :meth:`from_state`.  Call :meth:`finalize` first:
        the loop-identity set itself is not persisted, only its size."""
        return {field: getattr(self, field)
                for field in self.STATE_FIELDS}

    @classmethod
    def from_state(cls, state):
        """Rebuild finalized statistics from :meth:`state` output.

        Raises ``KeyError``/``TypeError`` on malformed input (derived
        caches treat that as a miss).  The restored object is
        finalized: ``observed_loops`` is empty and ``static_loops`` is
        authoritative.
        """
        stats = cls(state["name"])
        for field in cls.STATE_FIELDS:
            value = state[field]
            if field != "name" and not isinstance(value, int):
                raise TypeError("non-integer counter %r" % field)
            setattr(stats, field, value)
        return stats

    def as_row(self):
        """Row in the column order of the paper's Table 1."""
        return (self.name, self.total_instructions, self.static_loops,
                round(self.iterations_per_execution, 2),
                round(self.instructions_per_iteration, 2),
                round(self.average_nesting, 2), self.max_nesting)

    ROW_HEADERS = ("program", "#instr", "#loops", "#iter/exec",
                   "#instr/iter", "avg. nl", "max. nl")

    def __repr__(self):
        return ("LoopStatistics(%s: loops=%d, iter/exec=%.2f, "
                "instr/iter=%.2f, nl=%.2f/%d)"
                % (self.name, self.static_loops,
                   self.iterations_per_execution,
                   self.instructions_per_iteration,
                   self.average_nesting, self.max_nesting))


def compute_loop_statistics(index, name="workload"):
    """Aggregate a :class:`~repro.core.detector.LoopIndex` into a
    :class:`LoopStatistics`."""
    stats = LoopStatistics(name)
    stats.total_instructions = index.total_instructions
    for rec in index.executions.values():
        stats.observe(rec)
    return stats.finalize()


def loop_coverage(index):
    """Fraction of dynamic instructions spent inside detected loops.

    Depth-1 (outermost; CLS depth is 1-based) executions are mutually
    non-overlapping and contain every nested execution, so summing
    their spans measures the paper's "time spent in loops" without
    double counting.  Executions dropped by CLS overflow are not
    recovered; the number is therefore a (tight, for sane capacities)
    lower bound.
    """
    if not index.total_instructions:
        return 0.0
    covered = sum(rec.end_seq - rec.start_seq
                  for rec in index.executions.values()
                  if rec.depth == 1 and rec.end_seq is not None)
    return min(1.0, covered / index.total_instructions)
