"""repro: reproduction of Tubella & Gonzalez, "Control Speculation in
Multithreaded Processors through Dynamic Loop Detection" (HPCA 1998).

The package layers:

* :mod:`repro.isa`, :mod:`repro.cpu`, :mod:`repro.trace` -- the execution
  substrate standing in for Alpha/ATOM traces.
* :mod:`repro.lang` -- a structured mini-language compiler used to author
  the synthetic SPEC95-analog workloads in :mod:`repro.workloads`.
* :mod:`repro.core` -- the paper's contribution: dynamic loop detection
  (CLS), loop history tables (LET/LIT), thread control speculation with
  the IDLE/STR/STR(i) policies, and the data-speculation study.
* :mod:`repro.analysis` -- the streaming analysis API: composable
  passes fed from one event-stream replay per workload.
* :mod:`repro.pipeline` -- parallel tracing, the on-disk trace cache,
  and the session whose ``analyze()`` drives the passes.
* :mod:`repro.experiments` -- one registered analysis per table/figure
  of the paper.
"""

__version__ = "1.1.0"
