"""Standalone single-pass driver for in-memory traces.

:func:`analyze_trace` runs the same replay loop the session uses, but
over a trace you already hold -- the path for custom programs that are
not registered workloads (see ``examples/quickstart.py``).
"""

from repro.core.cls import DEFAULT_CAPACITY
from repro.core.detector import LoopDetector

from repro.analysis.base import WorkloadContext
from repro.analysis.suite import AnalysisSuite


def analyze_trace(analyses, trace, name="program", workload=None,
                  scale=1, cls_capacity=DEFAULT_CAPACITY, timing=None):
    """Replay *trace* once, feeding every pass in *analyses*.

    *analyses* is an :class:`AnalysisSuite` or an iterable of passes;
    *trace* is a :class:`~repro.trace.stream.CFTrace`.  *timing* is the
    default timing model for speculation passes (a spec string or
    :class:`~repro.timing.base.TimingModel` instance; record-fed models
    receive the trace's CF records).  Returns the list of each pass's
    :meth:`result`, in order (or the suite's results).
    """
    from repro.timing import make_timing

    suite = analyses if isinstance(analyses, AnalysisSuite) \
        else AnalysisSuite(analyses)
    detector = LoopDetector(cls_capacity=cls_capacity)
    timing = make_timing(timing) if timing is not None else None
    ctx = WorkloadContext(name, trace.total_instructions,
                          workload=workload, scale=scale,
                          cls_capacity=cls_capacity, detector=detector,
                          timing=timing)
    suite.begin(ctx)
    wants_records = suite.wants_records
    timing_feed = (timing.feed_record
                   if timing is not None and timing.wants_records
                   else None)
    feed = suite.feed
    detect = detector.feed
    for record in trace.records:
        if wants_records:
            suite.feed_record(record)
        if timing_feed is not None:
            timing_feed(record)
        for event in detect(record):
            feed(event)
    for event in detector.finish(trace.total_instructions):
        feed(event)
    ctx.index = detector.index(trace.total_instructions)
    suite.finish(ctx)
    return suite.results()
