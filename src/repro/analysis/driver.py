"""Standalone single-pass driver for in-memory traces.

:func:`analyze_trace` runs the same replay loop the session uses, but
over a trace you already hold -- the path for custom programs that are
not registered workloads (see ``examples/quickstart.py``).
"""

from repro.core.cls import DEFAULT_CAPACITY
from repro.core.detector import LoopDetector
from repro.trace.batch import iter_batches

from repro.analysis.base import WorkloadContext
from repro.analysis.suite import AnalysisSuite


def analyze_trace(analyses, trace, name="program", workload=None,
                  scale=1, cls_capacity=DEFAULT_CAPACITY, timing=None):
    """Replay *trace* once, feeding every pass in *analyses*.

    *analyses* is an :class:`AnalysisSuite` or an iterable of passes;
    *trace* is a :class:`~repro.trace.stream.CFTrace`.  *timing* is the
    default timing model for speculation passes (a spec string or
    :class:`~repro.timing.base.TimingModel` instance; record-fed models
    receive the trace's CF records).  Returns the list of each pass's
    :meth:`result`, in order (or the suite's results).

    The replay is batched: records stream through the detector and the
    suite as :class:`~repro.trace.batch.RecordBatch` columns, exactly
    like the session's cache-backed replay.
    """
    from repro.timing import make_timing

    suite = analyses if isinstance(analyses, AnalysisSuite) \
        else AnalysisSuite(analyses)
    detector = LoopDetector(cls_capacity=cls_capacity)
    timing = make_timing(timing) if timing is not None else None
    ctx = WorkloadContext(name, trace.total_instructions,
                          workload=workload, scale=scale,
                          cls_capacity=cls_capacity, detector=detector,
                          timing=timing)
    suite.begin(ctx)
    wants_records = suite.wants_records
    timing_feed = (timing.feed_batch
                   if timing is not None and timing.wants_records
                   else None)
    feed = suite.feed
    feed_batch = suite.feed_batch
    detect_batch = detector.feed_batch
    for batch in iter_batches(trace.records):
        if wants_records:
            feed_batch(batch)
        if timing_feed is not None:
            timing_feed(batch)
        for event in detect_batch(batch):
            feed(event)
    for event in detector.finish(trace.total_instructions):
        feed(event)
    ctx.index = detector.index(trace.total_instructions)
    suite.finish(ctx)
    return suite.results()
