"""Composable streaming analyses over one event-stream replay.

The public experiment API (see ``docs/ANALYSIS.md``): an
:class:`Analysis` implements ``begin``/``feed``/``finish``/``result``,
an :class:`AnalysisSuite` fans one workload replay out to every
registered pass, and :meth:`SimulationSession.analyze(suite)
<repro.pipeline.session.SimulationSession.analyze>` streams cached
trace records through the canonical loop detector into the suite --
exactly one replay per workload, however many experiments are
registered.
"""

from repro.analysis.base import Analysis, WorkloadContext
from repro.analysis.driver import analyze_trace
from repro.analysis.passes import (
    DataSpecPass,
    LoopStatisticsPass,
    SpeculationPass,
    effective_timing,
    shared_dataspec_stats,
    shared_simulate,
    shared_simulate_many,
    shared_table_sim,
)
from repro.analysis.registry import (
    analysis_names,
    make_analysis,
    register_analysis,
)
from repro.analysis.suite import AnalysisSuite

__all__ = [
    "Analysis",
    "AnalysisSuite",
    "DataSpecPass",
    "LoopStatisticsPass",
    "SpeculationPass",
    "WorkloadContext",
    "analysis_names",
    "analyze_trace",
    "effective_timing",
    "make_analysis",
    "register_analysis",
    "shared_dataspec_stats",
    "shared_simulate",
    "shared_simulate_many",
    "shared_table_sim",
]
