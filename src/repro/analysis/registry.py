"""Registry mapping experiment names to analysis factories.

Experiment modules register their analysis class at import time::

    @register_analysis("table1")
    class Table1Analysis(Analysis):
        ...

The experiments runner builds its suite from this registry; any new
figure, predictor study, or sweep plugs into ``runner all`` by
registering a pass -- no runner changes needed.
"""

_REGISTRY = {}


def register_analysis(name):
    """Class decorator registering an :class:`Analysis` factory.

    Re-registering the same class is allowed (``python -m
    repro.experiments.table2`` imports the module once as ``__main__``
    and once under its package name); a *different* factory under an
    existing name is a collision and raises.
    """
    def wrap(factory):
        existing = _REGISTRY.get(name)
        if existing is not None \
                and existing.__qualname__ != factory.__qualname__:
            raise ValueError("analysis %r already registered" % name)
        _REGISTRY[name] = factory
        return factory
    return wrap


def make_analysis(name, *args, **kwargs):
    """A fresh instance of the analysis registered under *name*."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError("unknown analysis %r (known: %s)"
                       % (name, ", ".join(sorted(_REGISTRY)))) from None
    return factory(*args, **kwargs)


def analysis_names():
    """Registered names, in registration order."""
    return list(_REGISTRY)
