"""Reusable building-block passes.

These are the generic measurements the experiment modules (and the
example scripts) compose: per-workload loop statistics, speculation
simulations, and the shared full-trace data-speculation study.
"""

from repro.core.events import ExecutionEnd, SingleIteration
from repro.core.loopstats import LoopStatistics
from repro.core.speculation import simulate, simulate_grid, \
    simulate_infinite
from repro.core.dataspec import DataSpeculationAnalyzer
from repro.core.dataspec.stats import DataSpecStats
from repro.core.tables import POLICY_LRU, TableHitRatioSimulator
from repro.pipeline.derived import derived_key
from repro.timing import make_timing

from repro.analysis.base import Analysis


def effective_timing(ctx, timing=None):
    """Resolve the timing model a speculation pass should use.

    An explicit *timing* (model instance or spec string) wins;
    otherwise the session-wide default ``ctx.timing`` applies.  Spec
    strings resolve once per workload through ``ctx.shared`` so passes
    naming the same spec share one instance; record-fed specs are
    rejected here -- by the time a pass runs, the record stream has
    gone by, so such models can only be configured session-wide
    (``--timing`` / ``PipelineConfig.timing``), which feeds them
    during the replay.  The ideal model canonicalizes to ``None`` --
    the engine's default -- so explicitly requesting ``"ideal"``
    shares simulations (and memo keys) with passes that never mention
    timing at all.
    """
    if timing is None:
        timing = ctx.timing
    if isinstance(timing, str):
        key = ("timing-model", timing)
        model = ctx.shared.get(key)
        if model is None:
            model = make_timing(timing)
            if model.wants_records:
                raise ValueError(
                    "timing model %r needs the record stream and "
                    "cannot be created inside a pass; configure it "
                    "session-wide (--timing / PipelineConfig.timing) "
                    "so the replay feeds it" % timing)
            ctx.shared[key] = model
        timing = model
    if timing is not None and timing.key() == ("ideal",):
        return None
    return timing


class LoopStatisticsPass(Analysis):
    """Table-1 statistics, one :class:`LoopStatistics` per workload.

    Every execution record is complete by the time its
    :class:`~repro.core.events.ExecutionEnd` (or
    :class:`~repro.core.events.SingleIteration`) event exists -- the
    CLS guarantees exactly one terminating event per execution, end of
    trace included.  The pass therefore consumes no per-event stream at
    all: at ``finish`` it walks the terminating positions of the
    index's event columns and observes each execution in event order.
    """

    def __init__(self):
        self.by_name = {}
        self._stats = None

    def begin(self, ctx):
        self._stats = LoopStatistics(ctx.name)
        self._stats.total_instructions = ctx.total_instructions

    def abort(self, ctx):
        self._stats = None

    def finish(self, ctx):
        from repro.core.detector import EV_EXEC_END, EV_SINGLE

        stats = self._stats
        index = ctx.index
        columns = getattr(index, "columns", None)
        if columns is not None:
            cols = columns()
            etypes = cols.etypes
            exec_ids = cols.exec_ids
            executions = index.executions
            observe = stats.observe
            for i in range(len(etypes)):
                etype = etypes[i]
                if etype == EV_EXEC_END or etype == EV_SINGLE:
                    observe(executions[exec_ids[i]])
        else:
            for event in index.events:
                etype = type(event)
                if etype is ExecutionEnd or etype is SingleIteration:
                    stats.observe(ctx.execution(event.exec_id))
        self.by_name[ctx.name] = stats.finalize()
        self._stats = None

    def result(self):
        return self.by_name


class SpeculationPass(Analysis):
    """Thread-control speculation per workload.

    The engine is an *oracle*: at spawn time it reads the speculated
    iterations' future boundary sequence numbers from the loop index,
    so it runs in ``finish`` against the completed ``ctx.index`` --
    still one trace replay, with the event list shared by every pass.
    ``num_tus=None`` selects the idealized infinite-TU study.
    """

    def __init__(self, num_tus=4, policy="str", timing=None, **kwargs):
        self.num_tus = num_tus
        self.policy = policy
        self.timing = timing
        self.kwargs = kwargs
        self.by_name = {}

    def finish(self, ctx):
        if self.num_tus is None:
            result = simulate_infinite(
                ctx.index, name=ctx.name,
                timing=effective_timing(ctx, self.timing))
        elif not self.kwargs:
            # Default-configuration cells go through the shared memo,
            # so several SpeculationPass instances in one suite batch
            # with the experiments sweeping the same cells (and share
            # the derived store both ways).
            result = shared_simulate(ctx, self.num_tus, self.policy,
                                     timing=self.timing)
        else:
            result = simulate(ctx.index, num_tus=self.num_tus,
                              policy=self.policy, name=ctx.name,
                              timing=effective_timing(ctx, self.timing),
                              **self.kwargs)
        self.by_name[ctx.name] = result

    def result(self):
        return self.by_name


#: ``ctx.shared`` key prefix for shared LET/LIT hit-ratio simulators.
_TABLE_SIM_KEY = "table-sim"


def shared_table_sim(ctx, let_entries, lit_entries, policy=POLICY_LRU):
    """A :class:`TableHitRatioSimulator` shared across passes for this
    replay; returns ``(sim, owned)``.

    Several experiments sweep the same table configuration (figure4's
    size-2/4 LRU pairs reappear in the replacement-policy ablation).
    The simulator is *not* fed during the replay: every consumer calls
    :meth:`~repro.core.tables.TableHitRatioSimulator.ensure_replayed`
    on the finished ``ctx.index`` at ``finish`` and then reads the
    counters -- the first call performs the (columnar) walk, the rest
    are free.  ``owned`` reports whether this call created the
    simulator, for passes that care about setup (listeners etc.).
    """
    key = (_TABLE_SIM_KEY, let_entries, lit_entries, policy)
    sim = ctx.shared.get(key)
    if sim is not None:
        return sim, False
    sim = TableHitRatioSimulator(let_entries, lit_entries, policy)
    ctx.shared[key] = sim
    return sim, True


#: ``ctx.shared`` key prefix for memoized speculation simulations.
_SIMULATE_KEY = "simulate"


def shared_simulate(ctx, num_tus, policy, timing=None):
    """A default-configuration speculation simulation, computed at most
    once per replay no matter how many passes ask.

    Several experiments request the exact same deterministic run
    (figure6's STR sweep reappears inside figure7; table2's STR(3) with
    4 TUs too), so the single-pass suite runs each distinct
    ``(num_tus, policy, timing)`` once and shares the result.  *timing*
    (a model instance or spec string; default: the session-wide
    ``ctx.timing``) keys the memo through the model's canonical
    :meth:`~repro.timing.base.TimingModel.key`, with the ideal model
    collapsing onto the timing-free key.  The returned
    :class:`SpeculationResult` is shared — treat it as read-only.
    Non-default configurations (disable tables, bounded LETs,
    ``count_waiting=False``) mutate or change the run; call
    :func:`repro.core.speculation.simulate` directly for those.
    """
    timing = effective_timing(ctx, timing)
    if timing is None:
        key = (_SIMULATE_KEY, num_tus, policy)
    else:
        key = (_SIMULATE_KEY, num_tus, policy, timing.key())
    result = ctx.shared.get(key)
    if result is None:
        dkey = derived_key(*key) + "/c%d" % ctx.cls_capacity
        result = _restore_result(ctx.derived, dkey)
        if result is None:
            result = simulate(ctx.index, num_tus=num_tus, policy=policy,
                              name=ctx.name, timing=timing)
            if ctx.derived is not None:
                ctx.derived.put(dkey, result.state())
        ctx.shared[key] = result
    return result


def shared_simulate_many(ctx, specs):
    """Batch form of :func:`shared_simulate`: every ``(num_tus,
    policy, timing)`` in *specs*, resolved through one fused
    :func:`~repro.core.speculation.grid.simulate_grid` call.

    Memo keys, derived-store cell keys, and results are identical to
    calling :func:`shared_simulate` once per spec -- this is purely the
    fast path for experiments that sweep whole per-workload config
    grids (sensitivity, figure6/figure7, table2).  Returns the results
    in spec order; duplicate specs are welcome and share one cell.
    """
    results = []
    missing = []        # (memo key, dkey, config) of cells to compute
    pending = {}        # memo key -> slots awaiting the grid result
    for num_tus, policy, timing in specs:
        timing = effective_timing(ctx, timing)
        if timing is None:
            key = (_SIMULATE_KEY, num_tus, policy)
        else:
            key = (_SIMULATE_KEY, num_tus, policy, timing.key())
        result = ctx.shared.get(key)
        if result is None and key not in pending:
            dkey = derived_key(*key) + "/c%d" % ctx.cls_capacity
            result = _restore_result(ctx.derived, dkey)
            if result is None:
                missing.append((key, dkey, (num_tus, policy, timing)))
                pending[key] = []
            else:
                ctx.shared[key] = result
        if result is None:
            pending[key].append(len(results))
            results.append(None)
        else:
            results.append(result)
    if missing:
        computed = simulate_grid(ctx.index,
                                 [config for _, _, config in missing],
                                 name=ctx.name)
        if ctx.derived is not None:
            ctx.derived.put_cells(
                (dkey, result.state())
                for (_, dkey, _), result in zip(missing, computed))
        for (key, _, _), result in zip(missing, computed):
            ctx.shared[key] = result
            for slot in pending[key]:
                results[slot] = result
    return results


def _restore_result(derived, dkey):
    """A :class:`SpeculationResult` from the derived store, or ``None``
    on miss/malformed payload."""
    if derived is None:
        return None
    state = derived.get(dkey)
    if state is None:
        return None
    from repro.core.speculation.metrics import SpeculationResult

    try:
        return SpeculationResult.from_state(state)
    except (KeyError, TypeError):
        return None


#: ``ctx.shared`` key prefix for memoized data-speculation statistics.
_DATASPEC_KEY = "dataspec-stats"


def shared_dataspec_stats(ctx, max_instructions):
    """The full-trace data-speculation statistics for this workload,
    computed at most once per replay no matter how many passes ask
    (figure8 and the extensions study share one full-effects stream
    and one analysis).

    The stream is columnar end to end: a
    :class:`~repro.cpu.tracer.ChunkedFullTracer` feeds
    :class:`~repro.trace.batch.FullBatch` columns straight into
    :meth:`~repro.core.dataspec.stats.DataSpeculationAnalyzer.
    analyze_batches`, so the full per-instruction trace is never
    materialized.
    """
    key = (_DATASPEC_KEY, max_instructions)
    stats = ctx.shared.get(key)
    if stats is None:
        dkey = derived_key(_DATASPEC_KEY, max_instructions) \
            + "/c%d" % ctx.cls_capacity
        if ctx.derived is not None:
            state = ctx.derived.get(dkey)
            if state is not None:
                try:
                    stats = DataSpecStats.from_state(state)
                except (KeyError, TypeError):
                    stats = None
        if stats is None:
            from repro.cpu.tracer import ChunkedFullTracer

            tracer = ChunkedFullTracer(ctx.workload.program(ctx.scale),
                                       max_instructions)
            analyzer = DataSpeculationAnalyzer(
                cls_capacity=ctx.cls_capacity)
            stats = analyzer.analyze_batches(tracer.batches(), ctx.name)
            if ctx.derived is not None:
                ctx.derived.put(dkey, stats.state())
        ctx.shared[key] = stats
    return stats


class DataSpecPass(Analysis):
    """Per-workload section-4 data-speculation statistics (full trace,
    bounded to *max_instructions*), shared through ``ctx.shared``."""

    def __init__(self, max_instructions):
        self.max_instructions = max_instructions
        self.by_name = {}

    def finish(self, ctx):
        self.by_name[ctx.name] = shared_dataspec_stats(
            ctx, self.max_instructions)

    def result(self):
        return self.by_name
