"""The analysis multiplexer: one replay feeds every registered pass."""

import time


class AnalysisSuite:
    """An ordered collection of :class:`~repro.analysis.base.Analysis`
    passes sharing one event-stream replay.

    The suite is itself shaped like an analysis: the session calls the
    same lifecycle hooks on it and it fans each one out to every
    registered pass.  Record fan-out only touches the passes that
    declared ``wants_records`` (the hot path: records vastly outnumber
    loop events).
    """

    def __init__(self, analyses=()):
        self._analyses = []
        self._names = []
        for analysis in analyses:
            self.add(analysis)
        self._record_consumers = ()
        self._event_consumers = ()
        self._feed_seconds = None   # per-pass timing; obs-enabled only

    def add(self, analysis, name=None):
        """Register a pass (optionally under *name*); returns it."""
        if name is None:
            name = type(analysis).__name__
        self._analyses.append(analysis)
        self._names.append(name)
        return analysis

    @property
    def analyses(self):
        return list(self._analyses)

    @property
    def names(self):
        return list(self._names)

    def __len__(self):
        return len(self._analyses)

    def __getitem__(self, name):
        """The first pass registered under *name*."""
        try:
            return self._analyses[self._names.index(name)]
        except ValueError:
            raise KeyError("no analysis named %r in this suite"
                           % name) from None

    @property
    def wants_records(self):
        return any(a.wants_records for a in self._analyses)

    # -- lifecycle fan-out ---------------------------------------------------

    def begin(self, ctx):
        from repro.analysis.base import Analysis
        from repro.obs import collector as obs

        # Hot-path pruning: records/events only reach passes that
        # actually consume them (oracle passes override finish only).
        self._record_consumers = tuple(
            a for a in self._analyses if a.wants_records)
        self._event_consumers = tuple(
            a for a in self._analyses
            if type(a).feed is not Analysis.feed)
        # Per-pass feed timing only exists while a collector is active;
        # the disabled fan-out below is byte-for-byte the untimed loop.
        self._feed_seconds = None
        if obs.active() is not None:
            self._pass_names = {
                id(a): name
                for a, name in zip(self._analyses, self._names)}
            self._feed_seconds = {name: 0.0 for name in self._names}
        for analysis in self._analyses:
            analysis.begin(ctx)

    def feed_record(self, record):
        for analysis in self._record_consumers:
            analysis.feed_record(record)

    def feed_batch(self, batch):
        """Fan one :class:`~repro.trace.batch.RecordBatch` out to every
        record consumer (each falls back to per-record feeding unless
        it overrides :meth:`~repro.analysis.base.Analysis.feed_batch`)."""
        timings = self._feed_seconds
        if timings is None:
            for analysis in self._record_consumers:
                analysis.feed_batch(batch)
            return
        clock = time.perf_counter
        names = self._pass_names
        for analysis in self._record_consumers:
            t0 = clock()
            analysis.feed_batch(batch)
            timings[names[id(analysis)]] += clock() - t0

    def feed(self, event):
        for analysis in self._event_consumers:
            analysis.feed(event)

    @property
    def has_event_consumers(self):
        """Whether any registered pass overrides ``feed``.

        Valid after :meth:`begin`.  When False, the replay loop skips
        the per-event fan-out entirely -- with every stock pass either
        record-fed or finish-time, the loop-event stream usually has no
        takers.
        """
        return bool(self._event_consumers)

    def feed_events(self, events):
        """Fan a list of loop events out to every event consumer,
        event-major (each event reaches every consumer before the
        next), amortizing the dispatch over the whole list."""
        consumers = self._event_consumers
        if not consumers:
            return
        timings = self._feed_seconds
        if timings is not None:
            clock = time.perf_counter
            names = self._pass_names
            for event in events:
                for analysis in consumers:
                    t0 = clock()
                    analysis.feed(event)
                    timings[names[id(analysis)]] += clock() - t0
            return
        if len(consumers) == 1:
            feed = consumers[0].feed
            for event in events:
                feed(event)
            return
        for event in events:
            for analysis in consumers:
                analysis.feed(event)

    def abort(self, ctx):
        for analysis in self._analyses:
            analysis.abort(ctx)

    def finish(self, ctx):
        if self._feed_seconds is None:
            for analysis in self._analyses:
                analysis.finish(ctx)
            return
        from repro.obs import collector as obs

        clock = time.perf_counter
        for analysis, name in zip(self._analyses, self._names):
            t0 = clock()
            analysis.finish(ctx)
            obs.add("analysis.finish_seconds.%s" % name, clock() - t0)
        for name, seconds in self._feed_seconds.items():
            if seconds:
                obs.add("analysis.feed_seconds.%s" % name, seconds)

    def results(self):
        """Every pass's :meth:`result`, in registration order."""
        return [analysis.result() for analysis in self._analyses]
