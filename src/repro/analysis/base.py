"""The streaming analysis protocol.

The paper's premise is that loop behaviour can be extracted
*incrementally from the dynamic instruction stream*; this package
extends that idea to the whole experiment layer.  An :class:`Analysis`
is one measurement pass over a workload's single event-stream replay:
the session (or the standalone :func:`~repro.analysis.driver.
analyze_trace` driver) replays each workload's control-flow records
through one canonical :class:`~repro.core.detector.LoopDetector` and
fans the resulting loop events out to every registered pass, so *all*
requested experiments ride one replay per workload.

Lifecycle, per workload::

    begin(ctx)                 # reset per-workload state
    feed_record(record)        # every CF record (only if wants_records)
    feed(event)                # every loop event, incl. end-of-trace flush
    finish(ctx)                # ctx.index now holds the completed LoopIndex
    ...                        # next workload: begin(ctx) again
    result()                   # once, after every workload finished

``feed`` must be incremental: it may keep per-workload accumulators but
must not assume the full event list exists.  Passes that need the
completed loop index as an oracle (the speculation engine reads future
iteration boundaries) do their work in ``finish`` against ``ctx.index``
-- the single index shared by every pass, not a per-experiment copy.

``abort(ctx)`` discards partial per-workload state: the session calls
it when a cached trace proves corrupt mid-stream, then re-traces and
calls ``begin`` again for the same workload.  Suite-level accumulators
(sums across workloads) must therefore only be updated in ``finish``,
never in ``feed``.
"""


class WorkloadContext:
    """Everything a pass may need to know about the workload being
    replayed.

    ``total_instructions`` is known from the start (the trace header
    carries it), so passes can size prefixes up front.  ``index`` is
    ``None`` until the replay completes; it is set before ``finish``.
    ``detector`` is the live canonical detector -- :meth:`execution`
    resolves an event's ``exec_id`` to its (mutable) execution record,
    which is complete by the time that execution's end event is fed.
    ``shared`` is a per-workload scratch dict for values several passes
    want to compute exactly once (e.g. the full-trace data-speculation
    statistics shared by figure8 and the extensions study).

    ``timing`` is the session's default :class:`~repro.timing.base.
    TimingModel` instance for this workload (``None`` means the ideal
    model): speculation passes that are not given an explicit model
    simulate under it, and record-fed models receive the replay's CF
    records through it.  One instance per workload, shared by every
    pass -- models are read-only during simulations.

    ``derived`` is the workload's persistent
    :class:`~repro.pipeline.derived.DerivedStore` (or ``None`` in
    cacheless sessions): deterministic expensive results keyed by
    their parameters, surviving across sessions.  Passes treat a
    missing store as a permanent cache miss.
    """

    __slots__ = ("name", "workload", "scale", "cls_capacity",
                 "total_instructions", "detector", "index", "shared",
                 "timing", "derived")

    def __init__(self, name, total_instructions, workload=None, scale=1,
                 cls_capacity=16, detector=None, timing=None,
                 derived=None):
        self.name = name
        self.workload = workload
        self.scale = scale
        self.cls_capacity = cls_capacity
        self.total_instructions = total_instructions
        self.detector = detector
        self.index = None
        self.shared = {}
        self.timing = timing
        self.derived = derived

    def execution(self, exec_id):
        """The live execution record behind *exec_id* (complete once its
        :class:`~repro.core.events.ExecutionEnd` has been fed)."""
        return self.detector.executions[exec_id]

    def __repr__(self):
        return ("WorkloadContext(%r, total=%d, scale=%d)"
                % (self.name, self.total_instructions, self.scale))


class Analysis:
    """Base class for streaming analysis passes.

    Subclasses override the lifecycle hooks they need; every hook has a
    no-op default except :meth:`result`.  Set :attr:`wants_records` to
    receive raw control-flow records via :meth:`feed_record` in addition
    to loop events (branch predictors and CLS-capacity sweeps need the
    record stream; most passes only need events).
    """

    #: True to receive every CF record through :meth:`feed_record`.
    wants_records = False

    def begin(self, ctx):
        """Start a workload; must fully reset per-workload state."""

    def feed_record(self, record):
        """One control-flow record (only called when ``wants_records``)."""

    def feed_batch(self, batch):
        """One :class:`~repro.trace.batch.RecordBatch` of control-flow
        records (only called when ``wants_records``).

        The replay delivers records in batches; the default decodes
        them and calls :meth:`feed_record` one at a time, so passes
        written against the per-record protocol keep working unchanged.
        Record-hungry passes override this with a columnar loop (see
        ``docs/ANALYSIS.md``); overriders must preserve per-record
        semantics -- a batch is a pure run of consecutive records, and
        batch boundaries carry no meaning.
        """
        feed_record = self.feed_record
        for record in batch.iter_records():
            feed_record(record)

    def feed(self, event):
        """One loop event from the canonical detector."""

    def abort(self, ctx):
        """Discard partial state for the current workload; ``begin``
        will be called again before any further feeding."""

    def finish(self, ctx):
        """Workload replay complete; ``ctx.index`` is available."""

    def result(self):
        """The pass's final product, after all workloads finished."""
        raise NotImplementedError
