"""Smoke tests: every example script runs to completion and produces
its expected headline output."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "TPC" in out
    assert "detected" in out


def test_loop_profiler():
    out = run_example("loop_profiler.py", "compress")
    assert "hottest loops" in out
    assert "#iter/exec" in out


def test_loop_profiler_help():
    out = run_example("loop_profiler.py", "--help")
    assert "workloads:" in out


def test_policy_explorer():
    out = run_example("policy_explorer.py", "mgrid")
    assert "STR(3)" in out
    assert "idealized" in out


def test_value_prediction():
    out = run_example("value_prediction.py", "wave5")
    assert "live-in register instances" in out
    assert "same path" in out


def test_custom_program():
    out = run_example("custom_program.py")
    assert "primes=78" in out
    assert "TPC" in out


@pytest.mark.parametrize("name", ["loop_profiler.py",
                                  "policy_explorer.py",
                                  "value_prediction.py"])
def test_examples_reject_unknown_workload(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), "nosuch"],
        capture_output=True, text=True, timeout=120)
    assert result.returncode != 0
