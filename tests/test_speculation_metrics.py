"""Unit tests for SpeculationResult's derived metrics and the CLI."""

import pytest

from repro.core.speculation.metrics import SpeculationResult


def make_result(**kwargs):
    result = SpeculationResult("demo", 4, "STR")
    for key, value in kwargs.items():
        setattr(result, key, value)
    return result


class TestDerivedMetrics:
    def test_tpc_from_credit(self):
        result = make_result(total_cycles=1000, credit_waiting=2500,
                             credit_executing=2000)
        assert result.tpc == 3.5
        assert result.tpc_executing == 3.0

    def test_tpc_defaults_to_one_without_cycles(self):
        result = make_result()
        assert result.tpc == 1.0
        assert result.tpc_executing == 1.0

    def test_hit_ratio(self):
        result = make_result(promoted=9, squashed_misspec=1)
        assert result.hit_ratio == 0.9
        result = make_result(promoted=0, squashed_misspec=0)
        assert result.hit_ratio == 0.0

    def test_squashed_sums_both_kinds(self):
        result = make_result(squashed_misspec=3, squashed_policy=4)
        assert result.squashed == 7

    def test_threads_per_speculation(self):
        result = make_result(speculation_events=4, threads_spawned=10)
        assert result.threads_per_speculation == 2.5
        assert make_result().threads_per_speculation == 0.0

    def test_avg_instr_to_verification(self):
        result = make_result(resolved=4, instr_to_verif_total=200)
        assert result.avg_instr_to_verification == 50.0

    def test_speedup_bound(self):
        result = make_result(total_cycles=250, total_instructions=1000)
        assert result.speedup_bound == 4.0

    def test_table2_row_rounding(self):
        result = make_result(speculation_events=3, threads_spawned=7,
                             promoted=2, squashed_misspec=1,
                             resolved=3, instr_to_verif_total=100,
                             total_cycles=100, credit_waiting=150)
        row = result.as_table2_row()
        assert row == ("demo", 3, 2.33, 66.67, 33.33, 2.5)

    def test_as_dict_complete(self):
        data = make_result(total_cycles=10).as_dict()
        for key in ("name", "num_tus", "policy", "tpc", "hit_ratio",
                    "tpc_executing", "squashed_policy"):
            assert key in data

    def test_repr(self):
        assert "demo" in repr(make_result())


class TestRunnerCli:
    def test_single_experiment_end_to_end(self, capsys):
        from repro.experiments.runner import main
        assert main(["figure4", "--scale", "1"]) == 0
        out = capsys.readouterr().out
        assert "LET hit %" in out
        assert "figure4 done" in out

    def test_unknown_experiment_rejected(self, capsys):
        from repro.experiments.runner import main
        with pytest.raises(SystemExit):
            main(["nosuch"])
