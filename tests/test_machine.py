"""Unit tests for the reference interpreter."""

import pytest

from repro.cpu import Machine, STACK_TOP, wrap64
from repro.isa import ProgramError, assemble


def run(source):
    machine = Machine(assemble(source))
    machine.run()
    return machine


class TestAlu:
    def test_arithmetic(self):
        m = run("""
main:
    li t0, 7
    li t1, 3
    add t2, t0, t1
    sub t3, t0, t1
    mul t4, t0, t1
    div t5, t0, t1
    rem t6, t0, t1
    halt
""")
        assert m.regs[12:17] == [10, 4, 21, 2, 1]

    def test_division_semantics(self):
        m = run("""
main:
    li t0, -7
    li t1, 2
    div t2, t0, t1
    rem t3, t0, t1
    li t4, 5
    div t5, t4, zero
    rem t6, t4, zero
    halt
""")
        # Truncating division; by-zero is defined as (0, x).
        assert m.regs[12] == -3
        assert m.regs[13] == -1
        assert m.regs[15] == 0
        assert m.regs[16] == 5

    def test_comparisons(self):
        m = run("""
main:
    li t0, 2
    li t1, 5
    slt t2, t0, t1
    sle t3, t1, t1
    seq t4, t0, t1
    sne t5, t0, t1
    min t6, t0, t1
    max t7, t0, t1
    halt
""")
        assert m.regs[12:18] == [1, 1, 0, 1, 2, 5]

    def test_shifts_and_logic(self):
        m = run("""
main:
    li t0, 12
    slli t1, t0, 2
    srli t2, t0, 2
    srai t3, t0, 1
    andi t4, t0, 10
    ori  t5, t0, 3
    xori t6, t0, 6
    halt
""")
        assert m.regs[11:17] == [48, 3, 6, 8, 15, 10]

    def test_wrap64_overflow(self):
        assert wrap64(2**63) == -(2**63)
        assert wrap64(-(2**63) - 1) == 2**63 - 1
        m = run("""
main:
    li t0, 0x7fffffffffffffff
    addi t1, t0, 1
    halt
""")
        assert m.regs[11] == -(2**63)


class TestControlFlow:
    def test_zero_register_immutable(self):
        m = run("main:\n  li zero, 5\n  addi zero, zero, 3\n  halt\n")
        assert m.regs[0] == 0

    def test_call_and_ret(self):
        m = run("""
main:
    call sub
    halt
sub:
    li t0, 42
    ret
""")
        assert m.regs[10] == 42
        assert m.halted

    def test_indirect_jump(self):
        m = run("""
main:
    li t0, 4
    jr t0
    li t1, 1
    halt
    li t1, 2
    halt
""")
        assert m.regs[11] == 2

    def test_branch_taken_and_not(self):
        m = run("""
main:
    li t0, 1
    li t1, 2
    beq t0, t1, skip
    li t2, 7
skip:
    bne t0, t1, done
    li t2, 9
done:
    halt
""")
        assert m.regs[12] == 7

    def test_stack_pointer_initialized(self):
        m = Machine(assemble("main:\n  halt\n"))
        assert m.regs[2] == STACK_TOP

    def test_memory_load_store(self):
        m = run("""
main:
    li t0, 1000
    li t1, 77
    st t1, 5(t0)
    ld t2, 5(t0)
    halt
""")
        assert m.regs[12] == 77
        assert m.memory.load(1005) == 77

    def test_run_budget_enforced(self):
        with pytest.raises(ProgramError):
            Machine(assemble("main:\n  jmp main\n  halt\n")).run(
                max_instructions=100)

    def test_step_after_halt_rejected(self):
        m = run("main:\n  halt\n")
        with pytest.raises(ProgramError):
            m.step()
