"""Golden regression tests over the committed frontier corpus.

Every case under ``tests/frontier/`` is re-evaluated from scratch
(fresh trace, fresh simulation -- no store, no cache) and must
(a) reproduce its pinned metrics exactly and (b) still satisfy its
objective's frontier property.  These workloads were *searched for*:
they sit where the paper's claims are weakest (speculation inverting
under overheads, detector coverage collapsing, policies disagreeing),
so a generator or simulator change that shifts their behaviour is
exactly the kind of change these tests exist to catch loudly.
"""

import pytest

from repro.search import get_objective, load_case
from repro.search.corpus import FRONTIER_PREFIX, frontier_names
from repro.search.evaluate import SIM_FIELDS, evaluate_candidate
from repro.workloads import get as get_workload

CASES = frontier_names()

#: The corpus the issue requires: at least 5 committed cases covering
#: every objective.
MIN_CASES = 5


def test_corpus_is_populated():
    assert len(CASES) >= MIN_CASES
    objectives = {load_case(name).objective for name in CASES}
    assert objectives == {"tpc-inversion", "coverage-collapse",
                          "policy-divergence"}


@pytest.mark.parametrize("name", CASES)
def test_case_file_is_consistent(name):
    case = load_case(name)
    assert case.name == name
    assert name.startswith(FRONTIER_PREFIX + case.objective)
    # the pinned metrics themselves must satisfy the pinned property
    objective = get_objective(case.objective)
    assert objective.frontier(case.metrics, case.settings), \
        "committed case no longer satisfies: %s" % case.property_text
    assert case.score == pytest.approx(
        objective.score(case.metrics, case.settings))


@pytest.mark.parametrize("name", CASES)
def test_case_resolves_as_workload(name):
    workload = get_workload(name)
    assert workload.name == name
    assert get_workload(name) is workload       # registered now
    # the program regenerates deterministically
    from repro.pipeline.cache import program_fingerprint
    assert program_fingerprint(workload.program()) \
        == program_fingerprint(workload.program())


@pytest.mark.parametrize("name", CASES)
def test_golden_reevaluation_pins_metrics(name):
    """The heavyweight golden check: regenerate, retrace, resimulate,
    and compare against the committed numbers field by field."""
    case = load_case(name)
    outcome = evaluate_candidate(case.profile, case.gen_seed,
                                 case.settings, store=None,
                                 cache_dir=None)
    assert outcome.error is None
    fresh = outcome.metrics
    assert fresh.coverage == pytest.approx(case.metrics.coverage,
                                           abs=1e-12)
    assert set(fresh.sims) == set(case.metrics.sims)
    for key in sorted(case.metrics.sims):
        pinned, live = case.metrics.sims[key], fresh.sims[key]
        for field in SIM_FIELDS:
            assert live[field] == pytest.approx(pinned[field],
                                                abs=1e-12), \
                "%s %s %s drifted" % (name, key, field)
    # and the frontier property holds on the *fresh* numbers too
    objective = get_objective(case.objective)
    assert objective.frontier(fresh, case.settings), \
        "re-evaluated case no longer satisfies: %s" \
        % case.property_text
