"""Semantic checks: the workloads compute meaningful results, not just
control flow.  (Shape fidelity lives in test_workloads/test_paper_bands;
these pin that the underlying algorithms actually work.)"""

import pytest

from repro.cpu import Machine
from repro.workloads import get


def run_result(name, scale=1, budget=4_000_000):
    machine = Machine(get(name).program(scale))
    machine.run(max_instructions=budget)
    return machine.regs[4]


class TestAlgorithms:
    def test_compress_emits_codes(self):
        # The LZW analog must emit a plausible number of codes: more
        # than 0, fewer than one per input byte (it does compress).
        out_count = run_result("compress")
        from repro.workloads.compress import INPUT_LEN
        passes = 6
        assert 0 < out_count < passes * INPUT_LEN

    def test_m88ksim_guest_executes(self):
        # The guest bubble sort runs to HALT on every timeslice run;
        # the simulator reports total guest steps.
        steps = run_result("m88ksim")
        assert steps > 5000        # ~1000 guest instructions x 8 runs

    def test_li_deterministic_checksum(self):
        assert run_result("li") == run_result("li")

    def test_go_counts_nodes(self):
        nodes = run_result("go")
        # 8 games x 4 roots, branching <= 5, depth 4: bounded above by
        # the full tree and below by one node per root.
        assert 32 <= nodes <= 32 * (5 ** 5)

    def test_perl_counts_words(self):
        total = run_result("perl")
        # 5 passes over 40 lines with >= 1 word each.
        assert total > 200

    def test_tomcatv_residual_nonnegative(self):
        # Sum of squares: must be >= 0.
        assert run_result("tomcatv") >= 0

    def test_mgrid_smooths_toward_rhs_scale(self):
        value = run_result("mgrid")
        assert 0 <= value < 2**32     # bounded smoothing, no blow-up

    @pytest.mark.parametrize("name", ("swim", "su2cor", "wave5"))
    def test_numeric_kernels_bounded(self, name):
        # The averaging updates keep the fields bounded (no overflow
        # spiral), which also keeps traces scale-stable.
        assert abs(run_result(name)) < 2**40
