"""Fuzz/property harness over the synthetic generator.

Samples N random valid profiles (via the search's
:func:`~repro.workloads.synthetic.mutate.random_profile` move source)
x M generator seeds and asserts, for every pair, the three properties
the whole pipeline leans on:

1. **halt within budget** -- every generated program provably halts
   before its profile's ``default_max_instructions``;
2. **byte-identical regeneration** -- regenerating the same
   ``(profile, seed)`` fingerprints identically (the search, the
   frontier corpus, and pooled tracer processes all require this);
3. **stable trace-cache key** -- two independent generations map to
   the same trace-cache path, so warm runs hit entries written by
   earlier processes.

The sample stream is seeded from ``REPRO_FUZZ_SEED`` (default 2024),
so a CI failure is reproduced locally by exporting the seed the
failing run printed; the sampled cases are precomputed at collection
time so every pair shows up as its own test id.
"""

import os

import pytest

from repro.pipeline.cache import TraceCache, program_fingerprint
from repro.util.rng import Xorshift64
from repro.workloads.synthetic import make_workload, random_profile

#: Sampled (profile, seed) grid: N profiles x M seeds.
NUM_PROFILES = 8
NUM_SEEDS = 2

FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "2024"))

_rng = Xorshift64(FUZZ_SEED)
PROFILES = [random_profile(_rng) for _ in range(NUM_PROFILES)]
SEEDS = [_rng.randint(1, 1 << 30) for _ in range(NUM_SEEDS)]

pytestmark = pytest.mark.filterwarnings("default")


def _ids(values):
    return [getattr(v, "name", str(v)) for v in values]


def test_sample_stream_is_seeded():
    """The sampled profiles are a pure function of REPRO_FUZZ_SEED --
    print it so a CI failure names its repro recipe."""
    again = Xorshift64(FUZZ_SEED)
    resampled = [random_profile(again) for _ in range(NUM_PROFILES)]
    assert [p.name for p in resampled] == [p.name for p in PROFILES]
    assert [again.randint(1, 1 << 30) for _ in range(NUM_SEEDS)] \
        == SEEDS
    print("REPRO_FUZZ_SEED=%d" % FUZZ_SEED)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("profile", PROFILES, ids=_ids(PROFILES))
def test_halts_within_budget(profile, seed):
    workload = make_workload(profile, seed)
    trace = workload.cf_trace()
    assert trace.halted, \
        "%s seed %d did not halt within %d instructions " \
        "(REPRO_FUZZ_SEED=%d)" \
        % (profile.name, seed, profile.default_max_instructions,
           FUZZ_SEED)
    assert trace.validate()
    assert trace.total_instructions < profile.default_max_instructions


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("profile", PROFILES, ids=_ids(PROFILES))
def test_regeneration_is_byte_identical(profile, seed):
    a = program_fingerprint(make_workload(profile, seed).program())
    b = program_fingerprint(make_workload(profile, seed).program())
    assert a == b, "REPRO_FUZZ_SEED=%d" % FUZZ_SEED


@pytest.mark.parametrize("profile", PROFILES[:3], ids=_ids(PROFILES[:3]))
def test_trace_cache_key_stable(profile, tmp_path):
    cache = TraceCache(str(tmp_path))
    name = "synth-%s-%d" % (profile.name, SEEDS[0])
    paths = {
        cache.path(name, 1, profile.default_max_instructions,
                   program_fingerprint(
                       make_workload(profile, SEEDS[0]).program()))
        for _ in range(2)
    }
    assert len(paths) == 1, "REPRO_FUZZ_SEED=%d" % FUZZ_SEED


def test_distinct_samples_generate_distinct_programs():
    """Sanity on the sampler itself: the stream explores the space
    rather than collapsing onto one program."""
    prints = {program_fingerprint(make_workload(p, SEEDS[0]).program())
              for p in PROFILES}
    assert len(prints) == len(PROFILES)
