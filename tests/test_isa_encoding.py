"""Round-trip tests for the binary program encoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu import Machine, trace_control_flow
from repro.isa import Instruction, Opcode, ProgramError, assemble
from repro.isa.encoding import (
    WIRE_OPCODES,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
)

SAMPLE = """
.data table 4 = 9 8 -7 6
.entry main
main:
    li t0, 0
    li t1, 0
loop:
    ld t2, 65536(t0)
    add t1, t1, t2
    addi t0, t0, 1
    li t3, 4
    blt t0, t3, loop
    halt
"""


class TestInstructionRoundTrip:
    def test_all_opcodes_have_wire_codes(self):
        assert set(WIRE_OPCODES) == set(Opcode)

    @settings(max_examples=80)
    @given(st.sampled_from(sorted(Opcode, key=lambda o: o.value)),
           st.integers(0, 31), st.integers(0, 31), st.integers(0, 31),
           st.integers(-2**63, 2**63 - 1),
           st.one_of(st.none(), st.integers(0, 2**31)))
    def test_round_trip(self, op, rd, rs1, rs2, imm, target):
        instr = Instruction(op, rd=rd, rs1=rs1, rs2=rs2, imm=imm,
                            target=target)
        blob = encode_instruction(instr)
        assert len(blob) == 16
        decoded = decode_instruction(blob)
        assert decoded == instr

    def test_unencodable_immediate(self):
        with pytest.raises(ProgramError):
            encode_instruction(Instruction(Opcode.LI, rd=1, imm=2**64))

    def test_unknown_wire_opcode(self):
        blob = bytes([250]) + b"\x00" * 15
        with pytest.raises(ProgramError):
            decode_instruction(blob)


class TestProgramRoundTrip:
    def test_program_identical_after_round_trip(self):
        program = assemble(SAMPLE)
        clone = decode_program(encode_program(program))
        assert clone.name == program.name
        assert clone.entry == program.entry
        # Labels on individual instructions are resolved away by the
        # wire format; compare the operational fields.
        assert [(i.op, i.rd, i.rs1, i.rs2, i.imm, i.target)
                for i in clone.instructions] \
            == [(i.op, i.rd, i.rs1, i.rs2, i.imm, i.target)
                for i in program.instructions]
        assert clone.labels == program.labels
        assert clone.data.symbols == program.data.symbols
        assert clone.data.initial == program.data.initial

    def test_round_tripped_program_runs_identically(self):
        program = assemble(SAMPLE)
        clone = decode_program(encode_program(program))
        m1, m2 = Machine(program), Machine(clone)
        m1.run()
        m2.run()
        assert m1.regs == m2.regs
        assert trace_control_flow(program).records \
            == trace_control_flow(clone).records

    def test_workload_round_trip(self):
        from repro.workloads import get
        program = get("compress").program(1)
        clone = decode_program(encode_program(program))
        assert [(i.op, i.rd, i.rs1, i.rs2, i.imm, i.target)
                for i in clone.instructions] \
            == [(i.op, i.rd, i.rs1, i.rs2, i.imm, i.target)
                for i in program.instructions]
        assert clone.data.initial == program.data.initial

    def test_bad_magic_rejected(self):
        with pytest.raises(ProgramError):
            decode_program(b"NOPE" + b"\x00" * 64)

    def test_data_allocation_continues_after_decode(self):
        program = assemble(SAMPLE)
        clone = decode_program(encode_program(program))
        addr = clone.data.allocate("more", 4)
        assert addr > clone.data.address_of("table")
