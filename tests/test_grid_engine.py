"""Grid-vs-independent equivalence: the fused engine's golden suite.

:func:`~repro.core.speculation.grid.simulate_grid` promises results
bit-identical to N independent :func:`~repro.core.speculation.
simulate` calls for *any* config list -- fused configurations through
the shared-walk columns, everything else through the per-config
fallback.  These tests pin that promise across every policy, every
timing model family, the analog workloads, the committed frontier
corpus, and the degenerate shapes (loop-free indexes, zero-trip
loops, single TU, empty config lists, fused/fallback mixes inside one
call).
"""

import itertools

import pytest

from repro.core import LoopDetector
from repro.core.speculation import simulate, simulate_grid
from repro.cpu import trace_control_flow
from repro.lang import (
    Assign,
    CallExpr,
    For,
    Module,
    Return,
    Var,
    compile_module,
)
from repro.obs.collector import Collector, activate, deactivate
from repro.pipeline import SimulationSession
from repro.search.corpus import frontier_names

#: Every policy the engine accepts ("all" is the oracle -- always a
#: fallback config) and every timing model family (width/classcost
#: price positionally -- always fallback).
POLICIES = ("idle", "str", "str(1)", "str(2)", "str(3)")
TIMINGS = (None, "overhead:spawn=8",
           "overhead:spawn=2,squash=4,promote=1",
           "width:width=2", "classcost:branch=3,other=2")
TU_COUNTS = (1, 2, 4)


def build_index(module, cls_capacity=16):
    trace = trace_control_flow(compile_module(module), 3_000_000)
    assert trace.halted
    return LoopDetector(cls_capacity=cls_capacity).run(trace)


def uniform_loop_module(trips):
    m = Module("t")
    m.function("main", [], [
        Assign("acc", 0),
        For("i", 0, trips, [Assign("acc", Var("acc") + Var("i") * 3)]),
        Return(Var("acc")),
    ])
    return m


def repeated_loop_module(executions, trips):
    m = Module("t")
    m.function("work", [], [
        Assign("a", 0),
        For("i", 0, trips, [Assign("a", Var("a") + Var("i"))]),
        Return(Var("a")),
    ])
    m.function("main", [], [
        Assign("s", 0),
        For("r", 0, executions, [
            Assign("s", Var("s") + CallExpr("work")),
        ]),
        Return(Var("s")),
    ])
    return m


def straight_line_module():
    m = Module("t")
    m.function("main", [], [
        Assign("a", 3),
        Assign("b", Var("a") * 7),
        Return(Var("b")),
    ])
    return m


def assert_grid_matches(index, configs, count_waiting=True):
    grid = simulate_grid(index, configs, name="t",
                         count_waiting=count_waiting)
    assert len(grid) == len(configs)
    for (tus, policy, timing), got in zip(configs, grid):
        ref = simulate(index, num_tus=tus, policy=policy, name="t",
                       timing=timing, count_waiting=count_waiting)
        assert got.state() == ref.state(), (tus, policy, timing)


class TestSyntheticMatrix:
    """The exhaustive policy x TU x timing cross on cheap indexes."""

    @pytest.mark.parametrize("module", [
        uniform_loop_module(40),
        repeated_loop_module(4, 12),
    ], ids=["uniform", "repeated"])
    def test_full_matrix(self, module):
        index = build_index(module)
        configs = [(tus, policy, timing)
                   for policy, tus, timing in itertools.product(
                       POLICIES, TU_COUNTS, TIMINGS)]
        assert_grid_matches(index, configs)

    def test_count_waiting_off(self):
        index = build_index(repeated_loop_module(3, 10))
        configs = [(tus, policy, timing)
                   for policy, tus, timing in itertools.product(
                       ("idle", "str", "str(2)"), (2, 4),
                       (None, "overhead:spawn=8"))]
        assert_grid_matches(index, configs, count_waiting=False)

    def test_single_tu_never_speculates_in_the_grid_too(self):
        index = build_index(uniform_loop_module(50))
        (result,) = simulate_grid(index, [(1, "idle", None)])
        assert result.threads_spawned == 0
        assert result.tpc == 1.0


class TestDegenerateShapes:
    def test_empty_config_list(self):
        index = build_index(uniform_loop_module(10))
        assert simulate_grid(index, []) == []

    @pytest.mark.parametrize("module", [
        straight_line_module(),
        uniform_loop_module(0),
        uniform_loop_module(1),
    ], ids=["no-loops", "zero-trip", "one-trip"])
    def test_degenerate_indexes(self, module):
        index = build_index(module)
        configs = [(tus, policy, timing)
                   for policy, tus, timing in itertools.product(
                       POLICIES, (1, 4), (None, "overhead:spawn=8"))]
        assert_grid_matches(index, configs)

    def test_oracle_and_infinite_configs_delegate(self):
        index = build_index(repeated_loop_module(3, 8))
        configs = [(4, "all", None), (4, "all", "overhead:spawn=8"),
                   (None, "all", None)]
        assert_grid_matches(index, configs)


class TestMixedGrid:
    """One call mixing fused and fallback configs mid-grid."""

    def test_mid_grid_divergence_and_counters(self):
        index = build_index(repeated_loop_module(4, 10))
        configs = [
            (4, "str", None),                    # fused
            (4, "str", "width:width=2"),         # fallback: width
            (2, "idle", "overhead:spawn=8"),     # fused
            (4, "all", None),                    # fallback: oracle
            (4, "str(3)", "overhead:spawn=2"),   # fused
            (4, "str", "classcost:branch=3,other=2"),  # fallback
            (1, "idle", None),                   # fused
        ]
        collector = activate(Collector())
        try:
            assert_grid_matches(index, configs)
        finally:
            deactivate()
        # assert_grid_matches prices the grid once; the per-config
        # reference calls do not touch the grid counters.
        assert collector.counters.get("engine.fused_cells") == 4
        assert collector.counters.get("engine.fallback_cells") == 3
        spans = [s for s in collector.spans
                 if s["name"] == "engine.simulate_grid"]
        assert len(spans) == 1
        assert spans[0]["attrs"]["configs"] == len(configs)


class TestAnalogWorkloads:
    @pytest.fixture(scope="class")
    def session(self):
        return SimulationSession(workloads=("swim", "go"),
                                 cache_dir=None,
                                 max_instructions=30_000)

    @pytest.mark.parametrize("name", ("swim", "go"))
    def test_grid_matches_independent(self, session, name):
        index = session.index(name)
        configs = [(tus, policy, timing)
                   for policy, tus, timing in itertools.product(
                       ("idle", "str", "str(3)"), (2, 4),
                       (None, "overhead:spawn=8", "width:width=2"))]
        assert_grid_matches(index, configs)


class TestFrontierCorpus:
    """Every committed adversarial case through the fused walk."""

    @pytest.mark.parametrize("name", frontier_names())
    def test_grid_matches_independent(self, name):
        session = SimulationSession(workloads=(name,), cache_dir=None,
                                    max_instructions=30_000)
        index = session.index(name)
        configs = [(2, "str", None), (4, "str(3)", "overhead:spawn=8"),
                   (4, "idle", "overhead:spawn=2,squash=4,promote=1"),
                   (1, "str", None)]
        assert_grid_matches(index, configs)
