"""Tests for the mini-language text front end (lexer + parser)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu import Machine
from repro.lang.lexer import LexerError, tokenize
from repro.lang.parser import ParseError, compile_source, parse_module


def run_source(source):
    machine = Machine(compile_source(source))
    machine.run(max_instructions=2_000_000)
    return machine.regs[4]


class TestLexer:
    def test_tokens_and_positions(self):
        tokens = tokenize("func main() {\n  return 42;\n}")
        kinds = [t.kind for t in tokens]
        assert kinds[0] == "keyword"
        assert tokens[-1].kind == "eof"
        ret = next(t for t in tokens if t.value == "return")
        assert ret.line == 2

    def test_numbers(self):
        tokens = tokenize("0x10 1_000 7")
        assert [t.value for t in tokens[:-1]] == [16, 1000, 7]

    def test_comments_skipped(self):
        tokens = tokenize("# line\n1 // another\n/* block\nstill */ 2")
        assert [t.value for t in tokens if t.kind == "number"] == [1, 2]

    def test_multi_char_operators(self):
        tokens = tokenize("a <= b == c << 2")
        ops = [t.value for t in tokens if t.kind == "op"]
        assert ops == ["<=", "==", "<<"]

    def test_unterminated_comment(self):
        with pytest.raises(LexerError):
            tokenize("/* forever")

    def test_unexpected_character(self):
        with pytest.raises(LexerError):
            tokenize("a ~ b")


class TestParserPrograms:
    def test_minimal_program(self):
        assert run_source("func main() { return 41 + 1; }") == 42

    def test_precedence(self):
        assert run_source("func main() { return 2 + 3 * 4; }") == 14
        assert run_source("func main() { return (2 + 3) * 4; }") == 20
        assert run_source("func main() { return 1 + 2 << 1; }") == 6
        assert run_source("func main() { return 7 & 3 | 8; }") == 11

    def test_unary_operators(self):
        assert run_source("func main() { return -5 + 7; }") == 2
        assert run_source("func main() { return !0 + !7; }") == 1

    def test_variables_and_augmented_assign(self):
        src = """
        func main() {
            var x = 10;
            x += 5;
            x *= 2;
            x -= 6;
            return x;    # (10+5)*2-6
        }
        """
        assert run_source(src) == 24

    def test_arrays(self):
        src = """
        array data[8] = {5, 10, 15, 20};
        func main() {
            data[4] = data[0] + data[1];
            data[4] += 1;
            return data[4];
        }
        """
        assert run_source(src) == 16

    def test_globals(self):
        src = """
        global total = 7;
        func bump() { total += 3; return 0; }
        func main() { bump(); bump(); return total; }
        """
        assert run_source(src) == 13

    def test_for_loop(self):
        src = """
        func main() {
            var acc = 0;
            for (i = 0; i < 10; i += 1) { acc += i; }
            return acc;
        }
        """
        assert run_source(src) == 45

    def test_for_loop_negative_step(self):
        src = """
        func main() {
            var acc = 0;
            for (i = 5; i > 0; i -= 1) { acc += i; }
            return acc;
        }
        """
        assert run_source(src) == 15

    def test_while_and_break_continue(self):
        src = """
        func main() {
            var i = 0; var acc = 0;
            while (1) {
                i += 1;
                if (i == 9) { break; }
                if (i % 2 == 0) { continue; }
                acc += i;
            }
            return acc;   # 1+3+5+7
        }
        """
        assert run_source(src) == 16

    def test_do_while(self):
        src = """
        func main() {
            var n = 0;
            do { n += 1; } while (n < 4);
            return n;
        }
        """
        assert run_source(src) == 4

    def test_if_else_chain(self):
        src = """
        func classify(x) {
            if (x < 10) { return 1; }
            else if (x < 100) { return 2; }
            else { return 3; }
        }
        func main() {
            return classify(5) * 100 + classify(50) * 10 + classify(500);
        }
        """
        assert run_source(src) == 123

    def test_logical_and_or_not_shortcircuitless(self):
        src = """
        func main() {
            var a = 5; var b = 0;
            return (a and 3) * 10 + (b or 7 == 7) + (not b);
        }
        """
        assert run_source(src) == 12

    def test_min_max(self):
        assert run_source(
            "func main() { return min(3, 9) + max(3, 9); }") == 12

    def test_mem_and_addr(self):
        src = """
        array heap[16];
        func main() {
            var p = addr(heap) + 2;
            mem[p] = 99;
            return mem[p] + heap[2];
        }
        """
        assert run_source(src) == 198

    def test_recursion(self):
        src = """
        func fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        func main() { return fib(11); }
        """
        assert run_source(src) == 89

    def test_store_augmented(self):
        src = """
        array a[4] = {1, 2, 3, 4};
        func main() {
            a[2] <<= 3;
            return a[2];
        }
        """
        assert run_source(src) == 24


class TestParserErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_module("func main() { return 1 }")

    def test_for_condition_must_match_variable(self):
        with pytest.raises(ParseError):
            parse_module(
                "func main() { for (i = 0; j < 5; i += 1) {} return 0; }")

    def test_for_direction_mismatch(self):
        with pytest.raises(ParseError):
            parse_module(
                "func main() { for (i = 0; i < 5; i -= 1) {} return 0; }")

    def test_bad_toplevel(self):
        with pytest.raises(ParseError):
            parse_module("banana main() {}")

    def test_unclosed_block(self):
        with pytest.raises(ParseError):
            parse_module("func main() { return 0;")


class TestParserDslEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(-40, 40), st.integers(-40, 40), st.integers(1, 9))
    def test_expression_evaluation_matches_python(self, a, b, c):
        src = """
        func main() {
            var a = %d; var b = %d; var c = %d;
            return a * b + (a - b) * c + a %% c;
        }
        """ % (a, b, c)
        trunc_rem = a - int(a / c) * c
        assert run_source(src) == a * b + (a - b) * c + trunc_rem

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 20), st.integers(1, 10))
    def test_nested_loop_counts(self, outer, inner):
        src = """
        func main() {
            var n = 0;
            for (i = 0; i < %d; i += 1) {
                for (j = 0; j < %d; j += 1) { n += 1; }
            }
            return n;
        }
        """ % (outer, inner)
        assert run_source(src) == outer * inner
