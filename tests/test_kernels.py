"""Kernel-layer tests.

Backend equivalence (numpy vs stdlib) for every bulk column kernel,
batch fast-path boundary cases (empty/single-record batches, loop
boundaries mid-batch, loops spanning chunk seams), the derived-results
store, result-state round trips, idempotent table replay, the mmap'd
zero-copy v3 reader, and shared-memory trace payloads from pool
workers.
"""

import json
import os

import pytest

from repro.isa import InstrKind, assemble
from repro.cpu import trace_control_flow
from repro.core.branchpred import BimodalPredictor, \
    BranchPredictionStream, GSharePredictor
from repro.core.cls import CurrentLoopStack
from repro.core.detector import LoopDetector
from repro.core.tables import TableHitRatioSimulator
from repro.trace import RecordBatch, dump_cf_trace, dumps_cf_trace, \
    iter_batches, kernels, loads_cf_trace, open_cf_batches
from repro.workloads import get

BR = int(InstrKind.BRANCH)

LOOP_SRC = """
main:
    li t0, 0
outer:
    li t1, 0
inner:
    addi t1, t1, 1
    li t2, 5
    blt t1, t2, inner
    addi t0, t0, 1
    li t2, 4
    blt t0, t2, outer
    halt
"""


@pytest.fixture()
def loop_trace():
    return trace_control_flow(assemble(LOOP_SRC))


@pytest.fixture()
def batches():
    """Real-workload batches plus hand-built edge cases."""
    trace = get("go").cf_trace(1, max_instructions=30_000)
    out = list(iter_batches(trace.records, 512))
    out.append(RecordBatch.empty())
    out.append(RecordBatch.from_records(trace.records[:1]))
    return out


def event_reprs(events):
    return [repr(e) for e in events]


def index_shape(index):
    return sorted((r.exec_id, r.loop, r.start_seq, tuple(r.iter_seqs),
                   r.end_seq, r.iterations, r.reason, r.depth)
                  for r in index.executions.values())


# ---------------------------------------------------------------------------
# Backend equivalence: every kernel, numpy vs stdlib.
# ---------------------------------------------------------------------------

needs_numpy = pytest.mark.skipif(
    not kernels.HAVE_NUMPY,
    reason="numpy backend not available in this process")


def both_backends(monkeypatch, fn):
    """``(numpy_result, stdlib_result)`` of the thunk *fn*."""
    fast = fn()
    monkeypatch.setattr(kernels, "HAVE_NUMPY", False)
    slow = fn()
    monkeypatch.undo()
    return fast, slow


@needs_numpy
class TestBackendEquivalence:
    def test_predictor_masks(self, monkeypatch, batches):
        for batch in batches:
            fast, slow = both_backends(
                monkeypatch,
                lambda b=batch: (kernels.backward_branch_mask(b),
                                 kernels.taken_mask(b),
                                 kernels.branch_columns(b),
                                 kernels.closing_branch_pcs(b)))
            assert fast == slow

    def test_classcost_extras(self, monkeypatch, batches):
        costs = {int(k): 2 for k in InstrKind}
        costs[BR] = 5
        costs[int(InstrKind.RET)] = 7
        total = 0
        for batch in batches:
            fast, slow = both_backends(
                monkeypatch, lambda b=batch, t=total:
                kernels.classcost_extras(b, costs, 2, t))
            assert (list(fast[0]), list(fast[1]), fast[2]) \
                == (list(slow[0]), list(slow[1]), slow[2])
            total = fast[2]

    def test_per_pc_runs(self, monkeypatch, batches):
        for batch in batches:
            def run(b=batch):
                pcs, takens = kernels.branch_columns(b)
                return kernels.per_pc_runs(pcs, takens)
            fast, slow = both_backends(monkeypatch, run)
            assert fast == slow

    def test_detector_equivalence_across_backends(self, monkeypatch):
        trace = get("compress").cf_trace(1, max_instructions=30_000)

        def run():
            d = LoopDetector()
            index = d.run_batches(iter_batches(trace.records, 512),
                                  trace.total_instructions)
            return event_reprs(d.events), index_shape(index)
        fast, slow = both_backends(monkeypatch, run)
        assert fast == slow


# ---------------------------------------------------------------------------
# Batch fast-path boundary cases.
# ---------------------------------------------------------------------------

class TestBatchBoundaries:
    def test_empty_batch_is_inert(self):
        empty = RecordBatch.empty()
        detector = LoopDetector()
        assert detector.feed_batch(empty) == []
        cls = CurrentLoopStack()
        assert cls.process_batch(empty) == []
        assert cls.current_loops() == []
        stream = BranchPredictionStream(
            [BimodalPredictor(), GSharePredictor()])
        stream.feed_batch(empty)
        assert all(r.closing_total == 0 and r.other_total == 0
                   for r in stream.reports("w"))
        assert kernels.backward_branch_mask(empty) == b""
        assert kernels.taken_mask(empty) == b""

    def test_single_record_batches_match_one_batch(self, loop_trace):
        one = LoopDetector()
        idx_one = one.run_batches(iter_batches(loop_trace.records),
                                  loop_trace.total_instructions)
        single = LoopDetector()
        idx_single = single.run_batches(
            iter_batches(loop_trace.records, 1),
            loop_trace.total_instructions)
        assert event_reprs(one.events) == event_reprs(single.events)
        assert index_shape(idx_one) == index_shape(idx_single)

    def test_loop_boundary_at_every_batch_seam(self, loop_trace):
        """Splitting the stream at any position -- including mid-loop
        and exactly on a closing back-edge -- must not change events."""
        records = loop_trace.records
        total = loop_trace.total_instructions
        reference = LoopDetector()
        ref_index = reference.run(records, total)
        full = RecordBatch.from_records(records)
        for split in range(len(records) + 1):
            d = LoopDetector()
            idx = d.run_batches(
                (b for b in (full.slice(0, split),
                             full.slice(split, len(records)))
                 if len(b)), total)
            assert event_reprs(d.events) == event_reprs(reference.events)
            assert index_shape(idx) == index_shape(ref_index)

    def test_loop_spanning_v3_chunk_seam(self, loop_trace, tmp_path):
        """A cached v3 trace whose chunks split a loop execution must
        replay to the identical index (chunk boundaries are batch
        boundaries on the warm path)."""
        from repro.trace.io import BatchTraceWriter

        path = str(tmp_path / "seam.cft")
        with open(path, "w+b") as fh:
            writer = BatchTraceWriter(fh, loop_trace.program_name)
            # 7 records per chunk: every chunk seam lands mid-loop.
            writer.write(iter(loop_trace.records))
            for batch in ():
                writer.write_batch(batch)
            writer.close(loop_trace.total_instructions,
                         loop_trace.halted)
        # Rewrite with tiny chunks via explicit batches.
        with open(path, "w+b") as fh:
            writer = BatchTraceWriter(fh, loop_trace.program_name)
            for batch in iter_batches(loop_trace.records, 7):
                writer.write_batch(batch)
            writer.close(loop_trace.total_instructions,
                         loop_trace.halted)
        header, batches = open_cf_batches(path)
        streamed = LoopDetector()
        idx_streamed = streamed.run_batches(
            batches, header.total_instructions)
        reference = LoopDetector()
        idx_ref = reference.run(loop_trace)
        assert event_reprs(streamed.events) \
            == event_reprs(reference.events)
        assert index_shape(idx_streamed) == index_shape(idx_ref)


# ---------------------------------------------------------------------------
# Derived-results store.
# ---------------------------------------------------------------------------

class TestDerivedStore:
    def _store(self, tmp_path):
        from repro.pipeline.derived import DerivedCache
        return DerivedCache(str(tmp_path)).store("w-s1-m100-v3-abc")

    def test_put_get_flush_reload(self, tmp_path):
        store = self._store(tmp_path)
        assert store.get("simulate/4/str/c16") is None
        store.put("simulate/4/str/c16", {"tpc": 3})
        assert store.get("simulate/4/str/c16") == {"tpc": 3}
        store.flush()
        again = self._store(tmp_path)
        assert again.get("simulate/4/str/c16") == {"tpc": 3}

    def test_unflushed_values_do_not_persist(self, tmp_path):
        store = self._store(tmp_path)
        store.put("k", 1)
        assert self._store(tmp_path).get("k") is None

    def test_corrupt_file_reads_as_empty(self, tmp_path):
        store = self._store(tmp_path)
        store.put("k", 1)
        store.flush()
        (path,) = [os.path.join(str(tmp_path), "derived", name)
                   for name in os.listdir(
                       os.path.join(str(tmp_path), "derived"))]
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{not json")
        assert self._store(tmp_path).get("k") is None

    def test_schema_version_mismatch_reads_as_empty(self, tmp_path):
        store = self._store(tmp_path)
        store.put("k", 1)
        store.flush()
        root = os.path.join(str(tmp_path), "derived")
        (path,) = [os.path.join(root, n) for n in os.listdir(root)]
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        payload["version"] = -1
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        assert self._store(tmp_path).get("k") is None

    def test_derived_key_joins_parts(self):
        from repro.pipeline.derived import derived_key
        assert derived_key("simulate", 4, "str") == "simulate/4/str"


# ---------------------------------------------------------------------------
# Result-state round trips.
# ---------------------------------------------------------------------------

class TestStateRoundTrips:
    def test_speculation_result_round_trips(self, loop_trace):
        from repro.core.speculation import simulate
        from repro.core.speculation.metrics import SpeculationResult

        index = LoopDetector().run(loop_trace)
        result = simulate(index, num_tus=4, policy="str", name="w")
        restored = SpeculationResult.from_state(
            json.loads(json.dumps(result.state())))
        assert restored.as_dict() == result.as_dict()
        assert restored.tpc == result.tpc

    def test_speculation_result_rejects_malformed(self):
        from repro.core.speculation.metrics import SpeculationResult

        good = SpeculationResult("w", 4, "str").state()
        with pytest.raises(KeyError):
            SpeculationResult.from_state(
                {k: v for k, v in good.items() if k != "promoted"})
        bad = dict(good)
        bad["promoted"] = "7"
        with pytest.raises(TypeError):
            SpeculationResult.from_state(bad)

    def test_dataspec_stats_round_trips(self):
        from repro.core.dataspec.stats import DataSpecStats

        stats = DataSpecStats("w")
        for i, field in enumerate(DataSpecStats.COUNTER_FIELDS):
            setattr(stats, field, i + 1)
        restored = DataSpecStats.from_state(
            json.loads(json.dumps(stats.state())))
        assert restored.state() == stats.state()
        bad = stats.state()
        bad[DataSpecStats.COUNTER_FIELDS[0]] = None
        with pytest.raises(TypeError):
            DataSpecStats.from_state(bad)


# ---------------------------------------------------------------------------
# Idempotent table replay.
# ---------------------------------------------------------------------------

class TestEnsureReplayed:
    def test_replays_once_and_matches_event_replay(self, loop_trace):
        index = LoopDetector().run(loop_trace)
        columnar = TableHitRatioSimulator(4, 4)
        assert columnar.ensure_replayed(index) is columnar
        counters = (columnar.let_hits, columnar.let_accesses,
                    columnar.lit_hits, columnar.lit_accesses)
        columnar.ensure_replayed(index)     # second call is free
        assert counters == (columnar.let_hits, columnar.let_accesses,
                            columnar.lit_hits, columnar.lit_accesses)
        eventful = TableHitRatioSimulator(4, 4)
        eventful.replay(index.events)
        assert counters == (eventful.let_hits, eventful.let_accesses,
                            eventful.lit_hits, eventful.lit_accesses)


# ---------------------------------------------------------------------------
# mmap'd zero-copy v3 reads.
# ---------------------------------------------------------------------------

class TestMappedReads:
    def test_path_reads_match_records(self, loop_trace, tmp_path):
        path = str(tmp_path / "t.cft")
        dump_cf_trace(loop_trace, path)
        header, batches = open_cf_batches(path)
        records = [rec for batch in batches
                   for rec in batch.iter_records()]
        assert records == loop_trace.records
        assert header.records == len(records)

    def test_loads_accepts_memoryview(self, loop_trace):
        payload = dumps_cf_trace(loop_trace)
        a = loads_cf_trace(payload)
        b = loads_cf_trace(memoryview(payload))
        assert a.records == b.records
        assert a.total_instructions == b.total_instructions

    def test_truncated_mapped_file_raises(self, loop_trace, tmp_path):
        path = str(tmp_path / "t.cft")
        dump_cf_trace(loop_trace, path)
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[:-3])
        header, batches = open_cf_batches(path)
        with pytest.raises(ValueError):
            list(batches)

    def test_trailing_garbage_in_mapped_file_raises(self, loop_trace,
                                                    tmp_path):
        path = str(tmp_path / "t.cft")
        dump_cf_trace(loop_trace, path)
        with open(path, "ab") as fh:
            fh.write(b"x")
        header, batches = open_cf_batches(path)
        with pytest.raises(ValueError, match="trailing"):
            list(batches)


# ---------------------------------------------------------------------------
# Shared-memory pool payloads.
# ---------------------------------------------------------------------------

class TestSharedMemoryPayload:
    def test_shared_payload_round_trips_and_unlinks(self):
        from repro.pipeline import worker

        name, payload = worker.trace_workload("swim", 1, 5_000, None,
                                              shared=True)
        assert name == "swim"
        if not isinstance(payload, worker.SharedTracePayload):
            pytest.skip("shared memory unavailable on this platform")
        via_shm = worker.load_trace_payload(payload)
        _, data = worker.trace_workload("swim", 1, 5_000, None)
        assert isinstance(data, bytes)
        via_bytes = worker.load_trace_payload(data)
        assert via_shm.records == via_bytes.records
        assert via_shm.total_instructions == via_bytes.total_instructions
        # The parent unlinked the segment after reading it.
        from multiprocessing import shared_memory
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=payload.segment)


# ---------------------------------------------------------------------------
# Backend equivalence over the committed frontier corpus.
# ---------------------------------------------------------------------------

@needs_numpy
class TestFrontierBackendEquivalence:
    """The frontier corpus sits where the paper's claims are weakest,
    which makes it the sharpest probe of numpy-vs-stdlib drift: a
    kernel whose backends disagree by one branch outcome flips a
    pinned inversion or coverage threshold.  Every committed case is
    evaluated end to end (trace, detect, simulate) under both
    backends; the rendered metrics must be byte-identical."""

    def _cases(self):
        from repro.search.corpus import frontier_names, load_case
        names = frontier_names()
        assert names, "frontier corpus missing"
        return [load_case(name) for name in names]

    def test_full_evaluation_is_byte_identical(self, monkeypatch):
        from repro.search.evaluate import evaluate_candidate

        for case in self._cases():
            def run(c=case):
                outcome = evaluate_candidate(c.profile, c.gen_seed,
                                             c.settings, store=None,
                                             cache_dir=None)
                assert outcome.error is None
                return json.dumps(outcome.metrics.to_dict(),
                                  sort_keys=True)
            fast, slow = both_backends(monkeypatch, run)
            assert fast == slow, "%s drifted across backends" \
                % case.name

    def test_detector_events_match_on_frontier_traces(self,
                                                      monkeypatch):
        # The coverage-collapse cases stress the detector hardest.
        case = [c for c in self._cases()
                if c.objective == "coverage-collapse"][0]
        workload = get(case.name)
        trace = workload.cf_trace()

        def run():
            d = LoopDetector()
            index = d.run_batches(iter_batches(trace.records, 512),
                                  trace.total_instructions)
            return event_reprs(d.events), index_shape(index)
        fast, slow = both_backends(monkeypatch, run)
        assert fast == slow
