"""Tests for the mini-language compiler: compiled programs must compute
the same results as a Python evaluation of the same algorithm."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu import Machine, trace_control_flow
from repro.lang import (
    AddrOf,
    Assign,
    Break,
    CallExpr,
    Const,
    Continue,
    Deref,
    DoWhile,
    ExprStmt,
    For,
    If,
    Index,
    LangError,
    Module,
    Poke,
    Return,
    Store,
    Var,
    While,
    compile_module,
)


def run_main(module, max_instructions=2_000_000):
    """Compile, run, and return (machine, memory-view helper)."""
    program = compile_module(module)
    machine = Machine(program)
    machine.run(max_instructions=max_instructions)
    return machine, program


def result_array(machine, program, name, count):
    base = program.data.address_of(name)
    return machine.memory.snapshot(base, count)


class TestBasics:
    def test_return_value_in_rv(self):
        m = Module("t")
        m.function("main", [], [Return(41 + Const(1))])
        machine, _ = run_main(m)
        assert machine.regs[4] == 42

    def test_locals_and_arithmetic(self):
        m = Module("t")
        m.function("main", [], [
            Assign("a", 10),
            Assign("b", Var("a") * 3 + 4),
            Return(Var("b") % 7),
        ])
        machine, _ = run_main(m)
        assert machine.regs[4] == (10 * 3 + 4) % 7

    def test_global_scalars_shared_between_functions(self):
        m = Module("t")
        m.scalar("counter", 5)
        m.function("bump", [], [Assign("counter", Var("counter") + 1),
                                Return()])
        m.function("main", [], [
            ExprStmt(CallExpr("bump")),
            ExprStmt(CallExpr("bump")),
            Return(Var("counter")),
        ])
        machine, _ = run_main(m)
        assert machine.regs[4] == 7

    def test_array_store_load(self):
        m = Module("t")
        m.array("arr", 8)
        m.function("main", [], [
            For("i", 0, 8, [Store("arr", Var("i"), Var("i") * Var("i"))]),
            Return(Index("arr", 5)),
        ])
        machine, program = run_main(m)
        assert machine.regs[4] == 25
        assert result_array(machine, program, "arr", 8) \
            == [i * i for i in range(8)]

    def test_array_initializer(self):
        m = Module("t")
        m.array("arr", 4, init=[9, 8, 7, 6])
        m.function("main", [], [Return(Index("arr", 2))])
        machine, _ = run_main(m)
        assert machine.regs[4] == 7

    def test_deref_and_poke(self):
        m = Module("t")
        m.array("heap", 16)
        m.function("main", [], [
            Assign("p", AddrOf("heap") + 3),
            Poke(Var("p"), 123),
            Return(Deref(Var("p"))),
        ])
        machine, _ = run_main(m)
        assert machine.regs[4] == 123


class TestControlStructures:
    def test_if_else(self):
        for value, expected in ((3, 1), (9, 2)):
            m = Module("t")
            m.function("main", [], [
                Assign("x", value),
                If(Var("x") < 5, [Return(1)], [Return(2)]),
            ])
            machine, _ = run_main(m)
            assert machine.regs[4] == expected

    def test_while_computes_sum(self):
        m = Module("t")
        m.function("main", [], [
            Assign("i", 0), Assign("acc", 0),
            While(Var("i") < 10, [
                Assign("acc", Var("acc") + Var("i")),
                Assign("i", Var("i") + 1),
            ]),
            Return(Var("acc")),
        ])
        machine, _ = run_main(m)
        assert machine.regs[4] == sum(range(10))

    def test_while_zero_iterations(self):
        m = Module("t")
        m.function("main", [], [
            Assign("i", 10),
            While(Var("i") < 10, [Assign("i", Var("i") + 1)]),
            Return(Var("i")),
        ])
        machine, _ = run_main(m)
        assert machine.regs[4] == 10

    def test_dowhile_runs_at_least_once(self):
        m = Module("t")
        m.function("main", [], [
            Assign("i", 10), Assign("n", 0),
            DoWhile([Assign("n", Var("n") + 1)], Var("i") < 5),
            Return(Var("n")),
        ])
        machine, _ = run_main(m)
        assert machine.regs[4] == 1

    def test_for_with_step(self):
        m = Module("t")
        m.function("main", [], [
            Assign("acc", 0),
            For("i", 0, 10, [Assign("acc", Var("acc") + Var("i"))], step=3),
            Return(Var("acc")),
        ])
        machine, _ = run_main(m)
        assert machine.regs[4] == 0 + 3 + 6 + 9

    def test_for_negative_step(self):
        m = Module("t")
        m.function("main", [], [
            Assign("acc", 0),
            For("i", 5, 0, [Assign("acc", Var("acc") + Var("i"))], step=-1),
            Return(Var("acc")),
        ])
        machine, _ = run_main(m)
        assert machine.regs[4] == 5 + 4 + 3 + 2 + 1

    def test_break_and_continue(self):
        m = Module("t")
        m.function("main", [], [
            Assign("acc", 0),
            For("i", 0, 100, [
                If(Var("i").eq(7), [Break()]),
                If(Var("i") % 2, [Continue()]),
                Assign("acc", Var("acc") + Var("i")),
            ]),
            Return(Var("acc")),
        ])
        machine, _ = run_main(m)
        assert machine.regs[4] == 0 + 2 + 4 + 6

    def test_nested_loops(self):
        m = Module("t")
        m.function("main", [], [
            Assign("acc", 0),
            For("i", 0, 5, [
                For("j", 0, 4, [Assign("acc", Var("acc") + 1)]),
            ]),
            Return(Var("acc")),
        ])
        machine, _ = run_main(m)
        assert machine.regs[4] == 20

    def test_return_from_inside_loop(self):
        m = Module("t")
        m.function("main", [], [
            For("i", 0, 100, [If(Var("i").eq(13), [Return(Var("i"))])]),
            Return(-1),
        ])
        machine, _ = run_main(m)
        assert machine.regs[4] == 13


class TestCalls:
    def test_arguments_passed(self):
        m = Module("t")
        m.function("addmul", ["a", "b", "c"],
                   [Return(Var("a") + Var("b") * Var("c"))])
        m.function("main", [], [Return(CallExpr("addmul", 2, 3, 4))])
        machine, _ = run_main(m)
        assert machine.regs[4] == 14

    def test_recursion_factorial(self):
        m = Module("t")
        m.function("fact", ["n"], [
            If(Var("n") <= 1, [Return(1)]),
            Return(Var("n") * CallExpr("fact", Var("n") - 1)),
        ])
        m.function("main", [], [Return(CallExpr("fact", 10))])
        machine, _ = run_main(m)
        assert machine.regs[4] == 3628800

    def test_mutual_recursion(self):
        m = Module("t")
        m.function("is_even", ["n"], [
            If(Var("n").eq(0), [Return(1)]),
            Return(CallExpr("is_odd", Var("n") - 1)),
        ])
        m.function("is_odd", ["n"], [
            If(Var("n").eq(0), [Return(0)]),
            Return(CallExpr("is_even", Var("n") - 1)),
        ])
        m.function("main", [], [Return(CallExpr("is_even", 9))])
        machine, _ = run_main(m)
        assert machine.regs[4] == 0

    def test_fibonacci_recursive(self):
        m = Module("t")
        m.function("fib", ["n"], [
            If(Var("n") < 2, [Return(Var("n"))]),
            Return(CallExpr("fib", Var("n") - 1)
                   + CallExpr("fib", Var("n") - 2)),
        ])
        m.function("main", [], [Return(CallExpr("fib", 12))])
        machine, _ = run_main(m)
        assert machine.regs[4] == 144

    def test_call_preserves_live_temporaries(self):
        m = Module("t")
        m.function("f", [], [Return(100)])
        # 5 + f() evaluates f() with "5" live in a temporary.
        m.function("main", [], [Return(5 + CallExpr("f"))])
        machine, _ = run_main(m)
        assert machine.regs[4] == 105

    def test_stack_balanced_after_calls(self):
        m = Module("t")
        m.function("f", ["n"], [Return(Var("n") + 1)])
        m.function("main", [], [
            Assign("a", CallExpr("f", CallExpr("f", CallExpr("f", 0)))),
            Return(Var("a")),
        ])
        machine, _ = run_main(m)
        assert machine.regs[4] == 3
        from repro.cpu import STACK_TOP
        assert machine.regs[2] == STACK_TOP


class TestDeepExpressions:
    def test_spill_beyond_temp_pool(self):
        # Right-nested sums of variables force the evaluation stack past
        # the 10 temporaries, exercising the memory spill path.
        deep = Var("v")
        for _ in range(15):
            deep = Var("v") + deep
        m = Module("t")
        m.function("main", [], [Assign("v", 3), Return(deep)])
        machine, _ = run_main(m)
        assert machine.regs[4] == 3 * 16

    @settings(max_examples=40, deadline=None)
    @given(st.integers(-50, 50), st.integers(-50, 50), st.integers(1, 30))
    def test_random_arithmetic_matches_python(self, a, b, c):
        m = Module("t")
        m.function("main", [], [
            Assign("a", a), Assign("b", b), Assign("c", c),
            Return((Var("a") * Var("b") + Var("c"))
                   - (Var("a") % Var("c"))
                   + (Var("b") // Var("c"))),
        ])
        machine, _ = run_main(m)
        av, bv, cv = a, b, c
        trunc_div = int(bv / cv) if cv else 0
        trunc_rem = av - int(av / cv) * cv if cv else av
        expected = (av * bv + cv) - trunc_rem + trunc_div
        assert machine.regs[4] == expected


class TestLoopShape:
    def test_while_emits_single_backward_closing_branch(self):
        m = Module("t")
        m.function("main", [], [
            Assign("i", 0),
            While(Var("i") < 5, [Assign("i", Var("i") + 1)]),
            Return(0),
        ])
        program = compile_module(m)
        trace = trace_control_flow(program)
        from repro.isa import InstrKind
        backward_taken = [r for r in trace.backward_records()
                          if r.taken and r.kind == int(InstrKind.BRANCH)]
        # One backward closing branch; with true rotation the guard runs
        # the first trip, so the closer is taken trips-1 times.
        pcs = {r.pc for r in backward_taken}
        assert len(pcs) == 1
        assert len(backward_taken) == 4

    def test_for_loop_trip_count_matches_closing_branch(self):
        m = Module("t")
        m.function("main", [], [
            For("i", 0, 7, [Assign("x", Var("i"))]),
            Return(0),
        ])
        trace = trace_control_flow(compile_module(m))
        from repro.isa import InstrKind
        taken = [r for r in trace.backward_records()
                 if r.taken and r.kind == int(InstrKind.BRANCH)]
        assert len(taken) == 6      # trips - 1 with a rotated guard


class TestErrors:
    def test_missing_main(self):
        with pytest.raises(LangError):
            compile_module(Module("t"))

    def test_main_with_params_rejected(self):
        m = Module("t")
        m.function("main", ["x"], [Return(0)])
        with pytest.raises(LangError):
            compile_module(m)

    def test_unknown_variable(self):
        m = Module("t")
        m.function("main", [], [Return(Var("ghost"))])
        with pytest.raises(LangError):
            compile_module(m)

    def test_unknown_function(self):
        m = Module("t")
        m.function("main", [], [Return(CallExpr("ghost"))])
        with pytest.raises(LangError):
            compile_module(m)

    def test_wrong_arity(self):
        m = Module("t")
        m.function("f", ["a"], [Return(Var("a"))])
        m.function("main", [], [Return(CallExpr("f", 1, 2))])
        with pytest.raises(LangError):
            compile_module(m)

    def test_break_outside_loop(self):
        m = Module("t")
        m.function("main", [], [Break()])
        with pytest.raises(LangError):
            compile_module(m)

    def test_duplicate_function(self):
        m = Module("t")
        m.function("main", [], [Return(0)])
        with pytest.raises(LangError):
            m.function("main", [], [Return(0)])

    def test_unknown_array(self):
        m = Module("t")
        m.function("main", [], [Return(Index("ghost", 0))])
        with pytest.raises(LangError):
            compile_module(m)
