"""Tests for the speculation disable table (paper section 2.3.2)."""

import pytest

from repro.core import LoopDetector
from repro.core.speculation import (
    SpeculationDisableTable,
    SpeculationEngine,
    simulate,
)
from repro.cpu import trace_control_flow
from repro.lang import Assign, For, Module, Return, Var, compile_module


class TestDisableTableUnit:
    def test_blocks_after_poor_record(self):
        table = SpeculationDisableTable(min_samples=4, hit_threshold=0.5)
        for _ in range(3):
            table.note(100, correct=False)
        assert not table.blocked(100)       # below min_samples
        table.note(100, correct=False)
        assert table.blocked(100)
        assert table.blocks_installed == 1

    def test_good_loop_never_blocked(self):
        table = SpeculationDisableTable(min_samples=4, hit_threshold=0.5)
        for _ in range(20):
            table.note(7, correct=True)
        assert not table.blocked(7)

    def test_mixed_record_follows_threshold(self):
        table = SpeculationDisableTable(min_samples=10,
                                        hit_threshold=0.6)
        for _ in range(5):
            table.note(9, correct=True)
        for _ in range(5):
            table.note(9, correct=False)    # rate 0.5 < 0.6
        assert table.blocked(9)

    def test_capacity_evicts_lru(self):
        table = SpeculationDisableTable(capacity=2, min_samples=1,
                                        hit_threshold=0.5)
        for loop in (1, 2, 3):
            table.note(loop, correct=False)
        assert len(table) == 2
        assert 1 not in table.blocked_loops()

    def test_spawns_prevented_counter(self):
        table = SpeculationDisableTable(min_samples=1, hit_threshold=0.5)
        table.note(4, correct=False)
        table.blocked(4)
        table.blocked(4)
        assert table.spawns_prevented == 2

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SpeculationDisableTable(hit_threshold=1.5)
        with pytest.raises(ValueError):
            SpeculationDisableTable(min_samples=0)

    def test_stats_accessible(self):
        table = SpeculationDisableTable()
        table.note(5, correct=True)
        table.note(5, correct=False)
        stats = table.stats_for(5)
        assert stats.correct == 1 and stats.wrong == 1
        assert stats.hit_rate == 0.5


class TestEngineIntegration:
    def _index(self):
        # A single 3-iteration loop executed repeatedly: with 8 TUs the
        # IDLE policy speculates 5+ doomed iterations per execution.
        m = Module("t")
        m.function("work", [], [
            Assign("a", 0),
            For("i", 0, 3, [Assign("a", Var("a") + Var("i"))]),
            Return(Var("a")),
        ])
        from repro.lang import CallExpr, ExprStmt
        m.function("main", [], [ExprStmt(CallExpr("work"))
                                for _ in range(30)] + [Return(0)])
        trace = trace_control_flow(compile_module(m))
        return LoopDetector().run(trace)

    def test_blocks_hopeless_loop_and_cuts_misspeculation(self):
        index = self._index()
        plain = simulate(index, num_tus=8, policy="idle")
        table = SpeculationDisableTable(min_samples=5, hit_threshold=0.5)
        guarded = simulate(index, num_tus=8, policy="idle",
                           disable_table=table)
        assert plain.squashed_misspec > 0
        assert len(table) >= 1
        assert guarded.squashed_misspec < plain.squashed_misspec
        assert guarded.hit_ratio >= plain.hit_ratio

    def test_policy_squashes_not_counted_against_loop(self):
        # STR(i) squashes are policy decisions, not prediction failures:
        # they must not feed the disable table.
        index = self._index()
        table = SpeculationDisableTable(min_samples=1, hit_threshold=0.99)
        engine = SpeculationEngine(num_tus=4, policy="str(1)",
                                   disable_table=table)
        result = engine.run(index)
        for loop in table.blocked_loops():
            stats = table.stats_for(loop)
            assert stats.wrong > 0      # only real misses block
        assert result.total_cycles > 0
