"""Unit tests for register naming and conventions."""

import pytest

from repro.isa import (
    ARG_REGISTERS,
    NUM_REGISTERS,
    REG_FP,
    REG_RA,
    REG_SP,
    REG_RV,
    REG_ZERO,
    SAVED_REGISTERS,
    TEMP_REGISTERS,
    IsaError,
    parse_register,
    register_name,
)


def test_register_name_round_trips():
    for index in range(NUM_REGISTERS):
        assert parse_register(register_name(index)) == index


def test_raw_names_accepted():
    for index in range(NUM_REGISTERS):
        assert parse_register("r%d" % index) == index


def test_special_register_names():
    assert parse_register("zero") == REG_ZERO
    assert parse_register("ra") == REG_RA
    assert parse_register("sp") == REG_SP
    assert parse_register("fp") == REG_FP
    assert parse_register("rv") == REG_RV


def test_case_and_whitespace_insensitive():
    assert parse_register("  T3 ") == TEMP_REGISTERS[3]


def test_conventions_disjoint():
    special = {REG_ZERO, REG_RA, REG_SP, REG_FP}
    groups = [set(ARG_REGISTERS), set(TEMP_REGISTERS), set(SAVED_REGISTERS),
              special]
    seen = set()
    for group in groups:
        assert not (group & seen)
        seen |= group


def test_unknown_register_rejected():
    with pytest.raises(IsaError):
        parse_register("r99")
    with pytest.raises(IsaError):
        register_name(64)
