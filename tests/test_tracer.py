"""Tests for the fast tracing interpreters, including differential tests
against the readable reference machine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu import Machine, trace_control_flow, trace_full
from repro.cpu.tracer import TraceBudgetExceeded
from repro.isa import InstrKind, Instruction, Opcode, Program, assemble
from repro.trace import CFRecord

LOOP_SRC = """
.data table 8 = 3 1 4 1 5 9 2 6
main:
    li t0, 0
    li t1, 0
loop:
    ld t2, 65536(t0)
    add t1, t1, t2
    addi t0, t0, 1
    li t3, 8
    blt t0, t3, loop
    halt
"""


def machine_cf_records(program, budget=100000):
    """Step the reference machine, reconstructing CF records."""
    machine = Machine(program)
    records = []
    seq = 0
    while not machine.halted and seq < budget:
        pc_before = machine.pc
        instr = machine.step()
        if instr.is_control:
            if instr.kind is InstrKind.BRANCH:
                taken = machine.pc != pc_before + 1
                records.append(CFRecord(seq, pc_before,
                                        int(instr.kind), taken,
                                        instr.target))
            elif instr.kind is InstrKind.HALT:
                records.append(CFRecord(seq, pc_before, int(instr.kind),
                                        False, None))
            else:
                records.append(CFRecord(seq, pc_before, int(instr.kind),
                                        True, machine.pc))
        seq += 1
    return records, seq


class TestControlFlowTrace:
    def test_matches_reference_machine(self):
        program = assemble(LOOP_SRC)
        expected, count = machine_cf_records(program)
        trace = trace_control_flow(program)
        assert trace.records == expected
        assert trace.total_instructions == count
        assert trace.halted

    def test_trace_validates(self):
        trace = trace_control_flow(assemble(LOOP_SRC))
        assert trace.validate()

    def test_truncation_flag(self):
        program = assemble("main:\n  jmp main\n  halt\n")
        trace = trace_control_flow(program, max_instructions=50)
        assert not trace.halted
        assert trace.total_instructions == 50

    def test_truncation_can_raise(self):
        program = assemble("main:\n  jmp main\n  halt\n")
        with pytest.raises(TraceBudgetExceeded):
            trace_control_flow(program, max_instructions=50,
                               allow_truncation=False)

    def test_backward_records_iterator(self):
        trace = trace_control_flow(assemble(LOOP_SRC))
        backwards = list(trace.backward_records())
        # 8 executions of the closing branch (7 taken + 1 not taken).
        assert len(backwards) == 8
        assert sum(1 for r in backwards if r.taken) == 7


class TestFullTrace:
    def test_every_instruction_recorded(self):
        program = assemble(LOOP_SRC)
        cf = trace_control_flow(program)
        full = trace_full(program)
        assert len(full.records) == full.total_instructions \
            == cf.total_instructions

    def test_projection_matches_cf_trace(self):
        program = assemble(LOOP_SRC)
        assert trace_full(program).control_flow().records \
            == trace_control_flow(program).records

    def test_final_register_state_matches_machine(self):
        program = assemble(LOOP_SRC)
        machine = Machine(program)
        machine.run()
        final = {}
        for rec in trace_full(program):
            for reg, value in rec.reg_writes:
                if reg:
                    final[reg] = value
        for reg, value in final.items():
            assert machine.regs[reg] == value

    def test_memory_writes_recorded(self):
        program = assemble(
            "main:\n  li t0, 500\n  li t1, 9\n  st t1, 2(t0)\n  halt\n")
        writes = [w for rec in trace_full(program) for w in rec.mem_writes]
        assert writes == [(502, 9)]


_SAFE_ALU = [Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.OR,
             Opcode.XOR, Opcode.SLT, Opcode.SLE, Opcode.SEQ, Opcode.SNE,
             Opcode.MIN, Opcode.MAX, Opcode.DIV, Opcode.REM]
_SAFE_IMM = [Opcode.ADDI, Opcode.SUBI, Opcode.MULI, Opcode.ANDI, Opcode.ORI,
             Opcode.XORI, Opcode.SLTI, Opcode.DIVI, Opcode.REMI]

_reg = st.integers(min_value=10, max_value=19)
_imm = st.integers(min_value=-1000, max_value=1000)

_alu_instr = st.one_of(
    st.builds(lambda op, rd, rs1, rs2: Instruction(op, rd=rd, rs1=rs1,
                                                   rs2=rs2),
              st.sampled_from(_SAFE_ALU), _reg, _reg, _reg),
    st.builds(lambda op, rd, rs1, imm: Instruction(op, rd=rd, rs1=rs1,
                                                   imm=imm),
              st.sampled_from(_SAFE_IMM), _reg, _reg, _imm),
)


@st.composite
def looped_programs(draw):
    """A random straight-line ALU body inside a counted loop."""
    body = draw(st.lists(_alu_instr, min_size=1, max_size=20))
    iterations = draw(st.integers(min_value=1, max_value=5))
    program = Program(name="random")
    program.label("main")
    program.emit(Instruction(Opcode.LI, rd=20, imm=0))
    program.label("loop")
    for instr in body:
        program.emit(instr)
    program.emit(Instruction(Opcode.ADDI, rd=20, rs1=20, imm=1))
    program.emit(Instruction(Opcode.LI, rd=21, imm=iterations))
    program.emit(Instruction(Opcode.BLT, rs1=20, rs2=21, label="loop"))
    program.emit(Instruction(Opcode.HALT))
    return program


class TestDifferential:
    @settings(max_examples=60, deadline=None)
    @given(looped_programs())
    def test_tracer_agrees_with_reference_machine(self, program):
        machine = Machine(program)
        machine.run(max_instructions=100000)
        trace = trace_full(program, max_instructions=100000)
        assert trace.total_instructions == machine.instruction_count
        final = {}
        for rec in trace:
            for reg, value in rec.reg_writes:
                if reg:
                    final[reg] = value
        for reg, value in final.items():
            assert machine.regs[reg] == value

    @settings(max_examples=60, deadline=None)
    @given(looped_programs())
    def test_cf_and_full_traces_consistent(self, program):
        cf = trace_control_flow(program, max_instructions=100000)
        full = trace_full(program, max_instructions=100000)
        assert full.control_flow().records == cf.records
        cf.validate()


def _chunk_fixture():
    """A program with calls, nested loops and irregular branches."""
    from repro.workloads import get
    return get("go").program()


class TestChunkedTracer:
    """The chunked/streaming tracer is pinned to the monolithic one."""

    def test_chunks_concatenate_to_full_trace(self):
        from repro.cpu import ChunkedCFTracer
        program = _chunk_fixture()
        full = trace_control_flow(program, 50_000)
        tracer = ChunkedCFTracer(program, 50_000, chunk_size=7)
        records = []
        for chunk in tracer.chunks():
            assert 0 < len(chunk) <= 7
            records.extend(chunk)
        assert records == full.records
        assert tracer.total_instructions == full.total_instructions
        assert tracer.halted == full.halted
        assert tracer.program_name == full.program_name

    def test_metadata_unavailable_before_exhaustion(self):
        from repro.cpu import ChunkedCFTracer
        tracer = ChunkedCFTracer(_chunk_fixture(), 1_000)
        with pytest.raises(RuntimeError):
            tracer.total_instructions
        gen = tracer.chunks()
        next(gen)
        with pytest.raises(RuntimeError):
            tracer.halted

    def test_truncation_can_raise(self):
        from repro.cpu import ChunkedCFTracer
        from repro.cpu.tracer import TraceBudgetExceeded
        tracer = ChunkedCFTracer(_chunk_fixture(), 10,
                                 allow_truncation=False)
        with pytest.raises(TraceBudgetExceeded):
            list(tracer.chunks())

    def test_bad_chunk_size_rejected(self):
        from repro.cpu import ChunkedCFTracer
        with pytest.raises(ValueError):
            ChunkedCFTracer(_chunk_fixture(), 1_000, chunk_size=0)
