"""Tests for the parallel simulation pipeline: process-pool tracing,
the on-disk trace cache, and streaming loop detection.

Kept fast with a two-workload subset and a small instruction budget;
the parallel paths still exercise a real ``ProcessPoolExecutor``.
"""

import os

import pytest

from repro.pipeline import (
    PipelineConfig,
    SimulationSession,
    TraceCache,
    default_cache_dir,
)
from repro.pipeline import worker
from repro.trace.io import TRACE_FORMAT_VERSION, dumps_cf_trace

WORKLOADS = ("swim", "go")
LIMIT = 40_000


def config(**kwargs):
    kwargs.setdefault("workloads", WORKLOADS)
    kwargs.setdefault("max_instructions", LIMIT)
    return PipelineConfig(**kwargs)


def trace_bytes(session):
    return {name: dumps_cf_trace(session.trace(name), version=2)
            for name in WORKLOADS}


def index_shape(index):
    return (len(index), len(index.events), index.total_instructions,
            sorted((r.exec_id, r.loop, r.start_seq, r.end_seq,
                    r.iterations, tuple(r.iter_seqs))
                   for r in index.executions.values()))


class TestConfig:
    def test_frozen_and_hashable(self):
        cfg = config()
        with pytest.raises(AttributeError):
            cfg.scale = 2
        hash(cfg)

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(scale=0)
        with pytest.raises(ValueError):
            PipelineConfig(jobs=0)
        with pytest.raises(ValueError):
            PipelineConfig(max_instructions=0)

    def test_workload_objects_normalized_to_names(self):
        from repro.workloads import get
        cfg = PipelineConfig(workloads=(get("swim"), "go"))
        assert cfg.workloads == ("swim", "go")

    def test_default_cache_dir_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "/tmp/elsewhere")
        assert default_cache_dir() == "/tmp/elsewhere"


class TestSessionBasics:
    def test_trace_and_index_memoized(self):
        session = SimulationSession(config())
        assert session.trace("swim") is session.trace("swim")
        assert session.index("go") is session.index("go")

    def test_unknown_workload(self):
        session = SimulationSession(config())
        with pytest.raises(KeyError):
            session.trace("spice")
        with pytest.raises(KeyError):
            session.index("spice")

    def test_indexes_in_configured_order(self):
        session = SimulationSession(config(workloads=("go", "swim")))
        assert [name for name, _ in session.indexes()] == ["go", "swim"]

    def test_kwargs_construction(self):
        session = SimulationSession(workloads=WORKLOADS,
                                    max_instructions=LIMIT)
        assert session.max_instructions == LIMIT
        with pytest.raises(TypeError):
            SimulationSession(config(), scale=2)


class TestParallelEqualsSequential:
    def test_traces_byte_identical_and_indexes_match(self, tmp_path):
        seq = SimulationSession(config(jobs=1))
        par = SimulationSession(config(
            jobs=4, cache_dir=str(tmp_path / "cache")))
        seq_idx = dict(seq.indexes())
        par_idx = dict(par.indexes())
        assert trace_bytes(seq) == trace_bytes(par)
        for name in WORKLOADS:
            assert index_shape(seq_idx[name]) == index_shape(par_idx[name])

    def test_parallel_without_cache(self):
        par = SimulationSession(config(jobs=2))
        seq = SimulationSession(config(jobs=1))
        assert trace_bytes(par) == trace_bytes(seq)


class TestCache:
    def test_cache_hit_skips_tracing(self, tmp_path, monkeypatch):
        cache_dir = str(tmp_path / "cache")
        warm = SimulationSession(config(cache_dir=cache_dir))
        warm.indexes()
        assert warm.stats.traced == 2
        assert warm.stats.cache_hits == 0

        def boom(*args, **kwargs):
            raise AssertionError("cache hit must not re-trace")

        monkeypatch.setattr(worker, "trace_workload", boom)
        hot = SimulationSession(config(cache_dir=cache_dir))
        hot_idx = dict(hot.indexes())
        assert hot.stats.traced == 0
        assert hot.stats.cache_hits == 2
        assert trace_bytes(hot) == trace_bytes(warm)
        warm_idx = dict(warm.indexes())
        for name in WORKLOADS:
            assert index_shape(hot_idx[name]) == index_shape(warm_idx[name])

    def test_cache_key_invalidates_on_scale_change(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        SimulationSession(config(cache_dir=cache_dir)).indexes()
        rescaled = SimulationSession(config(cache_dir=cache_dir, scale=2))
        rescaled.indexes()
        assert rescaled.stats.traced == 2
        assert rescaled.stats.cache_hits == 0

    def test_cache_key_invalidates_on_budget_change(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        SimulationSession(config(cache_dir=cache_dir)).indexes()
        rebudgeted = SimulationSession(config(
            cache_dir=cache_dir, max_instructions=LIMIT // 2))
        rebudgeted.indexes()
        assert rebudgeted.stats.traced == 2

    def test_key_embeds_format_version_and_fingerprint(self):
        key = TraceCache.key("swim", 1, LIMIT, "aaaa")
        assert "-v%d-" % TRACE_FORMAT_VERSION in key
        assert key != TraceCache.key("swim", 2, LIMIT, "aaaa")
        assert key != TraceCache.key("swim", 1, LIMIT + 1, "aaaa")
        assert key != TraceCache.key("swim", 1, LIMIT, "bbbb")

    def test_program_fingerprint_tracks_content(self):
        from repro.isa import assemble
        from repro.pipeline.cache import program_fingerprint
        src_a = "main:\n    li t0, 1\n    halt\n"
        src_b = "main:\n    li t0, 2\n    halt\n"
        fp_a = program_fingerprint(assemble(src_a))
        fp_b = program_fingerprint(assemble(src_b))
        assert fp_a == program_fingerprint(assemble(src_a))   # stable
        assert fp_a != fp_b                       # content-sensitive

    def test_stale_entry_ignored_after_program_change(self, tmp_path,
                                                      monkeypatch):
        # Same name/scale/budget but different program content must not
        # hit: fake a changed program by perturbing the fingerprint.
        cache_dir = str(tmp_path / "cache")
        SimulationSession(config(cache_dir=cache_dir)).indexes()
        from repro.pipeline import cache as cache_mod
        from repro.pipeline import session as session_mod
        real = cache_mod.program_fingerprint
        monkeypatch.setattr(session_mod, "program_fingerprint",
                            lambda program: real(program)[::-1])
        changed = SimulationSession(config(cache_dir=cache_dir))
        changed.indexes()
        assert changed.stats.traced == 2
        assert changed.stats.cache_hits == 0

    def test_corrupt_entry_is_a_miss_and_retraced(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = SimulationSession(config(cache_dir=cache_dir))
        first.indexes()
        # Truncate every cache entry mid-file.
        for entry in os.listdir(cache_dir):
            path = os.path.join(cache_dir, entry)
            data = open(path, "rb").read()
            open(path, "wb").write(data[:len(data) // 2])
        second = SimulationSession(config(cache_dir=cache_dir))
        second_idx = dict(second.indexes())
        assert second.stats.traced == 2
        assert trace_bytes(second) == trace_bytes(first)
        first_idx = dict(first.indexes())
        for name in WORKLOADS:
            assert index_shape(second_idx[name]) \
                == index_shape(first_idx[name])


class TestStreamingDetection:
    def test_streamed_index_matches_in_memory(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        SimulationSession(config(cache_dir=cache_dir)).indexes()
        streamed = SimulationSession(config(cache_dir=cache_dir))
        # index() before trace() streams records from the cache ...
        streamed_idx = {name: streamed.index(name) for name in WORKLOADS}
        assert not streamed._traces, "streaming must not materialize"
        inmem = SimulationSession(config())
        for name in WORKLOADS:
            assert index_shape(streamed_idx[name]) \
                == index_shape(inmem.index(name))


class TestWorker:
    def test_worker_payload_roundtrip(self):
        from repro.trace.io import loads_cf_trace
        name, payload = worker.trace_workload("go", 1, LIMIT, None)
        assert name == "go"
        trace = loads_cf_trace(payload)
        assert trace.total_instructions == LIMIT or trace.halted

    def test_worker_writes_cache_entry(self, tmp_path):
        from repro.pipeline.cache import program_fingerprint
        from repro.workloads import get
        cache_dir = str(tmp_path / "cache")
        _, payload = worker.trace_workload("go", 1, LIMIT, cache_dir)
        assert payload is None
        cache = TraceCache(cache_dir)
        fp = program_fingerprint(get("go").program(1))
        assert cache.has("go", 1, LIMIT, fp)
        header, records = cache.open_records("go", 1, LIMIT, fp)
        count = sum(1 for _ in records)
        assert count == header.records

    def test_worker_materialize_skips_disk_roundtrip(self, tmp_path):
        from repro.trace.stream import CFTrace
        cache_dir = str(tmp_path / "cache")
        name, trace = worker.trace_workload("go", 1, LIMIT, cache_dir,
                                            materialize=True)
        assert isinstance(trace, CFTrace)
        assert os.listdir(cache_dir)   # still persisted for next time


class TestUnregisteredWorkloads:
    def test_session_accepts_unregistered_workload_objects(self):
        from repro.workloads import get
        from repro.workloads.base import Workload
        swim = get("swim")
        clone = Workload("swim-variant", swim.builder, "unregistered",
                         swim.category, default_max_instructions=LIMIT)
        runner = SimulationSession(PipelineConfig(cache_dir=None),
                                   workload_objects=[clone])
        assert runner.trace("swim-variant").total_instructions > 0
        assert len(runner.index("swim-variant")) > 0

    def test_session_traces_unregistered_inline_with_jobs(self, tmp_path):
        from repro.workloads import get
        from repro.workloads.base import Workload
        swim = get("swim")
        clone = Workload("swim-variant", swim.builder, "unregistered",
                         swim.category, default_max_instructions=LIMIT)
        session = SimulationSession(
            PipelineConfig(jobs=4, max_instructions=LIMIT,
                           cache_dir=str(tmp_path / "cache")),
            workload_objects=[clone, get("go")])
        names = [name for name, _ in session.indexes()]
        assert names == ["swim-variant", "go"]
        assert session.stats.traced == 2
