"""Workload suite validation: every workload compiles, halts, and keeps
the loop-shape signature it claims (Table 1 fidelity)."""

import pytest

from repro.core import compute_loop_statistics
from repro.cpu import trace_control_flow
from repro.trace import collect_cf_stats
from repro.workloads import SUITE_ORDER, get, suite


@pytest.fixture(scope="module")
def stats_by_name():
    """Loop statistics for the full suite at scale 1 (computed once)."""
    result = {}
    for workload in suite():
        index = workload.loop_index(scale=1)
        result[workload.name] = compute_loop_statistics(index,
                                                        workload.name)
    return result


class TestSuiteBasics:
    def test_suite_has_all_18(self):
        assert len(SUITE_ORDER) == 18
        assert len(suite()) == 18

    @pytest.mark.parametrize("name", SUITE_ORDER)
    def test_halts_within_budget(self, name):
        workload = get(name)
        trace = workload.cf_trace(scale=1)
        assert trace.halted, "%s did not halt" % name

    @pytest.mark.parametrize("name", SUITE_ORDER)
    def test_trace_is_valid(self, name):
        trace = get(name).cf_trace(scale=1)
        assert trace.validate()

    @pytest.mark.parametrize("name", SUITE_ORDER)
    def test_deterministic(self, name):
        workload = get(name)
        a = workload.cf_trace(scale=1)
        b = workload.cf_trace(scale=1)
        assert a.total_instructions == b.total_instructions
        assert a.records[:100] == b.records[:100]
        assert a.records[-100:] == b.records[-100:]

    @pytest.mark.parametrize("name", SUITE_ORDER)
    def test_meaningful_size(self, name, stats_by_name):
        stats = stats_by_name[name]
        assert stats.total_instructions > 40_000
        assert stats.executions > 10
        assert stats.static_loops >= 2

    @pytest.mark.parametrize("name", SUITE_ORDER)
    def test_scale_increases_work(self, name):
        workload = get(name)
        small = workload.cf_trace(scale=1).total_instructions
        big = workload.cf_trace(
            scale=2, max_instructions=20_000_000).total_instructions
        assert big > 1.5 * small

    def test_categories_assigned(self):
        for workload in suite():
            assert workload.category in ("int", "fp")
        assert 7 <= len([w for w in suite() if w.category == "int"]) <= 9


class TestShapeSignatures:
    """Each analog must keep its SPEC95 row's distinguishing property."""

    def test_swim_has_highest_iterations_per_execution(self, stats_by_name):
        swim = stats_by_name["swim"].iterations_per_execution
        assert swim > 100
        for name, stats in stats_by_name.items():
            if name != "swim":
                assert stats.iterations_per_execution < swim

    def test_fpppp_has_largest_iteration_bodies(self, stats_by_name):
        fpppp = stats_by_name["fpppp"].instructions_per_iteration
        assert fpppp > 1000
        for name, stats in stats_by_name.items():
            if name != "fpppp":
                assert stats.instructions_per_iteration < fpppp

    def test_fpppp_has_few_iterations(self, stats_by_name):
        assert stats_by_name["fpppp"].iterations_per_execution < 4.5

    def test_m88ksim_dispatch_iterations_short(self, stats_by_name):
        # Tiny iteration bodies (the smallest among the integer codes
        # with gcc/perl/compress-class bodies under ~150 instructions).
        assert stats_by_name["m88ksim"].instructions_per_iteration < 150

    def test_deep_nesters(self, stats_by_name):
        for name in ("applu", "go", "ijpeg", "fpppp"):
            assert stats_by_name[name].max_nesting >= 5, name

    def test_flat_profiles(self, stats_by_name):
        for name in ("swim", "su2cor", "wave5", "vortex"):
            assert stats_by_name[name].max_nesting <= 3, name

    def test_high_trip_numeric_kernels(self, stats_by_name):
        for name in ("hydro2d", "mgrid", "su2cor", "tomcatv", "wave5"):
            assert stats_by_name[name].iterations_per_execution > 20, name

    def test_short_trip_programs(self, stats_by_name):
        for name in ("applu", "fpppp", "go", "li", "turb3d"):
            assert stats_by_name[name].iterations_per_execution < 8, name

    def test_gcc_has_most_static_loops(self, stats_by_name):
        gcc_loops = stats_by_name["gcc"].static_loops
        assert gcc_loops >= 10

    def test_compress_has_single_iteration_probes(self, stats_by_name):
        # Data-dependent probe loops produce single-iteration executions.
        assert stats_by_name["compress"].single_iteration_executions > 0


class TestControlCharacter:
    @pytest.mark.parametrize("name", ("gcc", "go", "perl", "li"))
    def test_integer_codes_are_branchy(self, name):
        stats = collect_cf_stats(get(name).cf_trace(scale=1))
        assert stats.control_density > 0.07

    @pytest.mark.parametrize("name", ("swim", "tomcatv", "hydro2d"))
    def test_numeric_codes_have_low_branch_diversity(self, name):
        stats = collect_cf_stats(get(name).cf_trace(scale=1))
        assert stats.taken_ratio > 0.5

    def test_go_uses_recursion(self):
        from repro.isa import InstrKind
        trace = get("go").cf_trace(scale=1)
        calls = sum(1 for r in trace.records
                    if r.kind == int(InstrKind.CALL))
        rets = sum(1 for r in trace.records
                   if r.kind == int(InstrKind.RET))
        assert calls > 1000
        assert calls == rets

    def test_cls_never_overflows_at_16(self):
        from repro.core import LoopDetector
        for workload in suite():
            detector = LoopDetector(cls_capacity=16)
            detector.run(workload.cf_trace(scale=1))
            assert detector.cls.overflow_count == 0, workload.name

    def test_cls_drains_before_halt(self):
        from repro.core import EndReason, LoopDetector
        for workload in suite():
            detector = LoopDetector(cls_capacity=16)
            index = detector.run(workload.cf_trace(scale=1))
            flushed = [r for r in index.executions.values()
                       if r.reason is EndReason.FLUSH]
            # Structured programs: at most the outermost loops linger
            # when the budget truncates; a halted trace drains fully.
            assert len(flushed) == 0, workload.name


class TestRegistry:
    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get("spice")

    def test_duplicate_registration_rejected(self):
        from repro.workloads.base import register
        with pytest.raises(ValueError):
            register("swim", "dup", "fp")(lambda scale: None)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            get("swim").build_module(scale=0)
