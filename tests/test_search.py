"""The adversarial search subsystem: objectives, specs, candidate
evaluation, the hill climber's determinism and resume guarantees, the
corpus export/resolve round trip, and the ``runner search`` CLI.

The search tests run tiny budgets (mutation bounds keep candidates
around 10^5 traced instructions) with a module-scoped trace cache, so
repeat evaluations price against warm traces.
"""

import json
import os

import pytest

from repro.experiments.runner import main as runner_main
from repro.search import (
    EvalSettings,
    SearchSpec,
    evaluate_candidate,
    get_objective,
    objective_names,
    run_search,
)
from repro.search.corpus import export_winners, frontier_names, \
    load_case
from repro.search.evaluate import candidate_cells
from repro.search.loop import _loop_seed
from repro.search.objectives import COVERAGE_COLLAPSE_BELOW, \
    Objective, register_objective
from repro.sweep import SweepStore, SweepStoreError
from repro.util.rng import Xorshift64
from repro.workloads.synthetic import as_candidate, get_profile, \
    random_profile

#: Small, fast search every loop test reuses.
TINY = dict(objective="coverage-collapse", budget=6, seed=7,
            stall_limit=3)


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    """One warm trace/derived cache shared by the whole module."""
    return str(tmp_path_factory.mktemp("search-cache"))


def make_store(tmp_path, name="store"):
    return SweepStore(str(tmp_path / name))


class TestObjectives:
    def test_builtin_names(self):
        assert objective_names() == ["coverage-collapse",
                                     "policy-divergence",
                                     "tpc-inversion"]

    def test_unknown_objective_is_keyerror(self):
        with pytest.raises(KeyError, match="spice"):
            get_objective("spice")

    def test_duplicate_registration_rejected(self):
        clone = Objective("coverage-collapse", "", None, None, "")
        with pytest.raises(ValueError, match="already registered"):
            register_objective(clone)

    def test_inversion_rejects_ideal_timing(self):
        with pytest.raises(ValueError, match="non-ideal"):
            SearchSpec(objective="tpc-inversion",
                       settings=EvalSettings(timing="ideal"))
        with pytest.raises(ValueError, match="non-ideal"):
            # all-zero overhead canonicalizes onto ideal
            SearchSpec(objective="tpc-inversion",
                       settings=EvalSettings(
                           timing="overhead:spawn=0"))

    def test_divergence_needs_two_policies(self):
        with pytest.raises(ValueError, match="two"):
            SearchSpec(objective="policy-divergence",
                       settings=EvalSettings(policy="str",
                                             policies=("str",)))

    def test_settings_validate_eagerly(self):
        with pytest.raises(ValueError, match="policies"):
            EvalSettings(policy="idle", policies=("str",))
        with pytest.raises(ValueError):
            EvalSettings(timing="warp-drive")
        with pytest.raises(ValueError):
            EvalSettings(tus=0)

    def test_scores_read_the_metrics_bundle(self, cache_dir):
        settings = EvalSettings()
        profile = as_candidate(get_profile("baseline"))
        outcome = evaluate_candidate(profile, 1, settings,
                                     cache_dir=cache_dir)
        assert outcome.error is None
        m = outcome.metrics
        cov = get_objective("coverage-collapse")
        assert cov.score(m, settings) == pytest.approx(
            1.0 - m.coverage)
        assert cov.frontier(m, settings) \
            == (m.coverage < COVERAGE_COLLAPSE_BELOW)
        div = get_objective("policy-divergence")
        tpcs = [m.sim(p, "ideal")["tpc"] for p in settings.policies]
        assert div.score(m, settings) \
            == pytest.approx(max(tpcs) - min(tpcs))
        inv = get_objective("tpc-inversion")
        assert inv.score(m, settings) == pytest.approx(
            min(m.sim("str", "ideal")["speedup"] - 1.0,
                1.0 - m.sim("str", "overhead")["speedup"]))


class TestSearchSpec:
    def test_json_round_trip(self):
        spec = SearchSpec(**TINY)
        assert SearchSpec.from_json(spec.to_json()) == spec
        assert spec.experiment == "search"

    def test_id_is_content_derived(self):
        a = SearchSpec(**TINY)
        b = SearchSpec(**TINY)
        c = SearchSpec(**dict(TINY, seed=8))
        assert a.sweep_id == b.sweep_id
        assert a.sweep_id != c.sweep_id

    def test_rejects_non_search_payloads(self):
        with pytest.raises(ValueError, match="not a search spec"):
            SearchSpec.from_json(json.dumps({"experiment": "sweep"}))
        with pytest.raises(ValueError, match="unreadable"):
            SearchSpec.from_json("{nope")

    def test_validation(self):
        with pytest.raises(ValueError, match="budget"):
            SearchSpec(objective="coverage-collapse", budget=0)
        with pytest.raises(ValueError, match="top_k"):
            SearchSpec(objective="coverage-collapse", top_k=0)
        with pytest.raises(KeyError, match="spice"):
            SearchSpec(objective="spice")

    def test_trajectory_seed_mixes_objective(self):
        a = SearchSpec(**TINY)
        b = SearchSpec(**dict(TINY, objective="policy-divergence"))
        assert _loop_seed(a) != _loop_seed(b)


class TestEvaluate:
    def test_cells_are_sweep_keyed(self, cache_dir):
        """Candidate cell keys use the sweep key discipline, so search
        rows and sweep rows are the same rows."""
        from repro.sweep.spec import sim_cell_suffix, \
            workload_trace_key
        from repro.workloads.synthetic import ensure_profile_workload

        settings = EvalSettings()
        profile = as_candidate(get_profile("baseline"))
        name = ensure_profile_workload(profile, 1)
        cells = candidate_cells(name, settings)
        # 1 loopstats + |policies| x {ideal, overhead}
        assert len(cells) == 1 + 2 * len(settings.policies)
        trace_key, _ = workload_trace_key(name)
        assert all(c.key.startswith(trace_key + "/") for c in cells)
        ideal_str = [c for c in cells if c.policy == "str"
                     and c.timing == "ideal"]
        assert ideal_str[0].key == "%s/%s" % (
            trace_key, sim_cell_suffix(4, "str", None, 16))

    def test_store_restores_instead_of_recomputing(self, tmp_path,
                                                   cache_dir):
        settings = EvalSettings()
        profile = as_candidate(get_profile("baseline"))
        with make_store(tmp_path) as store:
            first = evaluate_candidate(profile, 1, settings,
                                       store=store,
                                       cache_dir=cache_dir)
            assert (first.executed, first.restored) == (7, 0)
            second = evaluate_candidate(profile, 1, settings,
                                        store=store,
                                        cache_dir=cache_dir)
            assert (second.executed, second.restored) == (0, 7)
            assert second.metrics.to_dict() \
                == first.metrics.to_dict()

    def test_failed_simulation_reports_error(self, tmp_path,
                                             monkeypatch):
        import repro.core.speculation as speculation

        def boom(*args, **kwargs):
            raise RuntimeError("injected")

        monkeypatch.setattr(speculation, "simulate", boom)
        monkeypatch.setattr(speculation, "simulate_grid", boom)
        profile = as_candidate(get_profile("baseline"))
        outcome = evaluate_candidate(profile, 1, EvalSettings(),
                                     cache_dir=None)
        assert outcome.metrics is None
        assert "injected" in outcome.error


class TestSearchLoop:
    def test_two_cold_runs_identical_winners(self, tmp_path,
                                             cache_dir):
        spec = SearchSpec(**TINY)
        with make_store(tmp_path, "a") as store:
            winners_a, stats_a = run_search(spec, store=store,
                                            cache_dir=cache_dir)
        with make_store(tmp_path, "b") as store:
            winners_b, stats_b = run_search(spec, store=store,
                                            cache_dir=cache_dir)
        assert [(w.name, w.score) for w in winners_a] \
            == [(w.name, w.score) for w in winners_b]
        assert stats_a.executed_cells == stats_b.executed_cells
        assert stats_a.restored_cells \
            == stats_b.restored_cells == 0
        assert winners_a      # a tiny search still finds candidates
        assert all(w.score >= winners_a[-1].score
                   for w in winners_a)

    def test_resubmission_executes_zero(self, tmp_path, cache_dir):
        spec = SearchSpec(**TINY)
        with make_store(tmp_path) as store:
            _, cold = run_search(spec, store=store,
                                 cache_dir=cache_dir)
            winners, warm = run_search(spec, store=store,
                                       cache_dir=cache_dir)
            assert warm.executed_cells == 0
            assert warm.restored_cells == cold.executed_cells

    def test_interrupt_resume_runs_exactly_the_missing(
            self, tmp_path, cache_dir):
        """Kill the search mid-run, resubmit, and the rerun must
        execute exactly the cells the interrupted run never reached --
        and still report the same winners as an uninterrupted run."""
        spec = SearchSpec(**TINY)
        with make_store(tmp_path, "whole") as store:
            baseline, whole = run_search(spec, store=store,
                                         cache_dir=cache_dir)

        calls = []

        def interrupt(index, outcome, score):
            calls.append(outcome.executed)
            if len(calls) == 2:
                raise KeyboardInterrupt

        with make_store(tmp_path, "cut") as store:
            with pytest.raises(KeyboardInterrupt):
                run_search(spec, store=store, cache_dir=cache_dir,
                           progress=interrupt)
            survived = sum(calls)       # checkpointed before the cut
            winners, resumed = run_search(spec, store=store,
                                          cache_dir=cache_dir)
            assert resumed.restored_cells == survived
            assert resumed.executed_cells \
                == whole.executed_cells - survived
            assert [(w.name, w.score) for w in winners] \
                == [(w.name, w.score) for w in baseline]

    def test_search_run_is_not_a_resumable_sweep(self, tmp_path,
                                                 cache_dir):
        """Search runs live in the sweeps table (so prune keeps their
        cells) but runner sweep --resume must refuse them cleanly."""
        spec = SearchSpec(**TINY)
        with make_store(tmp_path) as store:
            run_search(spec, store=store, cache_dir=cache_dir)
            ids = [row[0] for row in store.sweeps()]
            assert spec.sweep_id in ids
            with pytest.raises(SweepStoreError, match="search run"):
                store.spec_for(spec.sweep_id)
            # membership recorded => prune keeps every search cell
            assert store.prune(dry_run=True) == (0, 0)

    def test_failed_candidates_do_not_kill_the_search(
            self, tmp_path, monkeypatch):
        import repro.core.speculation as speculation

        def boom(*args, **kwargs):
            raise RuntimeError("injected")

        monkeypatch.setattr(speculation, "simulate", boom)
        monkeypatch.setattr(speculation, "simulate_grid", boom)
        spec = SearchSpec(**dict(TINY, budget=3))
        winners, stats = run_search(spec, cache_dir=None)
        assert winners == []
        assert stats.failures == stats.evaluated > 0


class TestParallelSearch:
    """``jobs > 1`` speculates evaluations but must replay the exact
    serial trajectory: winners, stats, and resume semantics are all
    pinned against the inline walk."""

    @staticmethod
    def table(winners):
        return [(w.name, w.gen_seed, w.score, w.eval_index,
                 w.frontier, w.metrics.to_dict()) for w in winners]

    @staticmethod
    def stat_tuple(stats):
        return (stats.evaluated, stats.memo_hits, stats.failures,
                stats.accepted, stats.restarts, stats.executed_cells,
                stats.restored_cells, stats.best_score)

    def test_pooled_matches_inline(self, tmp_path, cache_dir):
        spec = SearchSpec(**TINY)
        with make_store(tmp_path, "serial") as store:
            serial_w, serial_s = run_search(spec, store=store,
                                            cache_dir=cache_dir)
        with make_store(tmp_path, "pooled") as store:
            pooled_w, pooled_s = run_search(spec, store=store,
                                            cache_dir=cache_dir,
                                            jobs=2)
        assert self.table(pooled_w) == self.table(serial_w)
        assert self.stat_tuple(pooled_s) == self.stat_tuple(serial_s)

    def test_pooled_resubmission_executes_zero(self, tmp_path,
                                               cache_dir):
        spec = SearchSpec(**TINY)
        with make_store(tmp_path) as store:
            _, cold = run_search(spec, store=store,
                                 cache_dir=cache_dir, jobs=2)
            _, warm = run_search(spec, store=store,
                                 cache_dir=cache_dir, jobs=2)
        assert warm.executed_cells == 0
        assert warm.restored_cells == cold.executed_cells

    def test_pooled_interrupt_resume_runs_exactly_the_missing(
            self, tmp_path, cache_dir):
        """Speculative workers may be mid-candidate when the run is
        cut, but cells only commit at in-order replay -- so a pooled
        resume executes exactly the serial shortfall."""
        spec = SearchSpec(**TINY)
        with make_store(tmp_path, "whole") as store:
            baseline, whole = run_search(spec, store=store,
                                         cache_dir=cache_dir)

        calls = []

        def interrupt(index, outcome, score):
            calls.append(outcome.executed)
            if len(calls) == 2:
                raise KeyboardInterrupt

        with make_store(tmp_path, "cut") as store:
            with pytest.raises(KeyboardInterrupt):
                run_search(spec, store=store, cache_dir=cache_dir,
                           progress=interrupt, jobs=2)
            survived = sum(calls)
            winners, resumed = run_search(spec, store=store,
                                          cache_dir=cache_dir,
                                          jobs=2)
            assert resumed.restored_cells == survived
            assert resumed.executed_cells \
                == whole.executed_cells - survived
            assert self.table(winners) == self.table(baseline)

    def test_progress_replays_in_index_order(self, cache_dir):
        spec = SearchSpec(**dict(TINY, budget=4))
        seen = []
        run_search(spec, cache_dir=cache_dir, jobs=2,
                   progress=lambda i, o, s: seen.append(i))
        assert seen == sorted(seen)
        assert len(seen) > 0


class TestCorpus:
    def test_export_and_reload_round_trip(self, tmp_path, cache_dir):
        spec = SearchSpec(**dict(TINY, budget=4))
        winners, _ = run_search(spec, cache_dir=cache_dir)
        # force exportability regardless of what the tiny run found
        from dataclasses import replace
        pinned = [replace(w, frontier=True) for w in winners[:2]]
        out = str(tmp_path / "corpus")
        paths = export_winners(spec, pinned, directory=out)
        assert len(paths) == 2
        names = frontier_names(out)
        assert names == ["frontier-coverage-collapse-1",
                         "frontier-coverage-collapse-2"]
        case = load_case(names[0], out)
        assert case.profile == pinned[0].profile
        assert case.gen_seed == pinned[0].gen_seed
        assert case.metrics.to_dict() \
            == pinned[0].metrics.to_dict()
        assert case.provenance["search_id"] == spec.sweep_id

    def test_non_frontier_winners_not_exported(self, tmp_path,
                                               cache_dir):
        spec = SearchSpec(**dict(TINY, budget=4))
        winners, _ = run_search(spec, cache_dir=cache_dir)
        from dataclasses import replace
        weak = [replace(w, frontier=False) for w in winners]
        assert export_winners(spec, weak,
                              directory=str(tmp_path / "none")) == []

    def test_missing_case_is_keyerror(self):
        from repro.workloads import get
        with pytest.raises(KeyError):
            load_case("frontier-spice-1")
        with pytest.raises(KeyError):
            get("frontier-spice-1")

    def test_corrupt_case_is_valueerror(self, tmp_path):
        path = tmp_path / "frontier-bad-1.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="unreadable"):
            load_case(str(path))
        path.write_text(json.dumps({"format": 99}))
        with pytest.raises(ValueError, match="format"):
            load_case(str(path))


class TestSearchCLI:
    def run(self, argv, capsys):
        code = runner_main(argv)
        out, err = capsys.readouterr()
        return code, out, err

    def test_list(self, capsys):
        code, out, _ = self.run(["search", "--list"], capsys)
        assert code == 0
        assert "tpc-inversion" in out
        assert "frontier-coverage-collapse-1" in out

    def test_requires_objective(self, capsys):
        with pytest.raises(SystemExit):
            runner_main(["search"])
        _, err = capsys.readouterr()
        assert "--objective" in err

    def test_bad_settings_are_clean_errors(self, capsys):
        with pytest.raises(SystemExit):
            runner_main(["search", "--objective", "tpc-inversion",
                         "--timing", "ideal"])
        _, err = capsys.readouterr()
        assert "non-ideal" in err

    def test_cold_runs_render_identical_tables(self, tmp_path,
                                               cache_dir, capsys):
        argv = ["search", "--objective", "coverage-collapse",
                "--budget", "4", "--seed", "7", "--stall", "3",
                "--cache-dir", cache_dir]
        code_a, out_a, _ = self.run(
            argv + ["--store", str(tmp_path / "a")], capsys)
        code_b, out_b, _ = self.run(
            argv + ["--store", str(tmp_path / "b")], capsys)
        assert code_a == code_b == 0
        assert out_a == out_b
        assert "search: coverage-collapse" in out_a

    def test_jobs_renders_the_serial_table(self, tmp_path, cache_dir,
                                           capsys):
        argv = ["search", "--objective", "coverage-collapse",
                "--budget", "4", "--seed", "7", "--stall", "3",
                "--cache-dir", cache_dir]
        code_a, out_a, _ = self.run(
            argv + ["--store", str(tmp_path / "serial")], capsys)
        code_b, out_b, _ = self.run(
            argv + ["--store", str(tmp_path / "pooled"),
                    "--jobs", "2"], capsys)
        assert code_a == code_b == 0
        assert out_a == out_b

    def test_jobs_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            runner_main(["search", "--objective", "coverage-collapse",
                         "--jobs", "0"])
        _, err = capsys.readouterr()
        assert "--jobs" in err

    def test_resubmit_restores_from_store(self, tmp_path, cache_dir,
                                          capsys):
        argv = ["search", "--objective", "coverage-collapse",
                "--budget", "4", "--seed", "7", "--stall", "3",
                "--cache-dir", cache_dir,
                "--store", str(tmp_path / "store")]
        _, out_a, err_a = self.run(argv, capsys)
        _, out_b, err_b = self.run(argv, capsys)
        assert out_a == out_b
        assert "cells: 0 executed" in err_b.splitlines()[-1]

    def test_export_dir(self, tmp_path, cache_dir, capsys):
        out_dir = str(tmp_path / "corpus")
        code, out, _ = self.run(
            ["search", "--objective", "policy-divergence",
             "--budget", "4", "--seed", "3", "--stall", "3",
             "--cache-dir", cache_dir,
             "--store", str(tmp_path / "store"),
             "--export-dir", out_dir], capsys)
        assert code == 0
        exported = frontier_names(out_dir)
        if exported:
            assert out.count("exported ") == len(exported)
        else:
            assert "nothing exported" in out
